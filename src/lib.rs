//! # xai — a unified explainable-AI toolkit in Rust
//!
//! A from-scratch implementation of the XAI landscape surveyed in
//! *"Explainable AI: Foundations, Applications, Opportunities for Data
//! Management Research"* (Pradhan, Lahiri, Galhotra & Salimi, SIGMOD '22
//! tutorial): feature attributions (LIME, the Shapley family, TreeSHAP,
//! causal variants), rule-based explanations (Anchors, decision sets,
//! sufficient reasons), counterfactuals and recourse (DiCE, GeCo, LEWIS),
//! training-data valuations (Data Shapley, influence functions), and the
//! data-management directions of §3 (provenance semirings, tuple Shapley,
//! complaint-driven debugging, incremental model updates).
//!
//! Every substrate — linear algebra, datasets, models, causal models, a
//! relational engine — is implemented in this workspace with no external
//! numeric dependencies.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`linalg`] | matrices, factorizations, WLS, CG, statistics, RNG |
//! | [`data`] | datasets, schemas, encoders, metrics, synthetic generators, SCMs |
//! | [`models`] | linear/logistic regression, CART, forests, GBDT, kNN, NB, MLP |
//! | [`core`] | explanation types, the executable taxonomy, evaluation, JSON |
//! | [`shapley`] | exact/sampled/Kernel/Tree SHAP, QII, asymmetric/causal, flow |
//! | [`surrogate`] | LIME, stability indices, global surrogates, LMTs, attacks |
//! | [`rules`] | Apriori/FP-Growth, association rules, Anchors, IDS, logic |
//! | [`counterfactual`] | DiCE, GeCo, actionable recourse, LEWIS |
//! | [`datavalue`] | LOO, Data Shapley, KNN-Shapley, influence functions |
//! | [`provenance`] | semirings, relational engine, tuple Shapley, Rain, PrIU |
//!
//! ## Quickstart
//!
//! ```
//! use xai::prelude::*;
//!
//! // Train a model on a synthetic credit dataset…
//! let data = xai::data::synth::german_credit(400, 7);
//! let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
//!
//! // …and explain one decision with Kernel SHAP.
//! let f = proba_fn(&model);
//! let names = data.schema().names();
//! let attribution = xai::shapley::kernel_shap_attribution(
//!     &f, data.row(0), data.x(), &names, Default::default());
//! assert!(attribution.efficiency_gap() < 1e-6);
//! ```

pub use xai_core as core;
pub use xai_counterfactual as counterfactual;
pub use xai_data as data;
pub use xai_datavalue as datavalue;
pub use xai_linalg as linalg;
pub use xai_models as models;
pub use xai_provenance as provenance;
pub use xai_rules as rules;
pub use xai_shapley as shapley;
pub use xai_surrogate as surrogate;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use xai_core::{
        workspace_registry, Counterfactual, DataAttribution, FeatureAttribution, Json,
        RuleExplanation, ToReport,
    };
    pub use xai_counterfactual::{
        geco, linear_recourse, DiceConfig, DiceExplainer, GecoConfig, Lewis, Plaf, RecourseConfig,
    };
    pub use xai_data::{Dataset, Schema, Task};
    pub use xai_datavalue::{
        influence_on_test_loss, knn_shapley, tmc_shapley, LogisticUtility, Solver, TmcConfig,
        Utility,
    };
    pub use xai_models::{
        proba_fn, regress_fn, Classifier, DecisionTree, Gbdt, GbdtConfig, Knn, LinearRegression,
        LogisticConfig, LogisticRegression, Model, RandomForest, Regressor, TreeConfig,
    };
    pub use xai_rules::{AnchorsConfig, AnchorsExplainer, DecisionSet, IdsConfig};
    pub use xai_shapley::{
        exact_shapley, gbdt_shap, kernel_shap, kernel_shap_attribution, tree_shap_attribution,
        CooperativeGame, KernelShapConfig, PredictionGame,
    };
    pub use xai_surrogate::{LimeConfig, LimeExplainer};
}
