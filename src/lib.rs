//! # xai — a unified explainable-AI toolkit in Rust
//!
//! A from-scratch implementation of the XAI landscape surveyed in
//! *"Explainable AI: Foundations, Applications, Opportunities for Data
//! Management Research"* (Pradhan, Lahiri, Galhotra & Salimi, SIGMOD '22
//! tutorial): feature attributions (LIME, the Shapley family, TreeSHAP,
//! causal variants), rule-based explanations (Anchors, decision sets,
//! sufficient reasons), counterfactuals and recourse (DiCE, GeCo, LEWIS),
//! training-data valuations (Data Shapley, influence functions), and the
//! data-management directions of §3 (provenance semirings, tuple Shapley,
//! complaint-driven debugging, incremental model updates).
//!
//! Every substrate — linear algebra, datasets, models, causal models, a
//! relational engine — is implemented in this workspace with no external
//! numeric dependencies.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`linalg`] | matrices, factorizations, WLS, CG, statistics, RNG |
//! | [`data`] | datasets, schemas, encoders, metrics, synthetic generators, SCMs |
//! | [`models`] | linear/logistic regression, CART, forests, GBDT, kNN, NB, MLP |
//! | [`core`] | explanation types, the executable taxonomy, the `Explainer` trait |
//! | [`shapley`] | exact/sampled/Kernel/Tree SHAP, QII, asymmetric/causal, flow |
//! | [`surrogate`] | LIME, stability indices, global surrogates, LMTs, attacks |
//! | [`rules`] | Apriori/FP-Growth, association rules, Anchors, IDS, logic |
//! | [`counterfactual`] | DiCE, GeCo, actionable recourse, LEWIS |
//! | [`datavalue`] | LOO, Data Shapley, KNN-Shapley, influence functions |
//! | [`provenance`] | semirings, relational engine, tuple Shapley, Rain, PrIU |
//! | [`unified`] | the runnable registry: every method behind one trait |
//! | [`serve`] | the explanation-serving engine: requests as JSON, worker pool, result cache |
//! | [`shard`] | deterministic shard plans and the process-pool runner (DESIGN.md §11) |
//! | [`transport`] | the multi-node TCP shard transport and daemon (DESIGN.md §13) |
//! | [`core::backend`] | the unified `ExecutionBackend` substrate: local, process-pool, cluster (DESIGN.md §14) |
//!
//! ## Quickstart
//!
//! Every method is an [`core::Explainer`]: build one [`core::ExplainRequest`]
//! carrying the data, the instance and a [`core::RunConfig`] execution plan
//! (seed, workers, batching, budget), then call `explain` on any method —
//! or resolve methods by taxonomy coordinates from the
//! [`unified::runnable_registry`].
//!
//! ```
//! use xai::prelude::*;
//!
//! // Train a model on a synthetic credit dataset…
//! let data = xai::data::synth::german_credit(300, 7);
//! let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
//!
//! // …and explain one decision with Kernel SHAP through the unified API.
//! let row = data.row(0).to_vec();
//! let req = ExplainRequest::new(&data)
//!     .instance(&row)
//!     .plan(RunConfig::seeded(7).with_workers(2).with_batched(true));
//! let explanation = KernelShapMethod::default().explain(&model, &req).unwrap();
//! let attribution = explanation.as_attribution().unwrap();
//! assert!(attribution.efficiency_gap() < 1e-6);
//!
//! // The same request drives any other method in the registry.
//! use xai::core::taxonomy::{Access, Scope};
//! for method in runnable_registry().resolve(Scope::Local, Access::ModelAgnostic) {
//!     method.explain(&model, &req).unwrap();
//! }
//! ```

pub use xai_core as core;
pub use xai_counterfactual as counterfactual;
pub use xai_data as data;
pub use xai_datavalue as datavalue;
pub use xai_linalg as linalg;
pub use xai_models as models;
pub use xai_provenance as provenance;
pub use xai_rules as rules;
pub use xai_shapley as shapley;
pub use xai_surrogate as surrogate;

pub mod serve;
pub mod shard;
pub mod transport;
pub mod unified;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use crate::serve::{
        register_persist, workspace_service, ExplanationService, ServeRequest, ServeResponse,
        ServeStats, ServiceConfig,
    };
    pub use crate::shard::{
        explain_process_pool, explain_sharded, shardable, PoolConfig, ShardDescriptor,
        ShardResult, ShardableExplainer,
    };
    pub use crate::transport::{
        explain_cluster, ClusterConfig, ClusterOutcome, ClusterRunner, ClusterStats, DaemonHandle,
        FallbackPolicy, RetryPolicy,
    };
    pub use crate::unified::{all_explainers, runnable_registry};
    pub use xai_core::backend::{
        BackendChoice, BackendJob, BackendKind, BackendOutcome, ClusterBackend, ExecutionBackend,
        LocalBackend, ProcessPoolBackend, ShardCache,
    };
    pub use xai_core::{
        workspace_registry, Counterfactual, DataAttribution, DegradationPolicy, ExplainRequest,
        Explainer, Explanation, FeatureAttribution, FnOracle, Json, MethodCard, ModelOracle,
        Registry, RuleExplanation, RunConfig, SampleBudget, ToReport, XaiError, XaiResult,
    };
    pub use xai_counterfactual::{
        geco, linear_recourse, DiceConfig, DiceExplainer, DiceMethod, GecoConfig, GecoMethod,
        Lewis, Plaf, RecourseConfig, WachterMethod,
    };
    pub use xai_data::{Dataset, Schema, Task};
    pub use xai_datavalue::{
        influence_on_test_loss, knn_shapley, tmc_shapley, BanzhafMethod, LogisticUtility,
        LooMethod, Solver, TmcConfig, TmcMethod, Utility,
    };
    pub use xai_models::{
        proba_fn, regress_fn, Classifier, DecisionTree, Gbdt, GbdtConfig, Knn, LinearRegression,
        LogisticConfig, LogisticRegression, Model, RandomForest, Regressor, TreeConfig,
    };
    pub use xai_provenance::ComplaintMethod;
    pub use xai_rules::{
        AnchorsConfig, AnchorsExplainer, AnchorsMethod, DecisionSet, DecisionSetMethod, IdsConfig,
    };
    pub use xai_shapley::{
        exact_shapley, gbdt_shap, kernel_shap, kernel_shap_attribution, tree_shap_attribution,
        CooperativeGame, ExactShapleyMethod, KernelShapConfig, KernelShapMethod,
        PermutationShapleyMethod, PredictionGame, TreeShapMethod,
    };
    pub use xai_surrogate::{
        IntegratedGradientsMethod, LimeConfig, LimeExplainer, LimeMethod, PdpMethod, SpLimeMethod,
    };
}
