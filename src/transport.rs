//! The daemon side of the multi-node shard transport (DESIGN.md §13).
//!
//! [`xai_core::transport`] owns the wire protocol and the failure-first
//! [`ClusterRunner`] (re-exported wholesale here); this module owns
//! everything that needs the full method registry: [`run_daemon`] turns
//! the `xai-shard-worker` binary into a TCP daemon (`--listen addr:port`)
//! that serves a persistent session per connection — one
//! [`ShardDescriptor`] frame per request, looped until the client closes
//! the stream — executing each through
//! [`crate::shard::execute_wire_text`] (rebuilding model and method from
//! their persisted forms) and answering with a [`ShardResult`] frame or
//! a typed shard error envelope.
//!
//! For the supervision tests, `XAI_TRANSPORT_FAULT` injects daemon-side
//! failure modes (`kill`, `hang`, `garbage`, `partial`, `panic`,
//! optionally `mode:N` to fault only the first `N` connections and then
//! behave); [`DaemonHandle`] spawns a daemon on an ephemeral loopback
//! port and tears it down on drop, so every test is offline and
//! self-contained.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use xai_core::{IoKind, XaiError, XaiResult};

use crate::shard::{execute_wire_text, panic_message};

pub use xai_core::transport::*;

/// One-shot cluster execution for any persistable model: cut the request
/// into `n_shards` descriptors (the model travels in its persisted form),
/// ship them to the configured endpoints under full retry/hedging/breaker
/// supervision, and merge bit-identically to the unsharded run. The
/// cluster-transported sibling of
/// [`crate::shard::explain_process_pool`].
pub fn explain_cluster<M: xai_core::ModelOracle + xai_models::Persist>(
    explainer: &dyn xai_core::ShardableExplainer,
    model: &M,
    req: &xai_core::ExplainRequest<'_>,
    n_shards: usize,
    config: &ClusterConfig,
) -> XaiResult<ClusterOutcome> {
    xai_core::transport::explain_cluster(explainer, model, req, model.save(), n_shards, config)
}

/// How long the daemon waits on a single connection's socket operations.
/// Generous: slow shards are legitimate; the *client* owns the deadline.
const DAEMON_IO_TIMEOUT: Duration = Duration::from_secs(600);

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A daemon-side injected failure mode, for the supervision tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultMode {
    /// `process::exit(3)` on arrival — the client sees the stream die
    /// mid-request, and every later connect is refused.
    Kill,
    /// Accept, read nothing, answer nothing — the client's response
    /// deadline fires.
    Hang,
    /// Answer with bytes that are not a frame — the client types it as a
    /// garbage-frame parse error.
    Garbage,
    /// Answer with a valid header promising more payload than is sent,
    /// then close — a short read.
    Partial,
    /// Panic inside shard execution — caught and returned as a
    /// `worker_panic` envelope, exactly like the stdin worker.
    Panic,
}

/// The parsed `XAI_TRANSPORT_FAULT` plan: a mode, optionally limited to
/// the first `limit` connections (`"garbage:1"`), after which the daemon
/// behaves — so tests can exercise retry-to-success, not just failure.
struct FaultPlan {
    mode: FaultMode,
    limit: Option<usize>,
    served: AtomicUsize,
}

impl FaultPlan {
    fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("XAI_TRANSPORT_FAULT").ok()?;
        if spec.is_empty() {
            return None;
        }
        let (name, limit) = match spec.split_once(':') {
            Some((name, n)) => (name, Some(n.parse::<usize>().ok()?)),
            None => (spec.as_str(), None),
        };
        let mode = match name {
            "kill" => FaultMode::Kill,
            "hang" => FaultMode::Hang,
            "garbage" => FaultMode::Garbage,
            "partial" => FaultMode::Partial,
            "panic" => FaultMode::Panic,
            _ => return None,
        };
        Some(FaultPlan { mode, limit, served: AtomicUsize::new(0) })
    }

    /// Whether this connection should fault (counts connections so
    /// `mode:N` faults exactly the first `N`).
    fn applies(&self) -> bool {
        let n = self.served.fetch_add(1, Ordering::SeqCst);
        self.limit.map(|limit| n < limit).unwrap_or(true)
    }
}

/// Applies one injected fault to an accepted connection. Returns `true`
/// when the fault consumed the connection (nothing further to do).
fn inject_fault(mode: FaultMode, stream: &TcpStream) -> bool {
    match mode {
        FaultMode::Kill => std::process::exit(3),
        FaultMode::Hang => {
            // Hold the socket open without answering until the peer (or
            // the test harness) gives up and the daemon is killed.
            let mut byte = [0u8; 1];
            let _ = stream.set_read_timeout(Some(Duration::from_secs(3600)));
            let _ = (&*stream).read(&mut byte);
            std::thread::sleep(Duration::from_secs(3600));
            true
        }
        FaultMode::Garbage => {
            // Consume the request first — a lying worker accepts the
            // shard, then answers nonsense; closing unread would surface
            // as a broken pipe on the client's write instead.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let _ = xai_core::transport::read_frame(&mut &*stream, "fault injection");
            let _ = (&*stream).write_all(b"HTTP/1.1 200 OK\r\n\r\nthis is not a shard frame");
            true
        }
        FaultMode::Partial => {
            let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
            let _ = xai_core::transport::read_frame(&mut &*stream, "fault injection");
            let mut header = [0u8; 8];
            header[..4].copy_from_slice(&FRAME_MAGIC);
            header[4..].copy_from_slice(&1000u32.to_be_bytes());
            let _ = (&*stream).write_all(&header);
            let _ = (&*stream).write_all(&[0u8; 10]);
            // Drop the stream: the peer is owed 990 more bytes it will
            // never see.
            true
        }
        FaultMode::Panic => false,
    }
}

// ---------------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------------

/// Executes one wire-form descriptor, converting panics into typed
/// errors so a poisoned shard produces a `worker_panic` envelope instead
/// of tearing down the daemon.
fn execute_caught(text: &str, force_panic: bool) -> XaiResult<crate::shard::ShardResult> {
    let outcome = std::panic::catch_unwind(|| {
        if force_panic {
            panic!("injected transport fault: panic");
        }
        execute_wire_text(text)
    });
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(XaiError::WorkerPanic { task: 0, message: panic_message(payload) }),
    }
}

/// Runs the shard daemon: bind `addr` (use port 0 for an ephemeral
/// port), print `listening on {local_addr}` on stdout so a parent
/// process can discover the port, then serve a persistent session per
/// connection — descriptors are answered in a loop until the client
/// closes the stream. Returns a process exit code on unrecoverable
/// errors (a failed bind); per-connection failures are logged to stderr
/// and never stop the daemon.
pub fn run_daemon(addr: &str) -> i32 {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("xai-shard-worker: cannot listen on {addr}: {e}");
            return 2;
        }
    };
    let local = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xai-shard-worker: no local address: {e}");
            return 2;
        }
    };
    println!("listening on {local}");
    let _ = std::io::stdout().flush();
    let fault = FaultPlan::from_env();
    // Injected panics must not kill the daemon with an abort-on-panic
    // backtrace wall of text in every test log.
    std::panic::set_hook(Box::new(|_| {}));
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xai-shard-worker: accept failed: {e}");
                continue;
            }
        };
        let force_panic = match &fault {
            Some(plan) if plan.applies() => {
                if inject_fault(plan.mode, &stream) {
                    continue;
                }
                true // FaultMode::Panic reaches execution
            }
            _ => false,
        };
        std::thread::spawn(move || {
            let execute = |text: &str| execute_caught(text, force_panic);
            if let Err(e) = serve_connection(&stream, DAEMON_IO_TIMEOUT, &execute) {
                eprintln!("xai-shard-worker: connection failed: {e}");
            }
        });
    }
    0
}

// ---------------------------------------------------------------------------
// Spawning daemons (tests, examples)
// ---------------------------------------------------------------------------

/// A spawned `xai-shard-worker --listen` daemon on an ephemeral loopback
/// port. Killed and reaped on drop, so tests cannot leak processes.
pub struct DaemonHandle {
    child: Child,
    addr: String,
}

impl DaemonHandle {
    /// Spawns `exe --listen 127.0.0.1:0` with the given extra environment
    /// variables (e.g. `XAI_TRANSPORT_FAULT`) and waits for the daemon to
    /// report its bound address.
    pub fn spawn(exe: impl AsRef<Path>, envs: &[(&str, &str)]) -> XaiResult<DaemonHandle> {
        let exe = exe.as_ref();
        let mut cmd = Command::new(exe);
        cmd.args(["--listen", "127.0.0.1:0"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (key, value) in envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().map_err(|e| {
            XaiError::from_io(&e, format_args!("spawning shard daemon '{}'", exe.display()))
        })?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut line = String::new();
        let read = BufReader::new(stdout).read_line(&mut line);
        match read {
            Ok(n) if n > 0 => {}
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(XaiError::io(
                    IoKind::ShortRead,
                    "shard daemon exited before reporting its address".to_string(),
                ));
            }
        }
        let addr = match line.trim().strip_prefix("listening on ") {
            Some(addr) if !addr.is_empty() => addr.to_string(),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(xai_core::shard::wire_error(format!(
                    "shard daemon announced '{}' instead of its address",
                    line.trim()
                )));
            }
        };
        Ok(DaemonHandle { child, addr })
    }

    /// The daemon's bound `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_parse_modes_and_limits() {
        // FaultPlan reads the environment, so drive the parser through
        // its pieces: mode names and the `:N` limit.
        for (spec, mode, limit) in [
            ("kill", FaultMode::Kill, None),
            ("hang", FaultMode::Hang, None),
            ("garbage:1", FaultMode::Garbage, Some(1)),
            ("partial:2", FaultMode::Partial, Some(2)),
            ("panic", FaultMode::Panic, None),
        ] {
            std::env::set_var("XAI_TRANSPORT_FAULT", spec);
            let plan = FaultPlan::from_env().expect(spec);
            assert_eq!(plan.mode, mode, "{spec}");
            assert_eq!(plan.limit, limit, "{spec}");
        }
        std::env::set_var("XAI_TRANSPORT_FAULT", "no-such-mode");
        assert!(FaultPlan::from_env().is_none());
        std::env::remove_var("XAI_TRANSPORT_FAULT");
        assert!(FaultPlan::from_env().is_none());
    }

    #[test]
    fn fault_limits_count_connections() {
        let plan = FaultPlan { mode: FaultMode::Garbage, limit: Some(2), served: AtomicUsize::new(0) };
        assert!(plan.applies());
        assert!(plan.applies());
        assert!(!plan.applies(), "the third connection is served honestly");
        let always = FaultPlan { mode: FaultMode::Hang, limit: None, served: AtomicUsize::new(0) };
        for _ in 0..5 {
            assert!(always.applies());
        }
    }
}
