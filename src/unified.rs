//! The unified explainer layer (DESIGN.md §9): one registry in which
//! every runnable method in the workspace is attached to its taxonomy
//! card, so `resolve(scope, access)` returns *live* trait objects rather
//! than metadata.
//!
//! ```
//! use xai::unified::runnable_registry;
//! use xai::core::taxonomy::{Access, Scope};
//!
//! let registry = runnable_registry();
//! let local = registry.resolve(Scope::Local, Access::ModelAgnostic);
//! assert!(local.iter().any(|e| e.card().name == "Kernel SHAP"));
//! ```

use std::sync::Arc;

use xai_core::{Registry, SharedExplainer};

/// Every `Explainer` implementation in the workspace, as shared trait
/// objects in catalogue order.
pub fn all_explainers() -> Vec<SharedExplainer> {
    vec![
        // Shapley family (§2.1.2 / §2.1.3).
        Arc::new(xai_shapley::ExactShapleyMethod),
        Arc::new(xai_shapley::PermutationShapleyMethod::default()),
        Arc::new(xai_shapley::KernelShapMethod::default()),
        Arc::new(xai_shapley::TreeShapMethod),
        // Surrogates, curves and gradients (§2.1.1 / §2.1.5).
        Arc::new(xai_surrogate::LimeMethod::default()),
        Arc::new(xai_surrogate::SpLimeMethod::default()),
        Arc::new(xai_surrogate::PdpMethod::default()),
        Arc::new(xai_surrogate::IntegratedGradientsMethod::default()),
        // Counterfactuals and recourse (§2.1.4).
        Arc::new(xai_counterfactual::WachterMethod::default()),
        Arc::new(xai_counterfactual::GecoMethod::default()),
        Arc::new(xai_counterfactual::DiceMethod::default()),
        // Rules (§2.2).
        Arc::new(xai_rules::AnchorsMethod::default()),
        Arc::new(xai_rules::DecisionSetMethod::default()),
        // Data valuation (§2.3.1).
        Arc::new(xai_datavalue::LooMethod),
        Arc::new(xai_datavalue::TmcMethod::default()),
        Arc::new(xai_datavalue::BanzhafMethod::default()),
        // Provenance-based intervention (§3).
        Arc::new(xai_provenance::ComplaintMethod::default()),
    ]
}

/// The full workspace taxonomy with every implemented method attached as
/// a runnable [`xai_core::Explainer`]. Cards without an implementation
/// (survey-only rows) stay resolvable as metadata but are skipped by
/// [`Registry::resolve`].
pub fn runnable_registry() -> Registry {
    let mut registry = xai_core::workspace_registry();
    for explainer in all_explainers() {
        registry
            .register_explainer(explainer)
            .expect("workspace explainers attach to distinct catalogued cards");
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_methods_are_runnable() {
        let registry = runnable_registry();
        assert_eq!(registry.runnable_names().len(), 17);
    }

    #[test]
    fn every_attached_card_is_catalogued() {
        for e in all_explainers() {
            let card = e.card();
            assert_eq!(card, xai_core::method_card(card.name));
        }
    }
}
