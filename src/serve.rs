//! The serving front end (DESIGN.md §10) wired to the full workspace:
//! [`workspace_service`] builds an [`ExplanationService`] over
//! [`crate::unified::runnable_registry`], and [`register_persist`]
//! registers any persistable model with its fingerprint derived from the
//! canonical persisted bytes.
//!
//! ```
//! use xai::prelude::*;
//! use xai::serve::{register_persist, workspace_service, ServeRequest, ServiceConfig};
//!
//! let data = xai::data::synth::german_credit(60, 7);
//! let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
//!
//! let service = workspace_service(ServiceConfig::default());
//! register_persist(&service, "credit", model, data.clone());
//!
//! // A request is data: method + model + instance + plan, JSON-round-trippable.
//! let request = ServeRequest::new("Kernel SHAP", "credit")
//!     .with_instance(data.row(0))
//!     .with_plan(RunConfig::seeded(7));
//! let cold = service.submit(&request).unwrap();
//! assert!(cold.explanation().unwrap().as_attribution().is_some());
//!
//! // Same canonical request again: a byte-equal cache hit.
//! let warm = service.submit(&request).unwrap();
//! assert!(warm.cached);
//! assert_eq!(warm.payload, cold.payload);
//! ```

use std::sync::Arc;

use xai_core::ModelOracle;
use xai_data::Dataset;
use xai_models::{persisted_bytes, Persist};

pub use xai_core::serve::*;

/// An [`ExplanationService`] over the full workspace registry: all 17
/// runnable methods addressable by taxonomy card name.
pub fn workspace_service(config: ServiceConfig) -> ExplanationService {
    ExplanationService::new(crate::unified::runnable_registry(), config)
}

/// Registers a persistable model with `service`, deriving its
/// fingerprint from the model's canonical persisted bytes
/// (`xai_models::persisted_bytes`). Returns the fingerprint.
pub fn register_persist<M>(
    service: &ExplanationService,
    name: &str,
    model: M,
    data: Dataset,
) -> u64
where
    M: ModelOracle + Persist + Send + Sync + 'static,
{
    let bytes = persisted_bytes(&model);
    service.register_model(name, Arc::new(model), data, &bytes)
}
