//! Shard worker process, in two modes:
//!
//! - **stdin mode** (no arguments): reads one `ShardDescriptor` as JSON
//!   on stdin, writes one canonical `ShardResult` (or a shard error
//!   envelope) on stdout. Spawned by `xai::shard::explain_process_pool`;
//!   see DESIGN.md §11.
//! - **daemon mode** (`--listen addr:port`): serves descriptors over the
//!   length-prefixed TCP shard transport, one per connection, until
//!   killed. Use port `0` for an ephemeral port; the bound address is
//!   announced as `listening on {addr}` on stdout. See DESIGN.md §13.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.as_slice() {
        [] => xai::shard::run_worker(),
        [flag, addr] if flag == "--listen" => xai::transport::run_daemon(addr),
        _ => {
            eprintln!("usage: xai-shard-worker [--listen addr:port]");
            2
        }
    };
    std::process::exit(code);
}
