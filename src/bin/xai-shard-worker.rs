//! Shard worker process: reads one `ShardDescriptor` as JSON on stdin,
//! writes one canonical `ShardResult` (or a shard error envelope) on
//! stdout. Spawned by `xai::shard::explain_process_pool`; see
//! DESIGN.md §11.

fn main() {
    std::process::exit(xai::shard::run_worker());
}
