//! Process-pool shard execution (DESIGN.md §11).
//!
//! The core shard layer ([`xai_core::shard`], re-exported here) cuts an
//! estimator's draw grid into self-contained [`ShardDescriptor`]s and
//! merges [`ShardResult`]s bit-identically to the unsharded run. This
//! module adds the pieces only the facade can provide — it knows every
//! method and every persistable model:
//!
//! - [`shardable`] — the method factory: taxonomy card name + canonical
//!   config JSON → a boxed [`ShardableExplainer`].
//! - [`PersistedModel`] / [`resolve_model`] — rebuild any persisted
//!   workspace model from its descriptor JSON, usable as a
//!   [`ModelOracle`].
//! - [`explain_process_pool`] — a thin convenience over
//!   [`xai_core::backend::ProcessPoolBackend`]: one OS process per shard
//!   (waves of `max_procs`), descriptor on the worker's stdin, canonical
//!   result or error envelope on its stdout, typed errors for every
//!   worker failure mode and a hard deadline so a stuck worker can never
//!   hang the caller.
//! - [`run_worker`] — the worker side, wrapped by the
//!   `xai-shard-worker` binary: parse, execute, answer. A worker exits 0
//!   even on typed failures (the error travels in the envelope); only
//!   catastrophic states exit non-zero.
//!
//! ```no_run
//! use xai::prelude::*;
//! use xai::shard::{explain_process_pool, PoolConfig};
//!
//! let data = xai::data::synth::german_credit(80, 7);
//! let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
//! let row = data.row(0).to_vec();
//! let req = ExplainRequest::new(&data)
//!     .instance(&row)
//!     .plan(RunConfig::seeded(7).with_workers(2));
//! let method = KernelShapMethod::default();
//! let pool = PoolConfig::new("target/debug/xai-shard-worker");
//! let sharded = explain_process_pool(&method, &model, &req, 4, &pool).unwrap();
//! let local = method.explain(&model, &req).unwrap();
//! assert_eq!(sharded.to_json_string(), local.to_json_string());
//! ```

use std::io::Read;
use std::path::PathBuf;
use std::time::Duration;

use xai_core::backend::{BackendJob, ExecutionBackend, ProcessPoolBackend};
use xai_core::{ExplainRequest, Explanation, Json, ModelOracle, XaiError, XaiResult};
use xai_models::Persist;

pub use xai_core::backend::PoolConfig;
pub use xai_core::shard::*;

use xai_counterfactual::DiceMethod;
use xai_datavalue::{BanzhafMethod, LooMethod, TmcMethod};
use xai_rules::AnchorsMethod;
use xai_shapley::{KernelShapMethod, PermutationShapleyMethod};
use xai_surrogate::{LimeMethod, SpLimeMethod};

// ---------------------------------------------------------------------------
// Method factory
// ---------------------------------------------------------------------------

/// Rebuilds a shardable method from its taxonomy card name and canonical
/// config JSON — the worker-side counterpart of
/// [`ShardableExplainer::config_json`]. Unknown methods and malformed
/// configs are typed [`XaiError::Parse`] errors.
pub fn shardable(method: &str, config: &Json) -> XaiResult<Box<dyn ShardableExplainer>> {
    Ok(match method {
        "Permutation sampling Shapley" => {
            Box::new(PermutationShapleyMethod::from_config_json(config)?)
        }
        "Kernel SHAP" => Box::new(KernelShapMethod::from_config_json(config)?),
        "LIME" => Box::new(LimeMethod::from_config_json(config)?),
        "SP-LIME" => Box::new(SpLimeMethod::from_config_json(config)?),
        "Anchors" => Box::new(AnchorsMethod::from_config_json(config)?),
        "DiCE" => Box::new(DiceMethod::from_config_json(config)?),
        "Leave-one-out" => Box::new(LooMethod::from_config_json(config)?),
        "Data Shapley (TMC)" => Box::new(TmcMethod::from_config_json(config)?),
        "Data Banzhaf" => Box::new(BanzhafMethod::from_config_json(config)?),
        other => {
            return Err(wire_error(format!("shard method: '{other}' is not shardable")));
        }
    })
}

// ---------------------------------------------------------------------------
// Model resolution
// ---------------------------------------------------------------------------

/// Any workspace model that can travel in a descriptor: the [`Persist`]
/// implementors, rebuilt from their persisted JSON and usable as a
/// [`ModelOracle`] by delegation.
pub enum PersistedModel {
    /// Ordinary least squares / ridge regression.
    Linear(xai_models::LinearRegression),
    /// Binary logistic regression.
    Logistic(xai_models::LogisticRegression),
    /// A single CART decision tree.
    Tree(xai_models::DecisionTree),
    /// Gradient-boosted decision trees.
    Gbdt(xai_models::Gbdt),
}

impl PersistedModel {
    fn oracle(&self) -> &dyn ModelOracle {
        match self {
            PersistedModel::Linear(m) => m,
            PersistedModel::Logistic(m) => m,
            PersistedModel::Tree(m) => m,
            PersistedModel::Gbdt(m) => m,
        }
    }

    /// The persisted JSON form (round-trips through [`resolve_model`]).
    pub fn save(&self) -> Json {
        match self {
            PersistedModel::Linear(m) => m.save(),
            PersistedModel::Logistic(m) => m.save(),
            PersistedModel::Tree(m) => m.save(),
            PersistedModel::Gbdt(m) => m.save(),
        }
    }
}

impl ModelOracle for PersistedModel {
    fn n_features(&self) -> usize {
        self.oracle().n_features()
    }
    fn predict(&self, x: &[f64]) -> f64 {
        self.oracle().predict(x)
    }
    fn predict_batch(&self, rows: &xai_linalg::Matrix) -> Vec<f64> {
        self.oracle().predict_batch(rows)
    }
    fn gradient(&self, x: &[f64]) -> Option<Vec<f64>> {
        self.oracle().gradient(x)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.oracle().as_any()
    }
}

/// Rebuilds a model from descriptor JSON, dispatching on its persisted
/// `"kind"` tag. Unknown kinds and malformed payloads are typed
/// [`XaiError::Parse`] errors.
pub fn resolve_model(json: &Json) -> XaiResult<PersistedModel> {
    const WHAT: &str = "shard model";
    Ok(match str_field(json, "kind", WHAT)?.as_str() {
        "linear_regression" => PersistedModel::Linear(Persist::load(json)?),
        "logistic_regression" => PersistedModel::Logistic(Persist::load(json)?),
        "decision_tree" => PersistedModel::Tree(Persist::load(json)?),
        "gbdt" => PersistedModel::Gbdt(Persist::load(json)?),
        other => return Err(wire_error(format!("{WHAT}: unknown model kind '{other}'"))),
    })
}

// ---------------------------------------------------------------------------
// Process pool
// ---------------------------------------------------------------------------

/// Runs a shard plan across OS processes — a thin convenience over
/// [`ProcessPoolBackend`] for callers holding a typed [`Persist`] model.
/// The backend cuts the request into descriptors, executes them in waves
/// of [`PoolConfig::max_procs`] worker processes (descriptor on stdin,
/// result on stdout), then merges the partials — bit-identical to
/// `explainer.explain(model, req)` on the parallel path, at any shard
/// count. Worker failure modes all surface as typed errors, never a
/// hang; see the backend docs for the full taxonomy.
pub fn explain_process_pool<M: ModelOracle + Persist>(
    explainer: &dyn ShardableExplainer,
    model: &M,
    req: &ExplainRequest<'_>,
    n_shards: usize,
    pool: &PoolConfig,
) -> XaiResult<Explanation> {
    let backend = ProcessPoolBackend::new(pool.clone());
    let job = BackendJob::new(explainer, model, req, n_shards).with_model_json(model.save());
    Ok(backend.execute(&job)?.explanation)
}

// ---------------------------------------------------------------------------
// The worker side
// ---------------------------------------------------------------------------

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "shard worker panicked".into())
}

/// Executes one wire-form descriptor end to end: parse, rebuild the
/// model (verifying the fingerprint), rebuild the method, run the chunk
/// range. Shared by the stdin worker ([`run_worker`]) and the TCP daemon
/// (`xai::transport`).
pub fn execute_wire_text(input: &str) -> XaiResult<ShardResult> {
    let desc = ShardDescriptor::from_json_str(input)?;
    let model = resolve_model(&desc.model)?;
    let fingerprint = fingerprint_hex(model.save().to_json().as_bytes());
    if fingerprint != desc.fingerprint {
        return Err(wire_error(format!(
            "ShardDescriptor: model fingerprint mismatch (descriptor {}, model {fingerprint})",
            desc.fingerprint
        )));
    }
    let explainer = shardable(&desc.method, &desc.config)?;
    execute_descriptor(&desc, explainer.as_ref(), &model)
}

/// The `xai-shard-worker` entry point: read one [`ShardDescriptor`] from
/// stdin, write one canonical [`ShardResult`] — or a shard error
/// envelope — to stdout, and return the process exit code.
///
/// Handled paths always exit 0; the pool distinguishes success from
/// typed failure by the payload, not the exit code, so an envelope is
/// never mistaken for a crash. A caught panic becomes a `worker_panic`
/// envelope. The `XAI_SHARD_FAULT` variable (`panic`, `garbage`, `exit`,
/// `hang`) injects failure modes for the supervision tests.
pub fn run_worker() -> i32 {
    let fault = std::env::var("XAI_SHARD_FAULT").unwrap_or_default();
    match fault.as_str() {
        "garbage" => {
            println!("this is not shard JSON {{");
            return 0;
        }
        "exit" => return 3,
        "hang" => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        _ => {}
    }
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        let err = XaiError::from_io(&e, "reading shard descriptor from stdin");
        println!("{}", error_to_json(&err).to_json());
        return 0;
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if fault == "panic" {
            panic!("injected shard worker fault");
        }
        execute_wire_text(&input)
    }));
    let text = match outcome {
        Ok(Ok(result)) => result.to_json_string(),
        Ok(Err(e)) => error_to_json(&e).to_json(),
        Err(payload) => {
            let err = XaiError::WorkerPanic { task: 0, message: panic_message(payload) };
            error_to_json(&err).to_json()
        }
    };
    println!("{text}");
    0
}

/// Locates the sibling `xai-shard-worker` binary next to the current
/// executable — the layout `cargo` produces for examples and test
/// binaries. Returns `None` when it is not built, so callers can skip
/// gracefully instead of failing.
pub fn sibling_worker_exe() -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop();
    // Test and example binaries live one level deeper (deps/, examples/).
    for candidate in [dir.clone(), dir.parent()?.to_path_buf()] {
        let exe = candidate.join(format!("xai-shard-worker{}", std::env::consts::EXE_SUFFIX));
        if exe.is_file() {
            return Some(exe);
        }
    }
    None
}
