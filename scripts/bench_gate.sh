#!/usr/bin/env sh
# Bench regression gate for the workspace (DESIGN.md §12).
#
# Runs the Shapley bench suite into a temporary directory and diffs every
# group JSON against the checked-in baselines under
# crates/bench/target/xai-bench/ with the bench_diff tool. A benchmark
# fails the gate when both its median and its minimum exceed the baseline
# by more than the threshold (default 10%) — see bench_diff's docs for why
# both statistics must agree — as does a benchmark that vanished from a
# baselined group.
#
# Usage:
#   scripts/bench_gate.sh                 # gate against checked-in baselines
#   XAI_REGEN_BENCH=1 scripts/bench_gate.sh   # re-baseline: overwrite the
#                                             # checked-in JSONs with this run
#   XAI_BENCH_GATE_THRESHOLD=15 scripts/bench_gate.sh   # custom threshold %
#
# The gate runs only the `shapley` bench target (the one that produces the
# kernel_shap_batched masked-vs-batched numbers the zero-copy work is
# gated on); baselines for groups the run does not emit are left alone.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

BASELINE_DIR="crates/bench/target/xai-bench"
THRESHOLD="${XAI_BENCH_GATE_THRESHOLD:-10}"

CANDIDATE_DIR="$(mktemp -d)"
trap 'rm -rf "$CANDIDATE_DIR"' EXIT

echo "==> cargo bench -p xai-bench --bench shapley (JSON -> $CANDIDATE_DIR)"
XAI_BENCH_JSON_DIR="$CANDIDATE_DIR" cargo bench -q -p xai-bench --bench shapley

if [ "${XAI_REGEN_BENCH:-0}" = "1" ]; then
    echo "==> XAI_REGEN_BENCH=1: adopting this run as the new baseline"
    mkdir -p "$BASELINE_DIR"
    for json in "$CANDIDATE_DIR"/*.json; do
        cp "$json" "$BASELINE_DIR/$(basename "$json")"
        echo "    re-baselined $(basename "$json")"
    done
    echo "bench_gate.sh: baselines regenerated; review and commit them"
    exit 0
fi

# A fresh checkout (or a wiped target/) has no baselines to gate
# against: that is a warning, not a failure — regenerate and commit
# baselines to arm the gate.
if [ ! -d "$BASELINE_DIR" ] || ! ls "$BASELINE_DIR"/*.json >/dev/null 2>&1; then
    echo "bench_gate.sh: WARNING: no baseline JSONs under $BASELINE_DIR; skipping the gate" >&2
    echo "bench_gate.sh: this run produced (and would have gated) these bench JSONs:" >&2
    for json in "$CANDIDATE_DIR"/*.json; do
        [ -e "$json" ] || continue
        echo "    $(basename "$json")" >&2
    done
    echo "bench_gate.sh: run 'XAI_REGEN_BENCH=1 scripts/bench_gate.sh' and commit the baselines to arm it" >&2
    exit 0
fi

echo "==> bench_diff (threshold ${THRESHOLD}%)"
cargo run -q --release -p xai-bench --bin bench_diff -- \
    "$BASELINE_DIR" "$CANDIDATE_DIR" "$THRESHOLD"

echo "bench_gate.sh: no regressions beyond ${THRESHOLD}%"
