#!/usr/bin/env sh
# Offline CI gate for the workspace.
#
# Runs the tier-1 verification (release build + full test suite) plus the
# bench-target compile, all with the network disabled and warnings denied.
# The workspace has no external dependencies, so this passes with an empty
# cargo registry.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The equivalence and oracle suites are part of the workspace run above;
# invoke them by name too so a filtered or partial run can't skip them.
echo "==> cargo test -q --test batch_equivalence"
cargo test -q --test batch_equivalence

echo "==> cargo test -q --test incremental_equivalence"
cargo test -q --test incremental_equivalence

echo "==> cargo test -q -p xai-linalg --test chol_update"
cargo test -q -p xai-linalg --test chol_update

echo "==> cargo test -q -p xai-shapley --test golden_oracle"
cargo test -q -p xai-shapley --test golden_oracle

echo "==> cargo test -q -p xai-models --test properties"
cargo test -q -p xai-models --test properties

echo "==> cargo bench -p xai-bench --no-run (compile only)"
cargo bench -p xai-bench --no-run

echo "ci.sh: all green"
