#!/usr/bin/env sh
# Offline CI gate for the workspace.
#
# Runs the tier-1 verification (release build + full test suite) plus the
# bench-target compile, all with the network disabled and warnings denied.
# The workspace has no external dependencies, so this passes with an empty
# cargo registry.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo bench -p xai-bench --no-run (compile only)"
cargo bench -p xai-bench --no-run

echo "ci.sh: all green"
