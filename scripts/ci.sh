#!/usr/bin/env sh
# Offline CI gate for the workspace.
#
# Runs the tier-1 verification (release build + full test suite) plus the
# bench-target compile, all with the network disabled and warnings denied.
# The workspace has no external dependencies, so this passes with an empty
# cargo registry.
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The equivalence and oracle suites are part of the workspace run above;
# invoke them by name too so a filtered or partial run can't skip them.
echo "==> cargo test -q --test unified_api"
cargo test -q --test unified_api

echo "==> cargo test -q --test registry_completeness"
cargo test -q --test registry_completeness

echo "==> cargo test -q --test batch_equivalence"
cargo test -q --test batch_equivalence

echo "==> cargo test -q --test incremental_equivalence"
cargo test -q --test incremental_equivalence

echo "==> cargo test -q --test fault_injection"
cargo test -q --test fault_injection

echo "==> cargo test -q --test serve_api"
cargo test -q --test serve_api

echo "==> cargo test -q --test serve_concurrency"
cargo test -q --test serve_concurrency

echo "==> cargo test -q --test serve_golden"
cargo test -q --test serve_golden

echo "==> cargo test -q --test shard_equivalence"
cargo test -q --test shard_equivalence

echo "==> cargo test -q --test shard_golden"
cargo test -q --test shard_golden

echo "==> cargo test -q --test shard_faults"
cargo test -q --test shard_faults

echo "==> cargo test -q --test transport_equivalence"
cargo test -q --test transport_equivalence

echo "==> cargo test -q --test transport_faults"
cargo test -q --test transport_faults

echo "==> cargo test -q --test transport_soak"
cargo test -q --test transport_soak

echo "==> cargo test -q --test backend_equivalence"
cargo test -q --test backend_equivalence

echo "==> cargo test -q -p xai-core --test shard_plan"
cargo test -q -p xai-core --test shard_plan

echo "==> cargo test -q -p xai-linalg --test chol_update"
cargo test -q -p xai-linalg --test chol_update

echo "==> cargo test -q -p xai-shapley --test golden_oracle"
cargo test -q -p xai-shapley --test golden_oracle

echo "==> cargo test -q -p xai-models --test properties"
cargo test -q -p xai-models --test properties

echo "==> cargo bench -p xai-bench --no-run (compile only)"
cargo bench -p xai-bench --no-run

# Advisory bench regression gate: reruns the Shapley bench suite and
# diffs medians against the checked-in baselines (scripts/bench_gate.sh,
# DESIGN.md §12). Shared CI hosts have noisy clocks, so a timing
# regression warns here rather than failing the build; run the gate
# directly on quiet hardware before trusting a red result.
echo "==> scripts/bench_gate.sh (bench regression gate, advisory only)"
sh scripts/bench_gate.sh \
    || echo "ci.sh: bench gate reported regressions (advisory only)"

# The unified-layer example doubles as an end-to-end smoke test of the
# runnable registry: every resolve() axis is exercised against a live
# model, and the budgeted/strict plan path runs for real.
echo "==> cargo run --release --example unified_api"
cargo run --release --example unified_api >/dev/null

# The serving demo smoke-tests the explanation-serving engine end to
# end: concurrent JSON submission, cache hits, typed admission control.
echo "==> cargo run --release --example serve_demo"
cargo run --release --example serve_demo >/dev/null

# The shard demo proves the distribution story end to end: unsharded,
# in-process sharded and OS-process-pool runs must emit identical bytes.
echo "==> cargo run --release --example shard_demo"
cargo run --release --example shard_demo >/dev/null

# The cluster demo proves the multi-node transport end to end: two real
# loopback daemons, TCP-shipped descriptors, retry/breaker supervision,
# and graceful in-process degradation — all bit-identical bytes.
echo "==> cargo run --release --example cluster_demo"
cargo run --release --example cluster_demo >/dev/null

# The backend demo proves the unified execution substrate end to end:
# one ServeRequest on the local, process-pool and cluster backends, the
# trait driven directly, and cache/session instrumentation — all
# bit-identical bytes.
echo "==> cargo run --release --example backend_demo"
cargo run --release --example backend_demo >/dev/null

# Execution-substrate call-site gate (DESIGN.md §14): new code must go
# through the ExecutionBackend trait, not call the raw process-pool or
# cluster dispatch loops directly. Blessed: the backend module and the
# transport internals that implement it, the facade convenience wrapper,
# and the pre-backend shard suites that pin the raw runners' semantics.
echo "==> backend call-site gate (explain_process_pool / run_descriptors)"
VIOLATIONS="$(grep -rn --include='*.rs' -E 'explain_process_pool\(|\.run_descriptors\(' \
    src crates tests examples \
    | grep -v -e '^src/shard\.rs:' \
              -e '^crates/core/src/backend\.rs:' \
              -e '^crates/core/src/transport\.rs:' \
              -e '^examples/shard_demo\.rs:' \
              -e '^tests/shard_faults\.rs:' \
              -e '^tests/shard_equivalence\.rs:' \
    || true)"
if [ -n "$VIOLATIONS" ]; then
    echo "ci.sh: direct process-pool/cluster dispatch outside the backend layer:" >&2
    echo "$VIOLATIONS" >&2
    echo "ci.sh: route new callers through xai_core::backend::ExecutionBackend" >&2
    exit 1
fi

# Advisory deprecation audit: the legacy batched/parallel twins are
# deprecated in favour of the unified explainer layer (DESIGN.md §9).
# The blessed call sites opt back in with #[allow(deprecated)], so any
# warning here is a *new* caller reaching for a twin. Advisory only.
echo "==> cargo check --workspace --all-targets (deprecation audit, warnings only)"
RUSTFLAGS="-W deprecated" cargo check -q --workspace --all-targets \
    || echo "ci.sh: deprecation audit reported issues (advisory only)"

# Advisory unwrap/expect audit over the library crates' non-test code.
# Warnings only, never a gate: the panicking convenience APIs are
# intentional `.expect` wrappers over their `try_*` twins (DESIGN.md §8),
# so this pass exists to surface *new* unwraps for review, not to fail.
# RUSTFLAGS is cleared so `-D warnings` cannot escalate these lints.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --lib (unwrap/expect audit, warnings only)"
    RUSTFLAGS="" cargo clippy -q \
        -p xai-rand -p xai-linalg -p xai-data -p xai-core -p xai-models \
        -p xai-shapley -p xai-surrogate -p xai-counterfactual \
        -p xai-datavalue -p xai-provenance -p xai-rules \
        --lib -- -W clippy::unwrap_used -W clippy::expect_used \
        || echo "ci.sh: clippy audit reported issues (advisory only)"
else
    echo "==> clippy not installed; skipping unwrap/expect audit"
fi

echo "ci.sh: all green"
