//! Timing benches for the data-management experiments (E10, E17, E18,
//! E21 in timing form) and the perturbation explainers. Plain binaries on
//! `xai_bench::timing` — run with `cargo bench -p xai-bench`.
// The legacy twin entry points stay under test until removal: this file
// is their bit-identity oracle against the unified layer.
#![allow(deprecated)]

use xai_bench::timing::Group;
use xai_counterfactual::{geco, geco_parallel, random_search_counterfactual, GecoConfig, Plaf};
use xai_data::synth::german_credit;
use xai_models::{proba_fn, LogisticConfig, LogisticRegression};
use xai_provenance::{
    retrain_ridge, tuple_shapley_exact, tuple_shapley_sampled, IncrementalRidge, Polynomial,
};
use xai_rand::parallel::default_workers;
use xai_rules::{apriori, fp_growth, ItemVocabulary};
use xai_surrogate::{LimeConfig, LimeExplainer};

fn bench_geco() {
    let data = german_credit(500, 13);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let plaf = Plaf::from_schema(&data);
    let idx = (0..data.n_rows()).find(|&i| fm(data.row(i)) < 0.35).unwrap();
    let x = data.row(idx).to_vec();
    let workers = default_workers();

    let mut group = Group::new("counterfactual_search").samples(7);
    group.bench("geco_genetic", || geco(&fm, &data, &x, &plaf, GecoConfig::default(), 3));
    group.bench(&format!("geco_4starts_parallel_{workers}w"), || {
        geco_parallel(&fm, &data, &x, &plaf, GecoConfig::default(), 3, 4, workers)
    });
    group.bench("random_search_1500", || {
        random_search_counterfactual(&fm, &data, &x, &plaf, 1500, 3)
    });
    group.finish();
}

fn bench_mining() {
    let data = german_credit(800, 61);
    let vocab = ItemVocabulary::build(&data);
    let txns = vocab.transactions(&data);
    let mut group = Group::new("itemset_mining").samples(7);
    for support in [0.2f64, 0.1] {
        let min_support = ((support * txns.len() as f64).ceil() as usize).max(1);
        group.bench(&format!("apriori/{support}"), || apriori(&txns, min_support));
        group.bench(&format!("fp_growth/{support}"), || fp_growth(&txns, min_support));
    }
    group.finish();
}

fn bench_tuple_shapley() {
    // Star-join provenance with 14 endogenous tuples.
    let mut spokes = Polynomial::zero();
    for i in 1..=13usize {
        spokes = spokes.plus(&Polynomial::var(i));
    }
    let p = Polynomial::var(0).times(&spokes);
    let endo: Vec<usize> = (0..=13).collect();
    let mut group = Group::new("tuple_shapley_14").samples(7);
    group.bench("exact_2^14", || tuple_shapley_exact(&p, &endo));
    group.bench("sampled_1000", || tuple_shapley_sampled(&p, &endo, 1000, 7));
    group.finish();
}

fn bench_priu() {
    let data = xai_data::synth::linear_gaussian(4000, &vec![0.5; 12], 0.0, 91);
    let x = data.x().with_intercept();
    let y: Vec<f64> = data.y().to_vec();
    let base = IncrementalRidge::fit(&x, &y, 1e-3);

    let mut group = Group::new("priu_deletion").samples(7);
    group.bench("incremental_10_deletions", || {
        let mut inc = base.clone();
        for i in 0..10 {
            inc.remove_row(x.row(i * 100), y[i * 100]);
        }
        inc.coef()
    });
    let keep: Vec<usize> = (10..4000).collect();
    let xk = x.select_rows(&keep);
    let yk: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
    group.bench("full_retrain", || retrain_ridge(&xk, &yk, 1e-3));
    group.finish();
}

fn bench_lime() {
    let data = german_credit(600, 17);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let lime = LimeExplainer::fit(&data);
    let fm = proba_fn(&model);
    let x = data.row(0).to_vec();
    let mut group = Group::new("lime").samples(7);
    for n in [250usize, 1000, 4000] {
        group.bench(&format!("n_samples/{n}"), || {
            lime.explain(&fm, &x, LimeConfig { n_samples: n, ..LimeConfig::default() }, 3)
        });
    }
    group.finish();
}

fn main() {
    bench_geco();
    bench_mining();
    bench_tuple_shapley();
    bench_priu();
    bench_lime();
}
