//! Criterion benches for the data-management experiments (E10, E17, E18,
//! E21 in timing form) and the perturbation explainers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xai_counterfactual::{geco, random_search_counterfactual, GecoConfig, Plaf};
use xai_data::synth::german_credit;
use xai_models::{proba_fn, LogisticConfig, LogisticRegression};
use xai_provenance::{
    retrain_ridge, tuple_shapley_exact, tuple_shapley_sampled, IncrementalRidge, Polynomial,
};
use xai_rules::{apriori, fp_growth, ItemVocabulary};
use xai_surrogate::{LimeConfig, LimeExplainer};

fn bench_geco(c: &mut Criterion) {
    let data = german_credit(500, 13);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let plaf = Plaf::from_schema(&data);
    let idx = (0..data.n_rows()).find(|&i| fm(data.row(i)) < 0.35).unwrap();
    let x = data.row(idx).to_vec();

    let mut group = c.benchmark_group("counterfactual_search");
    group.sample_size(10);
    group.bench_function("geco_genetic", |b| {
        b.iter(|| geco(&fm, &data, &x, &plaf, GecoConfig::default(), 3))
    });
    group.bench_function("random_search_1500", |b| {
        b.iter(|| random_search_counterfactual(&fm, &data, &x, &plaf, 1500, 3))
    });
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let data = german_credit(800, 61);
    let vocab = ItemVocabulary::build(&data);
    let txns = vocab.transactions(&data);
    let mut group = c.benchmark_group("itemset_mining");
    group.sample_size(10);
    for support in [0.2f64, 0.1] {
        let min_support = ((support * txns.len() as f64).ceil() as usize).max(1);
        group.bench_with_input(BenchmarkId::new("apriori", support), &min_support, |b, &s| {
            b.iter(|| apriori(&txns, s))
        });
        group.bench_with_input(BenchmarkId::new("fp_growth", support), &min_support, |b, &s| {
            b.iter(|| fp_growth(&txns, s))
        });
    }
    group.finish();
}

fn bench_tuple_shapley(c: &mut Criterion) {
    // Star-join provenance with 14 endogenous tuples.
    let mut spokes = Polynomial::zero();
    for i in 1..=13usize {
        spokes = spokes.plus(&Polynomial::var(i));
    }
    let p = Polynomial::var(0).times(&spokes);
    let endo: Vec<usize> = (0..=13).collect();
    let mut group = c.benchmark_group("tuple_shapley_14");
    group.sample_size(10);
    group.bench_function("exact_2^14", |b| b.iter(|| tuple_shapley_exact(&p, &endo)));
    group.bench_function("sampled_1000", |b| b.iter(|| tuple_shapley_sampled(&p, &endo, 1000, 7)));
    group.finish();
}

fn bench_priu(c: &mut Criterion) {
    let data = xai_data::synth::linear_gaussian(4000, &vec![0.5; 12], 0.0, 91);
    let x = data.x().with_intercept();
    let y: Vec<f64> = data.y().to_vec();
    let base = IncrementalRidge::fit(&x, &y, 1e-3);

    let mut group = c.benchmark_group("priu_deletion");
    group.bench_function("incremental_10_deletions", |b| {
        b.iter(|| {
            let mut inc = base.clone();
            for i in 0..10 {
                inc.remove_row(x.row(i * 100), y[i * 100]);
            }
            inc.coef()
        })
    });
    group.sample_size(10);
    group.bench_function("full_retrain", |b| {
        let keep: Vec<usize> = (10..4000).collect();
        let xk = x.select_rows(&keep);
        let yk: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
        b.iter(|| retrain_ridge(&xk, &yk, 1e-3))
    });
    group.finish();
}

fn bench_lime(c: &mut Criterion) {
    let data = german_credit(600, 17);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let lime = LimeExplainer::fit(&data);
    let fm = proba_fn(&model);
    let x = data.row(0).to_vec();
    let mut group = c.benchmark_group("lime");
    group.sample_size(10);
    for n in [250usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::new("n_samples", n), &n, |b, &n| {
            b.iter(|| lime.explain(&fm, &x, LimeConfig { n_samples: n, ..LimeConfig::default() }, 3))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_geco,
    bench_mining,
    bench_tuple_shapley,
    bench_priu,
    bench_lime
);
criterion_main!(benches);
