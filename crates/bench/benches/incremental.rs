//! Timing benches for the incremental-training utility engine (E33):
//! rank-one model updates versus retraining from scratch inside the
//! valuation drivers, at the acceptance scale n = 200, d = 10. Plain
//! binaries on `xai_bench::timing` — run with `cargo bench -p xai-bench`.

use xai_bench::timing::Group;
use xai_data::synth::linear_gaussian;
use xai_datavalue::{
    leave_one_out, leave_one_out_incremental, tmc_shapley, tmc_shapley_incremental,
    IncrementalUtility, RidgeUtility, RidgeValuationModel, TmcConfig,
};

const N: usize = 200;
const LAMBDA: f64 = 1e-3;

fn main() {
    // d = 10 features; a compact test set keeps scoring from drowning out
    // the training cost under measurement (both paths score identically).
    let weights = [2.0, -1.0, 0.5, 1.5, -0.75, 0.25, -1.25, 0.8, -0.4, 1.1];
    let train = linear_gaussian(N, &weights, 0.0, 5);
    let test = linear_gaussian(40, &weights, 0.0, 6);
    let cfg = TmcConfig { permutations: 8, truncation_tolerance: 0.0, seed: 7 };

    let scratch = RidgeUtility::new(&train, &test, LAMBDA);

    let mut group = Group::new("valuation_incremental").samples(5);
    let retrain = group.bench("tmc_shapley_retrain_n200_d10", || tmc_shapley(&scratch, cfg));
    let incremental = group.bench("tmc_shapley_incremental_n200_d10", || {
        let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, LAMBDA));
        tmc_shapley_incremental(&inc, cfg)
    });
    let loo_retrain = group.bench("leave_one_out_retrain_n200_d10", || leave_one_out(&scratch));
    let loo_incremental = group.bench("leave_one_out_incremental_n200_d10", || {
        let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, LAMBDA));
        leave_one_out_incremental(&inc)
    });
    group.finish();

    let tmc_speedup = retrain.as_secs_f64() / incremental.as_secs_f64();
    let loo_speedup = loo_retrain.as_secs_f64() / loo_incremental.as_secs_f64();
    println!("  tmc speedup incremental vs retrain: {tmc_speedup:.2}x");
    println!("  loo speedup incremental vs retrain: {loo_speedup:.2}x");
    assert!(
        tmc_speedup >= 10.0,
        "acceptance: incremental TMC must be ≥10x over retraining, got {tmc_speedup:.2}x"
    );
}
