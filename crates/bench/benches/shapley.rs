//! Criterion benches for the Shapley estimators (experiments E1/E3 in
//! timing form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xai_data::synth::{friedman1, german_credit};
use xai_models::{
    proba_fn, DecisionTree, Gbdt, GbdtConfig, GbdtLoss, LogisticConfig, LogisticRegression,
    SplitCriterion, TreeConfig,
};
use xai_shapley::{
    brute_force_tree_shap, exact_shapley, gbdt_shap, kernel_shap, permutation_shapley, tree_shap,
    KernelShapConfig, PredictionGame,
};

/// E1: exact enumeration cost doubles per feature; samplers stay flat.
fn bench_exact_vs_samplers(c: &mut Criterion) {
    let data = german_credit(200, 1);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let mut group = c.benchmark_group("shapley_scaling");
    group.sample_size(10);
    for d in [6usize, 9] {
        let fm = proba_fn(&model);
        let wide = move |x: &[f64]| {
            let folded: Vec<f64> = (0..9).map(|j| x[j % x.len()]).collect();
            fm(&folded)
        };
        let background =
            xai_linalg::Matrix::from_fn(8, d, |i, j| data.x()[(i, (i + j) % data.n_features())]);
        let instance: Vec<f64> = (0..d).map(|j| data.x()[(40, j % data.n_features())]).collect();
        let game = PredictionGame::new(&wide, &instance, &background);
        group.bench_with_input(BenchmarkId::new("exact", d), &d, |b, _| {
            b.iter(|| exact_shapley(&game))
        });
        group.bench_with_input(BenchmarkId::new("permutation200", d), &d, |b, _| {
            b.iter(|| permutation_shapley(&game, 200, 3))
        });
        group.bench_with_input(BenchmarkId::new("kernel512", d), &d, |b, _| {
            b.iter(|| {
                kernel_shap(&game, KernelShapConfig { max_coalitions: 512, ..Default::default() })
            })
        });
    }
    group.finish();
}

/// E3: TreeSHAP vs brute force on a single tree.
fn bench_treeshap(c: &mut Criterion) {
    let data = friedman1(500, 3, 0.2);
    let tree = DecisionTree::fit(
        data.x(),
        data.y(),
        TreeConfig {
            max_depth: 6,
            criterion: SplitCriterion::Variance,
            min_samples_leaf: 5,
            ..TreeConfig::default()
        },
    );
    let x = data.row(0).to_vec();
    let mut group = c.benchmark_group("treeshap");
    group.bench_function("tree_shap_poly", |b| b.iter(|| tree_shap(&tree, &x)));
    group.sample_size(10);
    group.bench_function("brute_force_2^d", |b| b.iter(|| brute_force_tree_shap(&tree, &x)));
    group.finish();
}

/// E3b: ensemble explanation cost.
fn bench_gbdt_shap(c: &mut Criterion) {
    let data = friedman1(500, 5, 0.2);
    let gbdt = Gbdt::fit(
        data.x(),
        data.y(),
        GbdtConfig { n_rounds: 100, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
    );
    let x = data.row(0).to_vec();
    c.bench_function("gbdt_shap_100_trees", |b| b.iter(|| gbdt_shap(&gbdt, &x)));
}

criterion_group!(benches, bench_exact_vs_samplers, bench_treeshap, bench_gbdt_shap);
criterion_main!(benches);
