//! Timing benches for the Shapley estimators (experiments E1/E3 in timing
//! form), plus the parallel-vs-sequential Monte-Carlo comparison. Plain
//! binaries on `xai_bench::timing` — run with `cargo bench -p xai-bench`.
// The legacy twin entry points stay under test until removal: this file
// is their bit-identity oracle against the unified layer.
#![allow(deprecated)]

use xai_bench::timing::Group;
use xai_core::{CoalitionMemo, FnOracle, GameKey, ModelOracle};
use xai_data::synth::{friedman1, german_credit};
use xai_models::{
    proba_fn, Classifier, DecisionTree, Gbdt, GbdtConfig, GbdtLoss, LogisticConfig,
    LogisticRegression, SplitCriterion, TreeConfig,
};
use xai_rand::parallel::default_workers;
use xai_shapley::{
    brute_force_tree_shap, exact_shapley, gbdt_shap, kernel_shap, kernel_shap_batched,
    permutation_shapley, permutation_shapley_parallel, tree_shap, BatchPredictionGame, CachedGame,
    KernelShapConfig, MaskedPredictionGame, MemoGame, PredictionGame,
};

/// E1: exact enumeration cost doubles per feature; samplers stay flat.
fn bench_exact_vs_samplers() {
    let data = german_credit(200, 1);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let mut group = Group::new("shapley_scaling");
    for d in [6usize, 9] {
        let fm = proba_fn(&model);
        let wide = move |x: &[f64]| {
            let folded: Vec<f64> = (0..9).map(|j| x[j % x.len()]).collect();
            fm(&folded)
        };
        let background =
            xai_linalg::Matrix::from_fn(8, d, |i, j| data.x()[(i, (i + j) % data.n_features())]);
        let instance: Vec<f64> = (0..d).map(|j| data.x()[(40, j % data.n_features())]).collect();
        let game = PredictionGame::new(&wide, &instance, &background);
        group.bench(&format!("exact/{d}"), || exact_shapley(&game));
        group.bench(&format!("permutation200/{d}"), || permutation_shapley(&game, 200, 3));
        group.bench(&format!("kernel512/{d}"), || {
            kernel_shap(&game, KernelShapConfig { max_coalitions: 512, ..Default::default() })
        });
    }
    group.finish();
}

/// Scalar vs. batched vs. masked Kernel SHAP on the same
/// wide-folded-logistic configuration as `shapley_scaling`'s `kernel512`
/// entries. The batched path materializes each coalition round into one
/// matrix and runs the model through the blocked `xai_linalg` kernels;
/// the cached variant adds the per-call coalition memo on top. The
/// `masked/` variants skip materialization entirely (DESIGN.md §12):
/// coalitions travel as `u64` masks into `ModelOracle::predict_masked`
/// (at d = 9 the logistic model's masked affine kernel; at d = 6 the
/// arena-backed gather fallback behind a closure oracle), and
/// `masked_memo/` layers the cross-request `CoalitionMemo`, warm across
/// samples. Emits `kernel_shap_batched.json` — the primary input to
/// `scripts/bench_gate.sh`.
fn bench_kernel_shap_batched() {
    let data = german_credit(200, 1);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let n_features = data.n_features();
    let mut group = Group::new("kernel_shap_batched");
    let mut speedups = Vec::new();
    for d in [6usize, 9] {
        let fm = proba_fn(&model);
        let wide = move |x: &[f64]| {
            let folded: Vec<f64> = (0..9).map(|j| x[j % x.len()]).collect();
            fm(&folded)
        };
        let model_ref = &model;
        let wide_batched = move |m: &xai_linalg::Matrix| {
            // `wide` above, vectorized: fold each row to 9 dims (a memcpy of
            // the first d columns plus the wrapped remainder). At d = 9 the
            // fold is the identity, so the probe matrix passes through.
            if d == 9 {
                return model_ref.proba_batch(m);
            }
            let mut folded = xai_linalg::Matrix::zeros(m.rows(), 9);
            for i in 0..m.rows() {
                let src = m.row(i);
                let dst = folded.row_mut(i);
                dst[..d].copy_from_slice(src);
                for j in d..9 {
                    dst[j] = src[j % d];
                }
            }
            model_ref.proba_batch(&folded)
        };
        let background =
            xai_linalg::Matrix::from_fn(8, d, |i, j| data.x()[(i, (i + j) % n_features)]);
        let instance: Vec<f64> = (0..d).map(|j| data.x()[(40, j % n_features)]).collect();
        let game = PredictionGame::new(&wide, &instance, &background);
        let batch_game = BatchPredictionGame::new(&wide_batched, &instance, &background);
        let cfg = KernelShapConfig { max_coalitions: 512, ..Default::default() };
        let scalar = group.bench(&format!("scalar/{d}"), || kernel_shap(&game, cfg));
        let batched = group.bench(&format!("batched/{d}"), || kernel_shap_batched(&batch_game, cfg));
        // Warm memo across samples: after the first run every coalition hits.
        let cached_game = CachedGame::new(&batch_game);
        group.bench(&format!("batched_cached/{d}"), || kernel_shap_batched(&cached_game, cfg));
        // Zero-copy masked path: at d = 9 the fold is the identity, so the
        // logistic model itself is the oracle and coalitions run straight
        // through its masked affine kernel; at d = 6 the fold closure has
        // no masked kernel and rides the arena-backed gather default.
        let fold_oracle = FnOracle::new(d, &wide);
        let oracle: &dyn ModelOracle = if d == 9 { model_ref } else { &fold_oracle };
        let masked_game = MaskedPredictionGame::new(oracle, &instance, &background);
        let masked = group.bench(&format!("masked/{d}"), || kernel_shap_batched(&masked_game, cfg));
        // Warm cross-request memo, shared across samples like CachedGame.
        let memo = CoalitionMemo::new(1 << 14);
        let memo_game =
            MemoGame::new(&masked_game, &memo, GameKey::derive(1, &background, &instance));
        group.bench(&format!("masked_memo/{d}"), || kernel_shap_batched(&memo_game, cfg));
        speedups.push((
            d,
            scalar.as_secs_f64() / batched.as_secs_f64(),
            batched.as_secs_f64() / masked.as_secs_f64(),
        ));
    }
    group.finish();
    for (d, batched, masked) in speedups {
        println!("  batched vs scalar at d={d}: {batched:.2}x; masked vs batched: {masked:.2}x");
    }
}

/// The tentpole measurement: 1000-permutation Monte-Carlo Shapley,
/// sequential executor vs. the `xai_rand` fork-join executor at the
/// machine's worker count. Prints the speedup; on a single-core host the
/// two are expected to tie (modulo thread overhead).
fn bench_parallel_mc_shapley() {
    let data = german_credit(200, 1);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let d = data.n_features();
    let fm = proba_fn(&model);
    let background = xai_linalg::Matrix::from_fn(12, d, |i, j| data.x()[(i, j)]);
    let instance: Vec<f64> = data.row(40).to_vec();
    let game = PredictionGame::new(&fm, &instance, &background);
    let workers = default_workers();

    let mut group = Group::new("mc_shapley_1k").samples(7);
    let seq = group.bench("sequential_1000perms", || permutation_shapley(&game, 1000, 3));
    let par1 = group.bench("parallel_1worker", || permutation_shapley_parallel(&game, 1000, 3, 1));
    let parn = group.bench(&format!("parallel_{workers}workers"), || {
        permutation_shapley_parallel(&game, 1000, 3, workers)
    });
    group.finish();
    println!(
        "  speedup vs sequential: {:.2}x ({workers} workers, {} cores)",
        seq.as_secs_f64() / parn.as_secs_f64(),
        default_workers(),
    );
    println!("  executor overhead at 1 worker: {:.2}x", par1.as_secs_f64() / seq.as_secs_f64());
}

/// E3: TreeSHAP vs brute force on a single tree.
fn bench_treeshap() {
    let data = friedman1(500, 3, 0.2);
    let tree = DecisionTree::fit(
        data.x(),
        data.y(),
        TreeConfig {
            max_depth: 6,
            criterion: SplitCriterion::Variance,
            min_samples_leaf: 5,
            ..TreeConfig::default()
        },
    );
    let x = data.row(0).to_vec();
    let mut group = Group::new("treeshap");
    group.bench("tree_shap_poly", || tree_shap(&tree, &x));
    group.bench("brute_force_2^d", || brute_force_tree_shap(&tree, &x));
    group.finish();
}

/// E3b: ensemble explanation cost.
fn bench_gbdt_shap() {
    let data = friedman1(500, 5, 0.2);
    let gbdt = Gbdt::fit(
        data.x(),
        data.y(),
        GbdtConfig { n_rounds: 100, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
    );
    let x = data.row(0).to_vec();
    let mut group = Group::new("gbdt_shap");
    group.bench("gbdt_shap_100_trees", || gbdt_shap(&gbdt, &x));
    group.finish();
}

fn main() {
    bench_exact_vs_samplers();
    bench_kernel_shap_batched();
    bench_parallel_mc_shapley();
    bench_treeshap();
    bench_gbdt_shap();
}
