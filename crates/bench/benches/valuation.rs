//! Timing benches for data valuation and influence (E13/E14 in timing
//! form), including the parallel TMC executor. Plain binaries on
//! `xai_bench::timing` — run with `cargo bench -p xai-bench`.
// The legacy twin entry points stay under test until removal: this file
// is their bit-identity oracle against the unified layer.
#![allow(deprecated)]

use xai_bench::timing::Group;
use xai_data::synth::linear_gaussian;
use xai_datavalue::{
    influence_on_test_loss, knn_shapley, leave_one_out, retraining_ground_truth, tmc_shapley,
    tmc_shapley_parallel, LogisticUtility, Solver, TmcConfig,
};
use xai_models::{LogisticConfig, LogisticRegression};
use xai_rand::parallel::default_workers;

fn bench_valuation() {
    let train = linear_gaussian(60, &[2.0, -1.0], 0.0, 5);
    let test = linear_gaussian(200, &[2.0, -1.0], 0.0, 6);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let u = LogisticUtility::new(&train, &test, config);
    let workers = default_workers();
    let cfg = TmcConfig { permutations: 50, truncation_tolerance: 0.01, seed: 1 };

    let mut group = Group::new("valuation_n60").samples(7);
    group.bench("leave_one_out", || leave_one_out(&u));
    let seq = group.bench("tmc_50perms", || tmc_shapley(&u, cfg));
    let par = group.bench(&format!("tmc_50perms_parallel_{workers}w"), || {
        tmc_shapley_parallel(&u, cfg, workers)
    });
    group.finish();
    println!("  tmc speedup vs sequential: {:.2}x ({workers} workers)", seq.as_secs_f64() / par.as_secs_f64());

    // KNN-Shapley: closed form over 2000 points.
    let big_train = linear_gaussian(2000, &[2.0, -1.0], 0.0, 7);
    let big_test = linear_gaussian(100, &[2.0, -1.0], 0.0, 8);
    let mut group = Group::new("knn_shapley").samples(7);
    group.bench("knn_shapley_n2000", || knn_shapley(&big_train, &big_test, 5));
    group.finish();
}

fn bench_influence() {
    let train = linear_gaussian(400, &[2.0, -1.0, 0.5], 0.0, 9);
    let test = linear_gaussian(200, &[2.0, -1.0, 0.5], 0.0, 10);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let model = LogisticRegression::fit(train.x(), train.y(), config);

    let mut group = Group::new("influence_n400").samples(7);
    group.bench("influence_cholesky", || {
        influence_on_test_loss(&model, &train, &test, Solver::Cholesky)
    });
    group.bench("influence_cg", || {
        influence_on_test_loss(&model, &train, &test, Solver::ConjugateGradient)
    });
    group.bench("loo_retraining_ground_truth", || {
        retraining_ground_truth(&model, &train, &test, config)
    });
    group.finish();
}

fn main() {
    bench_valuation();
    bench_influence();
}
