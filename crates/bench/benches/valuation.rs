//! Criterion benches for data valuation and influence (E13/E14 in timing
//! form).

use criterion::{criterion_group, criterion_main, Criterion};
use xai_data::synth::linear_gaussian;
use xai_datavalue::{
    influence_on_test_loss, knn_shapley, leave_one_out, retraining_ground_truth, tmc_shapley,
    LogisticUtility, Solver, TmcConfig,
};
use xai_models::{LogisticConfig, LogisticRegression};

fn bench_valuation(c: &mut Criterion) {
    let train = linear_gaussian(60, &[2.0, -1.0], 0.0, 5);
    let test = linear_gaussian(200, &[2.0, -1.0], 0.0, 6);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let u = LogisticUtility::new(&train, &test, config);

    let mut group = c.benchmark_group("valuation_n60");
    group.sample_size(10);
    group.bench_function("leave_one_out", |b| b.iter(|| leave_one_out(&u)));
    group.bench_function("tmc_50perms", |b| {
        b.iter(|| tmc_shapley(&u, TmcConfig { permutations: 50, truncation_tolerance: 0.01, seed: 1 }))
    });
    group.finish();

    // KNN-Shapley: closed form over 2000 points.
    let big_train = linear_gaussian(2000, &[2.0, -1.0], 0.0, 7);
    let big_test = linear_gaussian(100, &[2.0, -1.0], 0.0, 8);
    c.bench_function("knn_shapley_n2000", |b| b.iter(|| knn_shapley(&big_train, &big_test, 5)));
}

fn bench_influence(c: &mut Criterion) {
    let train = linear_gaussian(400, &[2.0, -1.0, 0.5], 0.0, 9);
    let test = linear_gaussian(200, &[2.0, -1.0, 0.5], 0.0, 10);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let model = LogisticRegression::fit(train.x(), train.y(), config);

    let mut group = c.benchmark_group("influence_n400");
    group.bench_function("influence_cholesky", |b| {
        b.iter(|| influence_on_test_loss(&model, &train, &test, Solver::Cholesky))
    });
    group.bench_function("influence_cg", |b| {
        b.iter(|| influence_on_test_loss(&model, &train, &test, Solver::ConjugateGradient))
    });
    group.sample_size(10);
    group.bench_function("loo_retraining_ground_truth", |b| {
        b.iter(|| retraining_ground_truth(&model, &train, &test, config))
    });
    group.finish();
}

criterion_group!(benches, bench_valuation, bench_influence);
criterion_main!(benches);
