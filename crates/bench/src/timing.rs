//! Minimal wall-clock benchmark harness (the in-tree criterion
//! replacement).
//!
//! Each benchmark runs a warm-up iteration followed by `samples` timed
//! iterations and reports the **median** wall-clock time — robust to the
//! occasional scheduler hiccup without criterion's statistical machinery.
//! Results print as an aligned table and are also written as JSON to
//! `target/xai-bench/<group>.json` so runs can be diffed or tracked by
//! scripts.
//!
//! Knobs (environment variables):
//! - `XAI_BENCH_SAMPLES` — timed iterations per benchmark (default 11).
//! - `XAI_BENCH_JSON_DIR` — where JSON reports go (default
//!   `target/xai-bench`; set to `-` to disable writing).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name within the group.
    pub name: String,
    /// Median of the timed iterations.
    pub median: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
    /// Number of timed iterations.
    pub samples: usize,
}

/// A named group of benchmarks sharing a sample count.
pub struct Group {
    name: String,
    samples: usize,
    measurements: Vec<Measurement>,
}

fn env_samples() -> usize {
    std::env::var("XAI_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(11)
}

impl Group {
    /// Creates a group with the sample count from `XAI_BENCH_SAMPLES`
    /// (default 11).
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), samples: env_samples(), measurements: Vec::new() }
    }

    /// Overrides the per-benchmark sample count (for expensive subjects).
    pub fn samples(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one sample");
        self.samples = n;
        self
    }

    /// Times `f` and records the measurement; returns the median.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> Duration {
        black_box(f()); // warm-up: page in code and data, fill caches
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let m = Measurement {
            name: name.to_string(),
            median,
            min: times[0],
            max: times[times.len() - 1],
            samples: self.samples,
        };
        self.measurements.push(m);
        median
    }

    /// Renders the results table, writes the JSON report, and returns the
    /// measurements.
    pub fn finish(self) -> Vec<Measurement> {
        let mut table = crate::Table::new(
            &format!("bench {} (median of {})", self.name, self.samples),
            &["benchmark", "median", "min", "max"],
        );
        for m in &self.measurements {
            table.row(vec![
                m.name.clone(),
                crate::fmt_duration(m.median),
                crate::fmt_duration(m.min),
                crate::fmt_duration(m.max),
            ]);
        }
        table.print();
        if let Some(path) = self.json_path() {
            if let Err(e) = std::fs::create_dir_all(path.parent().expect("dir has parent"))
                .and_then(|()| std::fs::write(&path, self.to_json()))
            {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  json: {}", path.display());
            }
        }
        self.measurements
    }

    fn json_path(&self) -> Option<std::path::PathBuf> {
        let dir = std::env::var("XAI_BENCH_JSON_DIR").unwrap_or_else(|_| "target/xai-bench".into());
        if dir == "-" {
            return None;
        }
        Some(std::path::PathBuf::from(dir).join(format!("{}.json", self.name)))
    }

    /// Serializes the group as a JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"group\": {},\n", json_string(&self.name)));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str("  \"benchmarks\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}{}\n",
                json_string(&m.name),
                m.median.as_nanos(),
                m.min.as_nanos(),
                m.max.as_nanos(),
                if i + 1 < self.measurements.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_median_between_extremes() {
        let mut g = Group::new("unit-test").samples(5);
        let mut calls = 0u32;
        let median = g.bench("noop", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 6, "warm-up + 5 samples");
        let m = &g.measurements[0];
        assert!(m.min <= median && median <= m.max);
    }

    #[test]
    fn json_is_well_formed() {
        let mut g = Group::new("json\"test").samples(1);
        g.bench("a", || 1 + 1);
        g.bench("b", || 2 + 2);
        let j = g.to_json();
        assert!(j.contains("\"group\": \"json\\\"test\""));
        assert!(j.contains("\"median_ns\""));
        assert_eq!(j.matches("\"name\"").count(), 2);
        // One comma between the two benchmark objects, none trailing.
        assert!(j.contains("}},\n") || j.contains("},\n"));
        assert!(!j.contains(",\n  ]"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
