//! # xai-bench
//!
//! Experiment harness regenerating every quantitative claim catalogued in
//! DESIGN.md §4 (E1–E22). `cargo run -p xai-bench --release --bin
//! experiments` prints all tables; pass experiment ids (`E1 E3 …`) to run
//! a subset, or `--quick` for reduced sizes. Wall-clock timing benches
//! (plain binaries on the in-tree [`timing`] harness — no external bench
//! framework) live under `benches/`; run them with
//! `cargo bench -p xai-bench`.

pub mod timing;

use std::time::{Duration, Instant};

/// A printable result table.
pub struct Table {
    /// Experiment id + claim, printed as the header block.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout with aligned columns.
    pub fn print(&self) {
        println!("\n━━ {} ━━", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", padded.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "─".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration compactly.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// Formats a float with 4 significant decimals.
pub fn f(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("E0 — smoke", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        t.print();
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
    }
}
