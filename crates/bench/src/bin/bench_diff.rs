//! Bench regression differ: compares two directories of
//! `xai_bench::timing` group JSONs and fails on slowdowns.
//!
//! ```text
//! bench_diff <baseline_dir> <candidate_dir> [threshold_pct]
//! ```
//!
//! For every `<group>.json` present in the *candidate* directory that has
//! a checked-in twin in the baseline directory, each benchmark's
//! `median_ns` is compared. The exit code is non-zero when
//!
//! - a benchmark regressed beyond `threshold_pct` percent (default 10), or
//! - a benchmark named in the baseline group is missing from the
//!   candidate (a silently dropped bench must not pass the gate).
//!
//! Benchmarks that are *new* in the candidate (no baseline entry) are
//! reported informationally and do not fail the gate — re-baseline with
//! `XAI_REGEN_BENCH=1 scripts/bench_gate.sh` to adopt them.
//!
//! "Regressed" requires **both** the median and the minimum to exceed the
//! threshold. The median is the headline statistic (a single noisy sample
//! cannot flip it), but on shared hosts whole windows of samples can be
//! stolen by a co-tenant, inflating every sample at once; the minimum is
//! the most noise-robust location statistic (interference only ever adds
//! time), so a genuine code regression moves both while a loaded run
//! typically leaves the best sample near the baseline. A median-only
//! slowdown is reported as `warn` and does not fail the gate.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

use xai_core::parse_json;

/// `name -> (median_ns, min_ns)` for one group JSON, in name order.
fn load_group(path: &Path) -> Result<BTreeMap<String, (f64, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    let json = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let benches = json
        .get("benchmarks")
        .and_then(|b| b.as_arr())
        .ok_or_else(|| format!("{}: missing \"benchmarks\" array", path.display()))?;
    let mut stats = BTreeMap::new();
    for bench in benches {
        let name = bench
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("{}: benchmark without a name", path.display()))?;
        let median = bench
            .get("median_ns")
            .and_then(|m| m.as_num())
            .ok_or_else(|| format!("{}: {name}: missing median_ns", path.display()))?;
        let min = bench
            .get("min_ns")
            .and_then(|m| m.as_num())
            .ok_or_else(|| format!("{}: {name}: missing min_ns", path.display()))?;
        stats.insert(name.to_string(), (median, min));
    }
    Ok(stats)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: bench_diff <baseline_dir> <candidate_dir> [threshold_pct]");
        return ExitCode::from(2);
    }
    let baseline_dir = Path::new(&args[1]);
    let candidate_dir = Path::new(&args[2]);
    let threshold_pct: f64 = match args.get(3).map(|s| s.parse()) {
        None => 10.0,
        Some(Ok(v)) if v >= 0.0 => v,
        Some(_) => {
            eprintln!("bench_diff: threshold must be a non-negative number");
            return ExitCode::from(2);
        }
    };

    // Every group the candidate run produced, sorted for stable output.
    let mut groups: Vec<String> = match std::fs::read_dir(candidate_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".json").map(str::to_string)
            })
            .collect(),
        Err(e) => {
            eprintln!("bench_diff: cannot read {}: {e}", candidate_dir.display());
            return ExitCode::from(2);
        }
    };
    groups.sort();
    if groups.is_empty() {
        eprintln!("bench_diff: no group JSONs in {}", candidate_dir.display());
        return ExitCode::from(2);
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for group in &groups {
        let baseline_path = baseline_dir.join(format!("{group}.json"));
        if !baseline_path.exists() {
            println!("{group}: no baseline (new group, not gated)");
            continue;
        }
        let baseline = match load_group(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::from(2);
            }
        };
        let candidate = match load_group(&candidate_dir.join(format!("{group}.json"))) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bench_diff: {e}");
                return ExitCode::from(2);
            }
        };
        for (name, &(base_median, base_min)) in &baseline {
            match candidate.get(name) {
                None => {
                    println!("FAIL {group}/{name}: present in baseline, missing from candidate");
                    failures += 1;
                }
                Some(&(cand_median, cand_min)) => {
                    compared += 1;
                    let median_pct = (cand_median - base_median) / base_median * 100.0;
                    let min_pct = (cand_min - base_min) / base_min * 100.0;
                    let median_slow = median_pct > threshold_pct;
                    let regressed = median_slow && min_pct > threshold_pct;
                    let verdict = if regressed {
                        "FAIL"
                    } else if median_slow {
                        "warn"
                    } else {
                        "  ok"
                    };
                    println!(
                        "{verdict} {group}/{name}: median {base_median:.0}ns -> {cand_median:.0}ns \
                         ({median_pct:+.1}%), min {base_min:.0}ns -> {cand_min:.0}ns ({min_pct:+.1}%)"
                    );
                    if regressed {
                        failures += 1;
                    }
                }
            }
        }
        for name in candidate.keys() {
            if !baseline.contains_key(name) {
                println!(" new {group}/{name}: no baseline entry (not gated)");
            }
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_diff: {failures} regression(s) beyond {threshold_pct}% across {compared} compared benchmarks"
        );
        ExitCode::FAILURE
    } else {
        println!("bench_diff: {compared} benchmarks within {threshold_pct}% of baseline");
        ExitCode::SUCCESS
    }
}
