//! E17–E19, E22: the data-management experiments (§3).

use xai_bench::{f, fmt_duration, time, Table};
use xai_data::synth::linear_gaussian;
use xai_models::{LogisticConfig, LogisticRegression};
use xai_provenance::{
    attribute_error_to_stages, complaint_influence, inject_sentinels, retrain_ridge,
    top_suspects, tuple_shapley_exact, tuple_shapley_sampled, Complaint, FilterStage,
    ImputeStage, IncrementalRidge, Pipeline, Polynomial, PredicateCountQuery, ScaleStage,
};

/// E17 — "The Shapley value of tuples in query answering" (§3): exact vs
/// sampled agreement, and the exponential wall of the exact computation.
pub fn e17(quick: bool) {
    // A provenance polynomial shaped like a star join:
    // answer ⇐ hub·(s₁ + s₂ + … + s_k).
    let star = |k: usize| -> Polynomial {
        let mut spokes = Polynomial::zero();
        for i in 1..=k {
            spokes = spokes.plus(&Polynomial::var(i));
        }
        Polynomial::var(0).times(&spokes)
    };
    let mut table = Table::new(
        "E17  tuple Shapley: exact (2^n) vs sampled (1000 permutations)",
        &["endogenous tuples", "exact time", "sampled time", "max |Δφ|", "hub φ exact"],
    );
    let sizes: &[usize] = if quick { &[4, 8, 12] } else { &[4, 8, 12, 16, 20] };
    for &k in sizes {
        let p = star(k);
        let endo: Vec<usize> = (0..=k).collect();
        let (exact, t_exact) = time(|| tuple_shapley_exact(&p, &endo));
        let (sampled, t_sampled) = time(|| tuple_shapley_sampled(&p, &endo, 1000, 7));
        let max_diff = exact
            .iter()
            .zip(&sampled)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        table.row(vec![
            (k + 1).to_string(),
            fmt_duration(t_exact),
            fmt_duration(t_sampled),
            format!("{max_diff:.3}"),
            f(exact[0]),
        ]);
    }
    table.print();
    println!("  shape: hub tuple carries most responsibility; exact cost doubles per tuple.");
}

/// E18 — PrIU: "incremental computation of model parameters" (§3): batch
/// deletions via Sherman–Morrison downdates match full retraining to
/// machine precision at a large speedup.
pub fn e18(quick: bool) {
    let n = if quick { 2000 } else { 8000 };
    let d = 12;
    let data = linear_gaussian(n, &vec![0.5; d], 0.0, 91);
    let x = data.x().with_intercept();
    let y: Vec<f64> = data.y().to_vec();
    let mut table = Table::new(
        "E18  PrIU incremental deletion vs full retrain (ridge regression)",
        &["deletions", "incremental", "full retrain", "speedup", "max |Δcoef|"],
    );
    for &k in &[1usize, 10, 100] {
        let delete: Vec<usize> = (0..k).map(|i| i * (n / k.max(1))).collect();
        let mut inc = IncrementalRidge::fit(&x, &y, 1e-3);
        let (_, t_inc) = time(|| {
            for &i in &delete {
                inc.remove_row(x.row(i), y[i]);
            }
        });
        let keep: Vec<usize> = (0..n).filter(|i| !delete.contains(i)).collect();
        let xk = x.select_rows(&keep);
        let yk: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
        let (truth, t_full) = time(|| retrain_ridge(&xk, &yk, 1e-3));
        let max_diff = inc
            .coef()
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        table.row(vec![
            k.to_string(),
            fmt_duration(t_inc),
            fmt_duration(t_full),
            format!("{:.0}x", t_full.as_secs_f64() / t_inc.as_secs_f64().max(1e-12)),
            format!("{max_diff:.1e}"),
        ]);
    }
    table.print();
}

/// E19 — Rain: "identify data points that are responsible for an error in
/// a query result" (§3): precision@k of complaint-driven influence
/// ranking against the injected corruption, plus the query shift after
/// deleting the suspects.
pub fn e19(quick: bool) {
    let n = if quick { 200 } else { 400 };
    let mut train = linear_gaussian(n, &[2.0, -1.0], 0.0, 101);
    let serving = linear_gaussian(400, &[2.0, -1.0], 0.0, 102);
    // Inflate: flip 10% of negatives to positive.
    use xai_rand::seq::SliceRandom;
    use xai_rand::SeedableRng;
    let mut rng = xai_rand::rngs::StdRng::seed_from_u64(7);
    let mut zeros: Vec<usize> = (0..n).filter(|&i| train.y()[i] < 0.5).collect();
    zeros.shuffle(&mut rng);
    zeros.truncate(n / 10);
    for &i in &zeros {
        train.set_label(i, 1.0);
    }
    zeros.sort_unstable();

    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let model = LogisticRegression::fit(train.x(), train.y(), config);
    let query = PredicateCountQuery::new(&serving, |_| true);
    let before = query.hard_value(&model);
    let att = complaint_influence(&model, &train, &query, Complaint::TooHigh);

    let mut table = Table::new(
        "E19  complaint-driven debugging (count too high)",
        &["k suspects deleted", "precision@k", "count before", "count after"],
    );
    for k in [zeros.len() / 2, zeros.len(), zeros.len() * 2] {
        let suspects = top_suspects(&att, k);
        let hits = suspects.iter().filter(|s| zeros.contains(s)).count();
        let cleaned = train.without(&suspects);
        let refit = LogisticRegression::fit(cleaned.x(), cleaned.y(), config);
        table.row(vec![
            k.to_string(),
            f(hits as f64 / k as f64),
            format!("{before}"),
            format!("{}", query.hard_value(&refit)),
        ]);
    }
    table.print();
    println!("  ({} tuples were truly corrupted; random guessing precision ≈ 0.10)", zeros.len());
}

/// E22 — pipeline provenance (§3): a buggy preparation stage is identified
/// by stage ablation; per-stage provenance records show what each touched.
pub fn e22(quick: bool) {
    let n = if quick { 300 } else { 600 };
    let mut raw = linear_gaussian(n, &[2.0, -1.5], 0.0, 111);
    let test = linear_gaussian(300, &[2.0, -1.5], 0.0, 112);
    inject_sentinels(&mut raw, 0, 12, 99.0);
    let pipeline = Pipeline::new(vec![
        Box::new(ImputeStage { name: "impute_x0".into(), column: 0, lo: -6.0, hi: 6.0, fill: 0.0 }),
        // The bug lives on a *different* column than the imputer so the
        // two stages do not mask each other.
        Box::new(ScaleStage {
            name: "buggy_rescale_x1".into(),
            column: 1,
            factor: -0.05,
            offset: 3.0,
        }),
        Box::new(FilterStage { name: "noop_filter".into(), keep: |_| true }),
    ]);
    let (_, records) = pipeline.run(&raw);
    let scores = attribute_error_to_stages(&pipeline, &raw, &test, LogisticConfig::default());

    let mut table = Table::new(
        "E22  pipeline-stage accountability (positive = stage is harmful)",
        &["stage", "rows touched", "ablation Δaccuracy"],
    );
    for (record, (name, score)) in records.iter().zip(&scores) {
        table.row(vec![name.clone(), record.rows_affected.to_string(), format!("{score:+.4}")]);
    }
    table.print();
    println!("  shape: the injected buggy rescale dominates; the legitimate impute scores negative.");
}
