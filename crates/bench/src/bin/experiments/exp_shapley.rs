//! E1–E4, E16: the Shapley-family experiments (§2.1.2–2.1.3).

use xai_bench::{f, fmt_duration, time, Table};
use xai_data::synth::{credit_scm, friedman1, german_credit};
use xai_models::{
    proba_fn, Gbdt, GbdtConfig, GbdtLoss, LogisticConfig, LogisticRegression, SplitCriterion,
    TreeConfig,
};
use xai_shapley::{
    brute_force_tree_shap, causal_shapley, exact_shapley, kernel_shap, permutation_shapley,
    tree_shap, CooperativeGame, KernelShapConfig, PredictionGame,
};

/// E1 — "Computing Shapley values takes exponential time" (§2.1.2):
/// exact enumeration wall-time doubles per added feature while sampling
/// estimators stay flat at a fixed budget.
pub fn e1(quick: bool) {
    let max_d = if quick { 12 } else { 16 };
    let mut table = Table::new(
        "E1  exact Shapley is exponential in features; samplers are not",
        &["features", "coalitions", "exact", "permutation (200)", "kernel (512)"],
    );
    let data = german_credit(200, 1);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    for d in (4..=max_d).step_by(4) {
        // Synthetic game: restrict the model to its first d "virtual"
        // features by tiling the credit features.
        let f_model = proba_fn(&model);
        let wide = move |x: &[f64]| {
            let folded: Vec<f64> = (0..9).map(|j| x[j % x.len()]).collect();
            f_model(&folded)
        };
        let background = xai_linalg::Matrix::from_fn(16, d, |i, j| {
            data.x()[(i, (i + j) % data.n_features())]
        });
        let instance: Vec<f64> = (0..d).map(|j| data.x()[(40, j % data.n_features())]).collect();
        let game = PredictionGame::new(&wide, &instance, &background);
        let (_, t_exact) = time(|| exact_shapley(&game));
        let (_, t_perm) = time(|| permutation_shapley(&game, 200, 3));
        let (_, t_kernel) = time(|| {
            kernel_shap(&game, KernelShapConfig { max_coalitions: 512, ..Default::default() })
        });
        table.row(vec![
            d.to_string(),
            format!("2^{d}"),
            fmt_duration(t_exact),
            fmt_duration(t_perm),
            fmt_duration(t_kernel),
        ]);
    }
    table.print();
}

/// E2 — approximation error of the samplers converges to the exact values
/// as the budget grows (§2.1.2 "existing methods compute some
/// approximation").
pub fn e2(quick: bool) {
    let data = german_credit(300, 2);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let background = data.x().select_rows(&(0..24).collect::<Vec<_>>());
    let instance = data.row(7);
    let game = PredictionGame::new(&fm, instance, &background);
    let exact = exact_shapley(&game);
    let budgets: &[usize] = if quick { &[16, 64, 256] } else { &[16, 64, 256, 1024, 4096] };
    let mut table = Table::new(
        "E2  sampler error vs budget (mean |φ̂−φ| over 9 features)",
        &["budget", "permutation err", "kernel-SHAP err"],
    );
    for &b in budgets {
        let perm = permutation_shapley(&game, b / 10 + 1, 5);
        let kern = kernel_shap(&game, KernelShapConfig { max_coalitions: b, ..Default::default() });
        let err = |phi: &[f64]| -> f64 {
            phi.iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / exact.len() as f64
        };
        table.row(vec![b.to_string(), f(err(&perm.phi)), f(err(&kern.phi))]);
    }
    table.print();
}

/// E3 — "TreeSHAP introduces a polynomial-time algorithm" (§2.1.2):
/// identical values to brute-force conditional-expectation Shapley, at a
/// fraction of the cost that grows only with tree size.
pub fn e3(quick: bool) {
    let n = if quick { 300 } else { 800 };
    let data = friedman1(n, 3, 0.2);
    let mut table = Table::new(
        "E3  TreeSHAP (polynomial) vs brute-force exact (2^d) on one tree",
        &["depth", "leaves", "treeshap", "brute force", "max |Δφ|", "speedup"],
    );
    for depth in [3usize, 5, 7] {
        let tree = xai_models::DecisionTree::fit(
            data.x(),
            data.y(),
            TreeConfig {
                max_depth: depth,
                criterion: SplitCriterion::Variance,
                min_samples_leaf: 5,
                ..TreeConfig::default()
            },
        );
        let x = data.row(0);
        let (fast, t_fast) = time(|| tree_shap(&tree, x));
        let (slow, t_slow) = time(|| brute_force_tree_shap(&tree, x));
        let max_diff = fast
            .iter()
            .zip(&slow)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        table.row(vec![
            depth.to_string(),
            tree.n_leaves().to_string(),
            fmt_duration(t_fast),
            fmt_duration(t_slow),
            format!("{max_diff:.2e}"),
            format!("{:.0}x", t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-9)),
        ]);
    }
    table.print();
}

/// E4 — the efficiency axiom: "attributions add up to the difference of
/// the prediction and the average prediction" (§2.1.2) — checked across
/// every estimator on a real model.
pub fn e4(_quick: bool) {
    let data = german_credit(400, 4);
    let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 30, ..GbdtConfig::default() });
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let background = data.x().select_rows(&(0..32).collect::<Vec<_>>());
    let instance = data.row(11);
    let game = PredictionGame::new(&fm, instance, &background);
    let v0 = game.empty_value();
    let v1 = game.grand_value();

    let mut table = Table::new(
        "E4  efficiency axiom: |Σφ − (f(x) − E f)| per method",
        &["method", "Σφ", "target", "gap"],
    );
    let mut push = |name: &str, phi: &[f64], target: f64| {
        let total: f64 = phi.iter().sum();
        table.row(vec![name.to_string(), f(total), f(target), format!("{:.2e}", (total - target).abs())]);
    };
    push("exact", &exact_shapley(&game), v1 - v0);
    push(
        "kernel SHAP",
        &kernel_shap(&game, KernelShapConfig::default()).phi,
        v1 - v0,
    );
    push("permutation (500)", &permutation_shapley(&game, 500, 7).phi, v1 - v0);
    let ts = xai_shapley::gbdt_shap(&gbdt, instance);
    push("TreeSHAP (margin)", &ts.phi, gbdt.margin(instance) - ts.expected_value);
    table.print();
}

/// E16 — causal vs marginal Shapley on a correlated SCM (§2.1.3): the
/// marginal game gives indirect causes zero credit; the interventional
/// game routes credit through the causal chain; direct + indirect = total.
pub fn e16(quick: bool) {
    let n_mc = if quick { 500 } else { 2000 };
    let labeled = credit_scm();
    // Model reads savings only: education/income matter only causally.
    let model = |x: &[f64]| x[2];
    let instance = [16.0, 7.5, 7.0];
    let causal = causal_shapley(&model, &labeled, &instance, n_mc, 5);
    use xai_rand::SeedableRng;
    let mut rng = xai_rand::rngs::StdRng::seed_from_u64(9);
    let (xs, _) = labeled.sample_examples(&mut rng, n_mc);
    let background = xai_linalg::Matrix::from_rows(&xs);
    let game = PredictionGame::new(&model, &instance, &background);
    let marginal = exact_shapley(&game);
    let dec = xai_shapley::effect_decomposition(&model, &labeled, &instance, n_mc, 7);

    let mut table = Table::new(
        "E16  causal vs marginal Shapley (model reads `savings` only)",
        &["feature", "marginal φ", "causal φ", "direct", "indirect"],
    );
    for (i, name) in ["education", "income", "savings"].iter().enumerate() {
        table.row(vec![
            name.to_string(),
            f(marginal[i]),
            f(causal[i]),
            f(dec.direct[i]),
            f(dec.indirect[i]),
        ]);
    }
    table.print();
    println!(
        "  shape check: marginal credits only savings; causal spreads credit\n\
         \u{20}\u{20}upstream through education → income → savings (Heskes et al.)."
    );
}

/// E1 appendix: GBDT TreeSHAP cost scales linearly in rounds.
pub fn e3_ensemble(quick: bool) {
    let n = if quick { 300 } else { 600 };
    let data = friedman1(n, 5, 0.2);
    let mut table = Table::new(
        "E3b TreeSHAP on ensembles: cost grows linearly with rounds",
        &["rounds", "explain one row"],
    );
    for rounds in [10usize, 40, 160] {
        let gbdt = Gbdt::fit(
            data.x(),
            data.y(),
            GbdtConfig { n_rounds: rounds, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let (_, t) = time(|| xai_shapley::gbdt_shap(&gbdt, data.row(0)));
        table.row(vec![rounds.to_string(), fmt_duration(t)]);
    }
    table.print();
}
