//! E8, E20, E21: rule-based explanations and the mining substrate (§2.2).

use xai_bench::{f, fmt_duration, time, Table};
use xai_data::synth::german_credit;
use xai_models::{proba_fn, DecisionTree, Gbdt, GbdtConfig, TreeConfig};
use xai_rules::{
    apriori, fp_growth, is_sufficient, sufficiency_score, sufficient_reason, AnchorsConfig,
    AnchorsExplainer, ItemVocabulary,
};

/// E8 — "Anchors … short and widely applicable rules" (§2.2): precision
/// and coverage of anchors across instances, with rule length capped at
/// the tutorial's comprehensibility bound.
pub fn e8(quick: bool) {
    let data = german_credit(if quick { 400 } else { 800 }, 43);
    let model = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 30, ..GbdtConfig::default() });
    let fm = proba_fn(&model);
    let anchors = AnchorsExplainer::fit(&data);
    let n_instances = if quick { 6 } else { 15 };
    let mut table = Table::new(
        "E8  Anchors: precision / coverage / length per instance",
        &["instance", "precision", "coverage", "clauses"],
    );
    let mut mean_precision = 0.0;
    for i in 0..n_instances {
        let rule = anchors.explain(&fm, data.row(i), AnchorsConfig::default(), i as u64);
        mean_precision += rule.precision / n_instances as f64;
        table.row(vec![
            i.to_string(),
            f(rule.precision),
            f(rule.coverage),
            rule.len().to_string(),
        ]);
    }
    table.print();
    println!("  mean precision {mean_precision:.3} (target τ = 0.95; Ribeiro et al. report ≳0.95)");
}

/// E20 — "sufficient/necessary explanations … sufficiency score of 1"
/// (§2.2.2): prime implicants on decision trees force the prediction
/// (score exactly 1), are minimal, and are much smaller than the full
/// feature set.
pub fn e20(quick: bool) {
    let data = german_credit(if quick { 300 } else { 600 }, 81);
    let tree = DecisionTree::fit(
        data.x(),
        data.y(),
        TreeConfig { max_depth: 6, min_samples_leaf: 8, ..TreeConfig::default() },
    );
    let names: Vec<&str> = data.schema().names();
    let fm = proba_fn(&tree);
    let n_instances = if quick { 8 } else { 20 };
    let mut table = Table::new(
        "E20  sufficient reasons (prime implicants) on a depth-6 tree",
        &["instance", "|reason|", "path features", "sufficiency", "minimal"],
    );
    for i in 0..n_instances {
        let x = data.row(i);
        let reason = sufficient_reason(&tree, x, &names);
        let path_features: std::collections::HashSet<usize> = tree
            .decision_path(x)
            .iter()
            .filter(|&&id| !tree.nodes()[id].is_leaf())
            .map(|&id| tree.nodes()[id].feature)
            .collect();
        let score = sufficiency_score(&fm, x, &reason.features, data.x(), 400, 3);
        // Minimality: removing any feature breaks forcing.
        let mut fixed = vec![false; data.n_features()];
        for &j in &reason.features {
            fixed[j] = true;
        }
        let minimal = reason.features.iter().all(|&j| {
            fixed[j] = false;
            let broken = !is_sufficient(&tree, x, &fixed);
            fixed[j] = true;
            broken
        });
        table.row(vec![
            i.to_string(),
            reason.features.len().to_string(),
            path_features.len().to_string(),
            f(score),
            minimal.to_string(),
        ]);
    }
    table.print();
}

/// E21 — the mining substrate (§2.2.1): FP-Growth returns byte-identical
/// itemsets to Apriori while avoiding candidate generation; runtime gap
/// grows as support drops.
pub fn e21(quick: bool) {
    let data = german_credit(if quick { 400 } else { 1000 }, 61);
    let vocab = ItemVocabulary::build(&data);
    let txns = vocab.transactions(&data);
    let supports: &[f64] = if quick { &[0.3, 0.2] } else { &[0.3, 0.2, 0.1, 0.05] };
    let mut table = Table::new(
        "E21  Apriori vs FP-Growth (identical output, different cost)",
        &["min support", "itemsets", "apriori", "fp-growth", "identical"],
    );
    for &s in supports {
        let min_support = ((s * txns.len() as f64).ceil() as usize).max(1);
        let (a, t_a) = time(|| apriori(&txns, min_support));
        let (g, t_g) = time(|| fp_growth(&txns, min_support));
        table.row(vec![
            format!("{s:.2}"),
            a.len().to_string(),
            fmt_duration(t_a),
            fmt_duration(t_g),
            (a == g).to_string(),
        ]);
    }
    table.print();
}
