//! E9–E11: counterfactual explanations and recourse (§2.1.4, §3).

use xai_bench::{f, fmt_duration, time, Table};
use xai_counterfactual::{
    diversity, geco, random_search_counterfactual, DiceConfig, DiceExplainer, FeatureScales,
    GecoConfig, Lewis, Plaf,
};
use xai_data::synth::{credit_scm, german_credit};
use xai_models::{proba_fn, LogisticConfig, LogisticRegression};

/// E9 — DiCE: "diverse and feasible counterfactuals" (§2.1.4): the
/// validity/proximity/diversity trade-off as k and the diversity weight
/// vary.
pub fn e9(quick: bool) {
    let data = german_credit(if quick { 400 } else { 800 }, 5);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let dice = DiceExplainer::fit(&data);
    let scales = FeatureScales::fit(&data);
    let idx = (0..data.n_rows()).find(|&i| fm(data.row(i)) < 0.35).expect("a rejection");
    let x = data.row(idx);

    let mut table = Table::new(
        "E9  DiCE trade-offs on one rejected applicant",
        &["k", "λ_div", "found", "valid", "mean distance", "mean sparsity", "diversity"],
    );
    for (k, lam) in [(1usize, 1.0), (3, 0.0), (3, 1.0), (3, 3.0), (5, 1.0)] {
        let cfs = dice.generate(
            &fm,
            x,
            DiceConfig { k, diversity_weight: lam, ..DiceConfig::default() },
            7,
        );
        let valid = cfs.iter().filter(|c| c.is_valid()).count();
        let mean_dist = cfs.iter().map(|c| c.distance).sum::<f64>() / cfs.len().max(1) as f64;
        let mean_sparse =
            cfs.iter().map(|c| c.sparsity() as f64).sum::<f64>() / cfs.len().max(1) as f64;
        let set: Vec<Vec<f64>> = cfs.iter().map(|c| c.counterfactual.clone()).collect();
        table.row(vec![
            k.to_string(),
            format!("{lam:.1}"),
            cfs.len().to_string(),
            valid.to_string(),
            f(mean_dist),
            f(mean_sparse),
            f(diversity(&scales, &set)),
        ]);
    }
    table.print();
}

/// E10 — "counterfactual explanations must be plausible, feasible, and …
/// generated in real time" (§3, GeCo): quality-vs-latency of the genetic
/// search against random search at equal admissibility constraints.
pub fn e10(quick: bool) {
    let data = german_credit(if quick { 400 } else { 800 }, 13);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let plaf = Plaf::from_schema(&data);
    let n_instances = if quick { 5 } else { 12 };
    let rejected: Vec<usize> = (0..data.n_rows())
        .filter(|&i| fm(data.row(i)) < 0.35)
        .take(n_instances)
        .collect();

    let mut table = Table::new(
        "E10  GeCo-style genetic search vs random search",
        &["method", "found", "mean sparsity", "mean distance", "mean latency"],
    );
    for (name, runner) in [
        (
            "geco (genetic)",
            Box::new(|x: &[f64], seed: u64| geco(&fm, &data, x, &plaf, GecoConfig::default(), seed))
                as Box<dyn Fn(&[f64], u64) -> Option<xai_core::Counterfactual>>,
        ),
        (
            "random search",
            Box::new(|x: &[f64], seed: u64| {
                random_search_counterfactual(&fm, &data, x, &plaf, 1500, seed)
            }),
        ),
    ] {
        let mut found = 0usize;
        let mut sparsity = 0.0;
        let mut dist = 0.0;
        let mut latency = std::time::Duration::ZERO;
        for (s, &i) in rejected.iter().enumerate() {
            let (cf, t) = time(|| runner(data.row(i), s as u64));
            latency += t;
            if let Some(cf) = cf {
                found += 1;
                sparsity += cf.sparsity() as f64;
                dist += cf.distance;
            }
        }
        let n = found.max(1) as f64;
        table.row(vec![
            name.to_string(),
            format!("{found}/{}", rejected.len()),
            f(sparsity / n),
            f(dist / n),
            fmt_duration(latency / rejected.len() as u32),
        ]);
    }
    table.print();
    println!("  shape: at equal constraints and budget, the genetic search matches\n\u{20}\u{20}random search on sparsity while finding closer counterfactuals (Schleich et al.).");
}

/// E11 — LEWIS probabilities of causation on a known SCM (§2.1.4): scores
/// match the qualitative ground truth of the mechanism.
pub fn e11(quick: bool) {
    let n_mc = if quick { 1500 } else { 5000 };
    let labeled = credit_scm();
    let model = |x: &[f64]| xai_data::sigmoid(0.6 * x[1] + 0.8 * x[2] - 7.5);
    let lewis = Lewis::new(&model, &labeled);
    let mut table = Table::new(
        "E11  LEWIS necessity/sufficiency on the credit SCM",
        &["intervention", "necessity", "sufficiency"],
    );
    for (name, feature, value) in [
        ("do(education = 6)", 0usize, 6.0),
        ("do(education = 20)", 0, 20.0),
        ("do(income = 1)", 1, 1.0),
        ("do(income = 9)", 1, 9.0),
        ("do(savings = 1)", 2, 1.0),
        ("do(savings = 12)", 2, 12.0),
    ] {
        let s = lewis.causation_scores(feature, value, n_mc, 11);
        table.row(vec![name.to_string(), f(s.necessity), f(s.sufficiency)]);
    }
    table.print();
    println!(
        "  shape: low interventions are necessary for approvals, high ones\n\
         \u{20}\u{20}sufficient; education acts purely through its mediators."
    );
}
