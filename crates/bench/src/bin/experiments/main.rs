//! `experiments` — regenerates every table catalogued in DESIGN.md §4.
//!
//! ```sh
//! cargo run -p xai-bench --release --bin experiments            # all
//! cargo run -p xai-bench --release --bin experiments -- --quick # reduced sizes
//! cargo run -p xai-bench --release --bin experiments -- E3 E14  # subset
//! ```

mod exp_counterfactual;
mod exp_datavalue;
mod exp_extensions;
mod exp_provenance;
mod exp_rules;
mod exp_shapley;
mod exp_surrogate;

struct Experiment {
    id: &'static str,
    claim: &'static str,
    run: fn(bool),
}

fn catalogue() -> Vec<Experiment> {
    vec![
        Experiment { id: "E1", claim: "§2.1.2 exact Shapley is exponential", run: exp_shapley::e1 },
        Experiment { id: "E2", claim: "§2.1.2 sampler error vs budget", run: exp_shapley::e2 },
        Experiment { id: "E3", claim: "§2.1.2 TreeSHAP polynomial vs brute force", run: exp_shapley::e3 },
        Experiment { id: "E3b", claim: "§2.1.2 TreeSHAP linear in ensemble size", run: exp_shapley::e3_ensemble },
        Experiment { id: "E4", claim: "§2.1.2 efficiency axiom across methods", run: exp_shapley::e4 },
        Experiment { id: "E5", claim: "§2.1.1 LIME sampling instability (VSI/CSI)", run: exp_surrogate::e5 },
        Experiment { id: "E6", claim: "§2.1.1 scaffolding attack fools LIME", run: exp_surrogate::e6 },
        Experiment { id: "E7", claim: "§2.1.1 LIME fidelity vs kernel width", run: exp_surrogate::e7 },
        Experiment { id: "E8", claim: "§2.2 Anchors precision/coverage", run: exp_rules::e8 },
        Experiment { id: "E9", claim: "§2.1.4 DiCE diversity trade-offs", run: exp_counterfactual::e9 },
        Experiment { id: "E10", claim: "§3 GeCo vs random search", run: exp_counterfactual::e10 },
        Experiment { id: "E11", claim: "§2.1.4 LEWIS necessity/sufficiency", run: exp_counterfactual::e11 },
        Experiment { id: "E12", claim: "§2.3.1 Data Shapley removal curves", run: exp_datavalue::e12 },
        Experiment { id: "E13", claim: "§2.3.1 valuation tractability ladder", run: exp_datavalue::e13 },
        Experiment { id: "E14", claim: "§2.3.2 influence vs retraining", run: exp_datavalue::e14 },
        Experiment { id: "E15", claim: "§2.3.2 group influence error growth", run: exp_datavalue::e15 },
        Experiment { id: "E16", claim: "§2.1.3 causal vs marginal Shapley", run: exp_shapley::e16 },
        Experiment { id: "E17", claim: "§3 tuple Shapley exact vs sampled", run: exp_provenance::e17 },
        Experiment { id: "E18", claim: "§3 PrIU incremental updates", run: exp_provenance::e18 },
        Experiment { id: "E19", claim: "§3 complaint-driven debugging", run: exp_provenance::e19 },
        Experiment { id: "E20", claim: "§2.2.2 sufficient reasons score 1", run: exp_rules::e20 },
        Experiment { id: "E21", claim: "§2.2.1 Apriori vs FP-Growth", run: exp_rules::e21 },
        Experiment { id: "E22", claim: "§3 pipeline-stage accountability", run: exp_provenance::e22 },
        Experiment { id: "E23", claim: "§2.4 integrated gradients completeness", run: exp_extensions::e23 },
        Experiment { id: "E24", claim: "§2.1.2 Shapley interaction index", run: exp_extensions::e24 },
        Experiment { id: "E25", claim: "§3 logistic unlearning vs retrain", run: exp_extensions::e25 },
        Experiment { id: "E26", claim: "§2.3.1 Banzhaf vs Shapley noise robustness", run: exp_extensions::e26 },
        Experiment { id: "E27", claim: "§2.1.3 CXPlain amortized explanation", run: exp_extensions::e27 },
        Experiment { id: "E28", claim: "§2.1.4 counterfactual method ladder", run: exp_extensions::e28 },
        Experiment { id: "E29", claim: "§2.1.1 SP-LIME coverage vs budget", run: exp_extensions::e29 },
        Experiment { id: "E30", claim: "§2.1.2 Owen values over one-hot groups", run: exp_extensions::e30 },
        Experiment { id: "E31", claim: "§3 Shapley for database repairs", run: exp_extensions::e31 },
        Experiment { id: "E32", claim: "§3 ROAR attribution evaluation", run: exp_extensions::e32 },
        Experiment { id: "E33", claim: "§2.1.2 marginal vs conditional Shapley", run: exp_extensions::e33 },
        Experiment { id: "E34", claim: "ablation: antithetic permutation sampling", run: exp_extensions::e34 },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();

    let catalogue = catalogue();
    let selected: Vec<&Experiment> = if wanted.is_empty() {
        catalogue.iter().collect()
    } else {
        catalogue
            .iter()
            .filter(|e| wanted.iter().any(|w| w.eq_ignore_ascii_case(e.id)))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment id(s): {wanted:?}");
        eprintln!("known: {}", catalogue.iter().map(|e| e.id).collect::<Vec<_>>().join(" "));
        std::process::exit(1);
    }

    println!("xai experiment suite — {} experiment(s){}", selected.len(), if quick { " (quick mode)" } else { "" });
    for e in selected {
        println!("\n════════════════════════════════════════════════════════════");
        println!("{}: {}", e.id, e.claim);
        let start = std::time::Instant::now();
        (e.run)(quick);
        println!("  [{} completed in {:.1}s]", e.id, start.elapsed().as_secs_f64());
    }
}
