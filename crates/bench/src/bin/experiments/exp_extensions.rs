//! E23–E27: extension experiments for the second wave of methods
//! (gradient attributions, interactions, unlearning, Banzhaf, CXPlain).

use xai_bench::{f, f2, fmt_duration, time, Table};
use xai_data::synth::{circles, friedman1, german_credit, linear_gaussian};
use xai_datavalue::{
    data_banzhaf, exact_data_banzhaf, exact_data_shapley, tmc_shapley, BanzhafConfig, FnUtility,
    TmcConfig,
};
use xai_models::{
    proba_fn, Gbdt, GbdtConfig, GbdtLoss, LogisticConfig, Mlp, MlpConfig,
    Regressor,
};
use xai_provenance::LogisticUnlearner;
use xai_shapley::{exact_shapley, model_interactions, PredictionGame};
use xai_surrogate::{integrated_gradients, CxPlain, CxPlainConfig, LimeConfig, LimeExplainer};

/// E23 — integrated gradients: the completeness axiom and agreement with
/// exact Shapley values on a differentiable model (§2.4 gradient methods
/// meet the §2.1.2 axioms).
pub fn e23(quick: bool) {
    let data = circles(if quick { 300 } else { 600 }, 3, 0.1);
    let mlp = Mlp::fit(
        data.x(),
        data.y(),
        MlpConfig { hidden: 24, epochs: 120, learning_rate: 0.1, ..MlpConfig::default() },
    );
    let baseline = vec![0.0, 0.0];
    let mut table = Table::new(
        "E23  integrated gradients: completeness gap vs path steps",
        &["steps", "mean |Σ IG − (f(x) − f(base))| over 10 rows"],
    );
    for steps in [2usize, 8, 32, 128, 512] {
        let mut gap = 0.0;
        for i in 0..10 {
            let ig = integrated_gradients(&mlp, data.row(i), &baseline, steps);
            gap += ig.efficiency_gap() / 10.0;
        }
        table.row(vec![steps.to_string(), format!("{gap:.2e}")]);
    }
    table.print();

    // Agreement with exact Shapley on the same model (baseline background).
    let fm = proba_fn(&mlp);
    let background = xai_linalg::Matrix::from_rows(std::slice::from_ref(&baseline));
    let mut agree = 0.0;
    for i in 0..10 {
        let x = data.row(i);
        let game = PredictionGame::new(&fm, x, &background);
        let shap = exact_shapley(&game);
        let ig = integrated_gradients(&mlp, x, &baseline, 256);
        agree += xai_linalg::stats::pearson(&shap, &ig.values) / 10.0;
    }
    println!("  mean pearson(IG, exact Shapley w/ same baseline) = {agree:.3}");
}

/// E24 — Shapley interaction index: separating main effects from
/// interactions that plain φ values average away (§2.1.2 \[40, 46\]).
pub fn e24(quick: bool) {
    let data = german_credit(if quick { 300 } else { 600 }, 9);
    let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 30, ..GbdtConfig::default() });
    let fm = proba_fn(&gbdt);
    let background = data.x().select_rows(&(0..12).collect::<Vec<_>>());
    let instance = data.row(25);
    let (im, t) = time(|| model_interactions(&fm, instance, &background));
    let names = data.schema().names();

    // Strongest interactions.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..names.len() {
        for j in i + 1..names.len() {
            pairs.push((i, j, im.pairwise(i, j)));
        }
    }
    pairs.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).unwrap());
    let mut table = Table::new(
        "E24  strongest pairwise Shapley interactions (GBDT credit model)",
        &["pair", "Φ_ij", "main_i", "main_j"],
    );
    for &(i, j, v) in pairs.iter().take(5) {
        table.row(vec![
            format!("{} × {}", names[i], names[j]),
            format!("{v:+.4}"),
            f(im.main_effect(i)),
            f(im.main_effect(j)),
        ]);
    }
    table.print();
    let total_gap = (im.total()
        - (fm(instance) - {
            let game = PredictionGame::new(&fm, instance, &background);
            use xai_shapley::CooperativeGame;
            game.empty_value()
        }))
    .abs();
    println!("  matrix total == v(N) − v(∅) (gap {total_gap:.1e}); computed in {}", fmt_duration(t));
}

/// E25 — machine unlearning for logistic models: Newton-step deletion vs
/// full retraining (§3, HedgeCut latency motivation).
pub fn e25(quick: bool) {
    let n = if quick { 1000 } else { 3000 };
    let train = linear_gaussian(n, &[2.0, -1.0, 0.5], 0.0, 121);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let mut table = Table::new(
        "E25  logistic unlearning: one Newton step vs full retrain",
        &["batch deleted", "fast path", "full retrain", "rel. param err", "certificate ‖g‖∞"],
    );
    for &k in &[1usize, 10, 100] {
        let mut un = LogisticUnlearner::fit(&train, config);
        let rows: Vec<usize> = (0..k).collect();
        let (_, t_fast) = time(|| un.forget(&rows));
        let (truth, t_full) = time(|| un.retrain_ground_truth());
        let err = xai_linalg::norm2(&xai_linalg::vsub(un.model().weights(), truth.weights()))
            / xai_linalg::norm2(truth.weights());
        table.row(vec![
            k.to_string(),
            fmt_duration(t_fast),
            fmt_duration(t_full),
            format!("{err:.1e}"),
            format!("{:.1e}", un.gradient_norm()),
        ]);
    }
    table.print();
    println!("  the fast path includes its own gradient-norm certificate; it");
    println!("  falls back to retraining automatically when the certificate fails.");
}

/// E26 — Banzhaf vs Shapley valuation under noisy utilities (§2.3.1
/// stability discussion): rank robustness when the utility is stochastic.
pub fn e26(quick: bool) {
    use xai_rand::Rng;
    use xai_rand::SeedableRng;
    use std::cell::RefCell;
    let n = 8;
    let clean = |s: &[usize]| -> f64 {
        s.iter().map(|&i| (i + 1) as f64 / 8.0).sum::<f64>()
            + f64::from(s.contains(&0) && s.contains(&7)) * 0.3
    };
    let u_clean = FnUtility::new(n, clean);
    let shap_clean = exact_data_shapley(&u_clean);
    let banz_clean = exact_data_banzhaf(&u_clean);
    let trials = if quick { 8 } else { 20 };
    let mut table = Table::new(
        "E26  valuation rank-robustness under utility noise (spearman to clean)",
        &["noise σ", "shapley (TMC)", "banzhaf (MC)"],
    );
    for noise in [0.1f64, 0.3, 0.6] {
        let mut rho_s = 0.0;
        let mut rho_b = 0.0;
        for t in 0..trials {
            let rng = RefCell::new(xai_rand::rngs::StdRng::seed_from_u64(2000 + t as u64));
            let noisy = FnUtility::new(n, |s: &[usize]| {
                clean(s) + (rng.borrow_mut().gen::<f64>() - 0.5) * 2.0 * noise
            });
            let s = tmc_shapley(&noisy, TmcConfig { permutations: 60, truncation_tolerance: 0.0, seed: t as u64 });
            let b = data_banzhaf(&noisy, BanzhafConfig { samples_per_point: 60, seed: t as u64 });
            rho_s += xai_linalg::stats::spearman(&shap_clean.values, &s.attribution.values) / trials as f64;
            rho_b += xai_linalg::stats::spearman(&banz_clean.values, &b.values) / trials as f64;
        }
        table.row(vec![format!("{noise:.1}"), f(rho_s), f(rho_b)]);
    }
    table.print();
    println!("  shape: both degrade with noise; Banzhaf's uniform coalition weights degrade no faster.");
}

/// E27 — CXPlain amortization: explanation latency of a trained explainer
/// vs per-instance LIME at comparable relevance quality (§2.1.3 \[61\]).
pub fn e27(quick: bool) {
    let data = friedman1(if quick { 400 } else { 800 }, 7, 0.2);
    let (train, test) = data.train_test_split(0.3, 1);
    let gbdt = Gbdt::fit(
        train.x(),
        train.y(),
        GbdtConfig { n_rounds: 60, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
    );
    let fm = |x: &[f64]| Regressor::predict_one(&gbdt, x);
    let (cx, t_train) = time(|| CxPlain::train(&fm, &train, CxPlainConfig::default()));
    let lime = LimeExplainer::fit(&train);

    // Relevance quality: fraction of top-3 mass on the 5 true features.
    let rows = if quick { 20 } else { 50 };
    let mut cx_quality = 0.0;
    let mut lime_quality = 0.0;
    let mut t_cx = std::time::Duration::ZERO;
    let mut t_lime = std::time::Duration::ZERO;
    for i in 0..rows {
        let x = test.row(i);
        let (e_cx, d1) = time(|| cx.explain(x));
        t_cx += d1;
        let (e_lime, d2) = time(|| lime.explain(&fm, x, LimeConfig::default(), i as u64));
        t_lime += d2;
        let hits = |ranking: Vec<usize>| -> f64 {
            ranking.iter().take(3).filter(|&&j| j < 5).count() as f64 / 3.0
        };
        cx_quality += hits(e_cx.ranking()) / rows as f64;
        lime_quality += hits(e_lime.attribution.ranking()) / rows as f64;
    }
    let mut table = Table::new(
        "E27  amortized (CXPlain) vs per-instance (LIME) explanation",
        &["method", "one-off cost", "per-instance latency", "top-3 relevance"],
    );
    table.row(vec![
        "CXPlain (amortized)".into(),
        fmt_duration(t_train),
        fmt_duration(t_cx / rows as u32),
        f(cx_quality),
    ]);
    table.row(vec![
        "LIME (per instance)".into(),
        "-".into(),
        fmt_duration(t_lime / rows as u32),
        f(lime_quality),
    ]);
    table.print();
    println!("  shape: CXPlain pays training once, then explains orders of magnitude faster.");
}

/// E28 — the counterfactual ladder: Wachter gradient optimization vs DiCE
/// local search vs GeCo genetic search on the same rejected applicants
/// (§2.1.4 end to end).
pub fn e28(quick: bool) {
    use xai_counterfactual::{
        geco, wachter_counterfactual, DiceConfig, DiceExplainer, GecoConfig, Plaf, WachterConfig,
    };
    let data = german_credit(if quick { 400 } else { 800 }, 5);
    let model = xai_models::LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let rejected: Vec<usize> = (0..data.n_rows())
        .filter(|&i| fm(data.row(i)) < 0.35)
        .take(if quick { 5 } else { 10 })
        .collect();
    let dice = DiceExplainer::fit(&data);
    let plaf = Plaf::from_schema(&data);

    let mut table = Table::new(
        "E28  counterfactual methods on the same rejected applicants",
        &["method", "found", "mean distance", "mean sparsity", "mean latency", "feasibility-aware"],
    );
    let mut run = |name: &str,
                   feasible: bool,
                   f: &dyn Fn(usize, u64) -> Option<xai_core::Counterfactual>| {
        let mut found = 0;
        let mut dist = 0.0;
        let mut sparse = 0.0;
        let mut latency = std::time::Duration::ZERO;
        for (s, &i) in rejected.iter().enumerate() {
            let (cf, t) = time(|| f(i, s as u64));
            latency += t;
            if let Some(cf) = cf {
                found += 1;
                dist += cf.distance;
                sparse += cf.sparsity() as f64;
            }
        }
        let n = found.max(1) as f64;
        table.row(vec![
            name.into(),
            format!("{found}/{}", rejected.len()),
            f2(dist / n),
            f2(sparse / n),
            fmt_duration(latency / rejected.len() as u32),
            feasible.to_string(),
        ]);
    };
    run("wachter (gradient)", false, &|i, _| {
        wachter_counterfactual(&model, &data, data.row(i), WachterConfig::default())
    });
    run("dice (local search)", true, &|i, s| {
        dice.generate(&fm, data.row(i), DiceConfig { k: 1, ..DiceConfig::default() }, s)
            .into_iter()
            .next()
    });
    run("geco (genetic)", true, &|i, s| {
        geco(&fm, &data, data.row(i), &plaf, GecoConfig::default(), s)
    });
    table.print();
    println!("  shape: the gradient method is closest in raw distance but changes many");
    println!("  features and ignores feasibility; the constrained searches stay sparse.");
}

/// E29 — SP-LIME: explanation coverage vs inspection budget (§2.1.1):
/// a handful of well-picked explanations covers most globally important
/// features.
pub fn e29(quick: bool) {
    use xai_surrogate::{sp_lime, LimeExplainer};
    let data = german_credit(if quick { 300 } else { 500 }, 3);
    let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 30, ..GbdtConfig::default() });
    let fm = proba_fn(&gbdt);
    let lime = LimeExplainer::fit(&data);
    let cfg = LimeConfig { n_samples: 400, ..LimeConfig::default() };
    let mut table = Table::new(
        "E29  SP-LIME: feature coverage vs inspection budget",
        &["budget B", "coverage", "of max"],
    );
    for budget in [1usize, 2, 4, 8] {
        let pick = sp_lime(&lime, &fm, &data, 30, budget, cfg, 7);
        table.row(vec![
            budget.to_string(),
            f2(pick.coverage),
            format!("{:.0}%", 100.0 * pick.coverage / pick.max_coverage),
        ]);
    }
    table.print();
    println!("  shape: diminishing returns — the greedy (1−1/e) guarantee in action.");
}

/// E30 — Owen values fix one-hot credit fragmentation (§2.1.2): a linear
/// model over one-hot columns fragments a categorical feature's credit;
/// the Owen group view restores it.
pub fn e30(quick: bool) {
    use xai_data::OneHotEncoder;
    use xai_shapley::{exact_shapley, one_hot_groups, owen_values, PredictionGame};
    let data = german_credit(if quick { 300 } else { 600 }, 9);
    let enc = OneHotEncoder::fit(data.schema());
    let xe = enc.encode_matrix(data.x());
    let model = xai_models::LogisticRegression::fit(&xe, data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let background = xe.select_rows(&(0..24).collect::<Vec<_>>());
    let instance = xe.row(40).to_vec();
    let game = PredictionGame::new(&fm, &instance, &background);
    let shap = exact_shapley(&game);
    let groups = one_hot_groups(&enc, data.n_features());
    let owen = owen_values(&game, &groups, if quick { 500 } else { 2000 }, 7);

    let names = data.schema().names();
    let mut table = Table::new(
        "E30  Owen values: per-group credit over one-hot encodings",
        &["raw feature", "encoded cols", "Σ shapley (fragments)", "owen group value"],
    );
    for (j, name) in names.iter().enumerate() {
        let cols: Vec<usize> = enc.columns_of(j).collect();
        let frag: f64 = cols.iter().map(|&c| shap[c]).sum();
        table.row(vec![
            name.to_string(),
            cols.len().to_string(),
            f(frag),
            f(owen.group_values[j]),
        ]);
    }
    table.print();
    println!("  shape: group totals agree with summed fragments (both games are the");
    println!("  same); the Owen view reports them natively per raw feature and keeps");
    println!("  within-group orderings contiguous.");
}

/// E31 — Shapley responsibility for database repairs (§3 \[17\]): the dirty
/// tuples of an FD-violating relation carry the blame, and deleting by
/// responsibility yields a minimal repair.
pub fn e31(_quick: bool) {
    use xai_provenance::{
        greedy_repair, repair_responsibility, total_violations, FunctionalDependency, Relation,
        Value,
    };
    // zip → city with two dirty tuples of different severity.
    let (r, _) = Relation::base(
        "addresses",
        &["zip", "city"],
        vec![
            vec![Value::Int(10001), Value::Str("nyc".into())],
            vec![Value::Int(10001), Value::Str("nyc".into())],
            vec![Value::Int(10001), Value::Str("nyc".into())],
            vec![Value::Int(10001), Value::Str("boston".into())],
            vec![Value::Int(2139), Value::Str("cambridge".into())],
            vec![Value::Int(2139), Value::Str("quincy".into())],
        ],
        0,
    );
    let fds = [FunctionalDependency::new(&["zip"], &["city"])];
    let all: Vec<usize> = (0..r.len()).collect();
    let phi = repair_responsibility(&r, &fds, 2000, 7);
    let mut table = Table::new(
        "E31  Shapley responsibility for FD violations (zip → city)",
        &["tuple", "zip", "city", "responsibility"],
    );
    for (i, t) in r.tuples.iter().enumerate() {
        table.row(vec![
            i.to_string(),
            t.values[0].to_string(),
            t.values[1].to_string(),
            f(phi[i]),
        ]);
    }
    table.print();
    let deleted = greedy_repair(&r, &fds, 5);
    println!(
        "  total violations {}; Σ responsibility {:.3}; greedy repair deletes tuples {:?}",
        total_violations(&r, &fds, &all),
        phi.iter().sum::<f64>(),
        deleted
    );
    println!("  shape: the lone 'boston' outlier out-blames each majority tuple; the");
    println!("  symmetric 2139 conflict splits evenly; repair is minimal.");
}

/// E32 — ROAR: retraining-based attribution evaluation (§3 "user study
/// and evaluation"): SHAP-informed removal collapses retrained accuracy
/// faster than random removal.
pub fn e32(quick: bool) {
    use xai_surrogate::{random_ranking, roar_curve};
    let n = if quick { 500 } else { 900 };
    let train = linear_gaussian(n, &[2.5, -2.0, 0.0, 0.0, 0.0, 0.0], 0.0, 141);
    let test = linear_gaussian(500, &[2.5, -2.0, 0.0, 0.0, 0.0, 0.0], 0.0, 142);
    let model = xai_models::LogisticRegression::fit(train.x(), train.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let background = train.x().select_rows(&(0..16).collect::<Vec<_>>());
    let mut mean_abs = vec![0.0; train.n_features()];
    for i in 0..20 {
        let game = PredictionGame::new(&fm, train.row(i), &background);
        let phi = exact_shapley(&game);
        for (m, p) in mean_abs.iter_mut().zip(&phi) {
            *m += p.abs();
        }
    }
    let mut shap_rank: Vec<usize> = (0..train.n_features()).collect();
    shap_rank.sort_by(|&a, &b| mean_abs[b].partial_cmp(&mean_abs[a]).unwrap());
    let cfg = LogisticConfig::default();
    let shap = roar_curve(&train, &test, &shap_rank, 6, cfg);
    let random = roar_curve(&train, &test, &random_ranking(6, 3), 6, cfg);
    let mut table = Table::new(
        "E32  ROAR: retrained accuracy after removing top-k features",
        &["k removed", "SHAP ranking", "random ranking"],
    );
    for (i, p) in shap.points.iter().enumerate() {
        table.row(vec![
            p.0.to_string(),
            f(p.1),
            f(random.points.get(i).map_or(f64::NAN, |q| q.1)),
        ]);
    }
    table.print();
    println!(
        "  AUC: SHAP {:.3} vs random {:.3} (lower = attribution found the signal)",
        shap.auc(),
        random.auc()
    );
}

/// E33 — the conditioning debate (§2.1.2 critiques → §2.1.3 remedies):
/// marginal vs conditional Shapley on correlated data where the model
/// reads only one of two correlated features.
pub fn e33(quick: bool) {
    use xai_data::synth::correlated_gaussian;
    use xai_shapley::conditional_shapley;
    let n = if quick { 800 } else { 1500 };
    let data = correlated_gaussian(n, &[2.0, 0.0, 0.0], 0.85, 0.0, 7);
    let model = |x: &[f64]| x[0]; // reads x0 only; x1 is an 0.85-correlated proxy
    let idx = (0..data.n_rows())
        .find(|&i| data.row(i)[0] > 1.5 && data.row(i)[1] > 1.0)
        .expect("a high-signal instance");
    let instance = data.row(idx);
    let background = data.x().select_rows(&(0..n.min(400)).collect::<Vec<_>>());
    let marginal = exact_shapley(&PredictionGame::new(&model, instance, &background));
    let conditional = conditional_shapley(&model, instance, &background, 25);
    let mut table = Table::new(
        "E33  marginal vs conditional Shapley (model reads x0; corr(x0,x1)=0.85)",
        &["feature", "marginal φ", "conditional φ"],
    );
    for j in 0..3 {
        table.row(vec![format!("x{j}"), f(marginal[j]), f(conditional[j])]);
    }
    table.print();
    println!("  shape: the interventional/marginal game is 'true to the model' (proxy");
    println!("  gets 0); the observational/conditional game is 'true to the data'");
    println!("  (the proxy shares credit) — the §2.1.2↔§2.1.3 fault line, cf. [40].");
}

/// E34 — estimator ablation: antithetic pairing vs plain permutation
/// sampling (a DESIGN.md design-choice ablation): variance across seeds
/// at equal evaluation budget.
pub fn e34(quick: bool) {
    use xai_shapley::{antithetic_permutation_shapley, exact_shapley, permutation_shapley};
    let data = german_credit(if quick { 200 } else { 400 }, 9);
    let model = xai_models::LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let fm = proba_fn(&model);
    let background = data.x().select_rows(&(0..16).collect::<Vec<_>>());
    let instance = data.row(7);
    let game = PredictionGame::new(&fm, instance, &background);
    let exact = exact_shapley(&game);
    let trials = if quick { 10 } else { 20 };
    let mut table = Table::new(
        "E34  ablation: plain vs antithetic permutation sampling (equal budget)",
        &["budget (perms)", "plain RMSE", "antithetic RMSE"],
    );
    for budget in [20usize, 80, 320] {
        let rmse = |phis: Vec<Vec<f64>>| -> f64 {
            let mut total = 0.0;
            for phi in &phis {
                total += phi
                    .iter()
                    .zip(&exact)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / exact.len() as f64;
            }
            (total / phis.len() as f64).sqrt()
        };
        let plain: Vec<Vec<f64>> = (0..trials)
            .map(|t| permutation_shapley(&game, budget, 100 + t as u64).phi)
            .collect();
        let anti: Vec<Vec<f64>> = (0..trials)
            .map(|t| antithetic_permutation_shapley(&game, budget / 2, 100 + t as u64).phi)
            .collect();
        table.row(vec![budget.to_string(), format!("{:.5}", rmse(plain)), format!("{:.5}", rmse(anti))]);
    }
    table.print();
    println!("  shape: antithetic pairing reduces error at equal budget on");
    println!("  near-additive models (first-order noise cancels).");
}
