//! E12–E15: training-data valuation and influence (§2.3).

use xai_bench::{f, fmt_duration, time, Table};
use xai_data::synth::linear_gaussian;
use xai_data::{inject_label_noise, Dataset};
use xai_datavalue::{
    exact_data_shapley, group_influence_first_order, group_influence_newton,
    group_removal_ground_truth, influence_on_test_loss, knn_shapley, leave_one_out,
    relative_error, removal_curve, retraining_ground_truth, tmc_shapley, LogisticUtility, Solver,
    TmcConfig,
};
use xai_models::{LogisticConfig, LogisticRegression};

fn noisy_setup(n: usize, seed: u64) -> (Dataset, Dataset, Vec<usize>) {
    let mut train = linear_gaussian(n, &[2.5, -1.0], 0.0, seed);
    let test = linear_gaussian(300, &[2.5, -1.0], 0.0, seed + 1);
    let guilty = inject_label_noise(&mut train, 0.15, 7);
    (train, test, guilty)
}

/// E12 — "Data Shapley assigns values … based on their contribution to
/// the performance of the model" (§2.3.1): removing high-value points
/// first degrades accuracy fastest; removing low-value (corrupted) points
/// first *improves* it. Random removal sits in between.
pub fn e12(quick: bool) {
    let n = if quick { 60 } else { 120 };
    let (train, test, _) = noisy_setup(n, 21);
    let u = LogisticUtility::new(&train, &test, LogisticConfig::default());
    let tmc = tmc_shapley(
        &u,
        TmcConfig {
            permutations: if quick { 60 } else { 150 },
            truncation_tolerance: 0.005,
            seed: 3,
        },
    );
    let batch = n / 10;
    let high_first = tmc.attribution.ranking_desc();
    let low_first = tmc.attribution.ranking_asc();
    use xai_rand::seq::SliceRandom;
    use xai_rand::SeedableRng;
    let mut random: Vec<usize> = (0..n).collect();
    random.shuffle(&mut xai_rand::rngs::StdRng::seed_from_u64(5));

    let hi = removal_curve(&u, &high_first[..n / 2], batch);
    let lo = removal_curve(&u, &low_first[..n / 2], batch);
    let rnd = removal_curve(&u, &random[..n / 2], batch);
    let mut table = Table::new(
        "E12  point-removal curves (test accuracy after removing k points)",
        &["removed", "high-value first", "random", "low-value first"],
    );
    for i in 0..hi.len() {
        table.row(vec![
            hi[i].0.to_string(),
            f(hi[i].1),
            f(rnd.get(i).map_or(f64::NAN, |r| r.1)),
            f(lo[i].1),
        ]);
    }
    table.print();
    println!("  shape: Ghorbani & Zou Fig. 2 — the three curves must fan out in this order.");
}

/// E13 — tractability (§2.3.1): exact retraining-Shapley is exponential;
/// TMC needs hundreds of retrainings; KNN-Shapley is closed-form.
pub fn e13(quick: bool) {
    let n_exact = 10;
    let (train_small, test, _) = noisy_setup(n_exact, 31);
    let u_small = LogisticUtility::new(&train_small, &test, LogisticConfig::default());
    let (exact, t_exact) = time(|| exact_data_shapley(&u_small));
    let (tmc, t_tmc) = time(|| {
        tmc_shapley(&u_small, TmcConfig { permutations: 200, truncation_tolerance: 0.0, seed: 3 })
    });
    let rho_tmc = xai_linalg::stats::spearman(&tmc.attribution.values, &exact.values);

    // KNN-Shapley scales to the full set in milliseconds.
    let n_big = if quick { 300 } else { 1000 };
    let (train_big, test_big, guilty) = noisy_setup(n_big, 41);
    let (knn, t_knn) = time(|| knn_shapley(&train_big, &test_big, 5));
    let p_at_k = knn.precision_at_k(&guilty, guilty.len());

    let (loo, t_loo) = time(|| leave_one_out(&u_small));
    let mut table = Table::new(
        "E13  valuation cost: exact vs TMC vs LOO vs closed-form KNN",
        &["method", "n", "wall time", "quality"],
    );
    table.row(vec![
        format!("exact retrain (2^{n_exact})"),
        n_exact.to_string(),
        fmt_duration(t_exact),
        "ground truth".into(),
    ]);
    table.row(vec![
        "TMC (200 perms)".into(),
        n_exact.to_string(),
        fmt_duration(t_tmc),
        format!("ρ={rho_tmc:.3} vs exact"),
    ]);
    table.row(vec![
        "leave-one-out".into(),
        n_exact.to_string(),
        fmt_duration(t_loo),
        format!("{} retrains", n_exact + 1),
    ]);
    table.row(vec![
        "KNN-Shapley (closed form)".into(),
        n_big.to_string(),
        fmt_duration(t_knn),
        format!("p@k={p_at_k:.2} on noise"),
    ]);
    table.print();
    let _ = loo;
}

/// E14 — "avoids retraining the model" (§2.3.2, Koh & Liang): influence
/// estimates correlate with LOO retraining at a fraction of the cost.
pub fn e14(quick: bool) {
    let n = if quick { 60 } else { 150 };
    let (train, test, guilty) = noisy_setup(n, 61);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let model = LogisticRegression::fit(train.x(), train.y(), config);
    let (inf, t_inf) = time(|| influence_on_test_loss(&model, &train, &test, Solver::Cholesky));
    let (truth, t_truth) = time(|| retraining_ground_truth(&model, &train, &test, config));
    let pearson = xai_linalg::stats::pearson(&inf.values, &truth.values);
    let spearman = xai_linalg::stats::spearman(&inf.values, &truth.values);
    let mut table = Table::new(
        "E14  influence functions vs LOO retraining",
        &["quantity", "influence fn", "retraining"],
    );
    table.row(vec!["wall time".into(), fmt_duration(t_inf), fmt_duration(t_truth)]);
    table.row(vec![
        "speedup".into(),
        format!("{:.0}x", t_truth.as_secs_f64() / t_inf.as_secs_f64().max(1e-12)),
        "1x".into(),
    ]);
    table.row(vec!["pearson vs truth".into(), f(pearson), "1.0".into()]);
    table.row(vec!["spearman vs truth".into(), f(spearman), "1.0".into()]);
    table.row(vec![
        "noise precision@k".into(),
        f(inf.precision_at_k(&guilty, guilty.len())),
        f(truth.precision_at_k(&guilty, guilty.len())),
    ]);
    table.print();
}

/// E15 — "first-order approximations … can be inaccurate [for groups]"
/// (§2.3.2, Basu et al.): relative parameter-change error vs group size
/// for additive first-order vs curvature-aware (Newton) group influence.
pub fn e15(quick: bool) {
    let n = if quick { 200 } else { 400 };
    let train = linear_gaussian(n, &[2.0, -1.0, 0.5], 0.0, 81);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let model = LogisticRegression::fit(train.x(), train.y(), config);
    // Coherent groups: highest-margin positives (maximally correlated).
    let mut pos: Vec<usize> = (0..n).filter(|&i| train.y()[i] >= 0.5).collect();
    pos.sort_by(|&a, &b| {
        model
            .margin(train.row(b))
            .partial_cmp(&model.margin(train.row(a)))
            .unwrap()
    });
    let mut table = Table::new(
        "E15  group influence: relative error vs group size",
        &["group size", "% of data", "first-order err", "newton (2nd-order) err"],
    );
    for frac in [0.02, 0.08, 0.2, 0.35] {
        let k = ((n as f64) * frac) as usize;
        let group: Vec<usize> = pos.iter().copied().take(k).collect();
        if group.len() < 2 {
            continue;
        }
        let truth = group_removal_ground_truth(&model, &train, &group, config);
        let e1 = relative_error(&group_influence_first_order(&model, &train, &group), &truth);
        let e2 = relative_error(&group_influence_newton(&model, &train, &group), &truth);
        table.row(vec![
            group.len().to_string(),
            format!("{:.0}%", frac * 100.0),
            f(e1),
            f(e2),
        ]);
    }
    table.print();
    println!("  shape: first-order error grows with group size; curvature-aware stays low (Basu et al.).");
}
