//! E5–E7: LIME reliability, adversarial attacks, and local fidelity
//! (§2.1.1).

use xai_bench::{f, Table};
use xai_data::metrics::demographic_parity_gap;
use xai_data::synth::{circles, german_credit, recidivism};
use xai_models::{proba_fn, ForestConfig, LogisticConfig, LogisticRegression, RandomForest};
use xai_surrogate::{
    lime_audit, lime_stability, AttackConfig, LimeConfig, LimeExplainer, ScaffoldedModel,
};

/// E5 — "sampling … can be unreliable" (§2.1.1): Visani-style VSI/CSI
/// stability indices rise with the sampling budget; small budgets produce
/// explanations that disagree with themselves.
pub fn e5(quick: bool) {
    let data = german_credit(600, 17);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let lime = LimeExplainer::fit(&data);
    let fm = proba_fn(&model);
    let budgets: &[usize] = if quick { &[25, 100, 400] } else { &[25, 100, 400, 1600, 6400] };
    let runs = if quick { 5 } else { 8 };
    let mut table = Table::new(
        "E5  LIME stability vs sampling budget (VSI/CSI, k=3, one instance)",
        &["n_samples", "VSI", "CSI"],
    );
    for &b in budgets {
        let s = lime_stability(
            &lime,
            &fm,
            data.row(0),
            LimeConfig { n_samples: b, ..LimeConfig::default() },
            runs,
            3,
            100,
        );
        table.row(vec![b.to_string(), f(s.vsi), f(s.csi)]);
    }
    table.print();
}

/// E6 — "exploited to perform adversarial attacks" (§2.1.1, Fooling
/// LIME/SHAP): the scaffolded model is fully discriminatory on real rows
/// yet its LIME explanations rarely surface the protected feature.
pub fn e6(quick: bool) {
    let data = recidivism(if quick { 300 } else { 600 }, 31, 0.0);
    let scaffold = ScaffoldedModel::train(&data, 4, 1, AttackConfig::default());
    let instances = if quick { 10 } else { 25 };

    // Behaviour on real data.
    let preds: Vec<f64> = (0..data.n_rows())
        .map(|i| f64::from(scaffold.predict(data.row(i)) >= 0.5))
        .collect();
    let gap = demographic_parity_gap(&preds, &data.x().col(4));

    let honest = |x: &[f64]| scaffold.biased_prediction(x);
    let attacked = |x: &[f64]| scaffold.predict(x);
    let honest_audit = lime_audit(&honest, &data, 4, instances, 5);
    let attacked_audit = lime_audit(&attacked, &data, 4, instances, 5);

    let mut table = Table::new(
        "E6  scaffolding attack: hiding a biased model from LIME",
        &["model", "parity gap (real data)", "protected top-1", "protected top-3"],
    );
    table.row(vec![
        "honest biased".into(),
        f(gap),
        f(honest_audit.protected_top1_rate),
        f(honest_audit.protected_top3_rate),
    ]);
    table.row(vec![
        "scaffolded".into(),
        f(gap),
        f(attacked_audit.protected_top1_rate),
        f(attacked_audit.protected_top3_rate),
    ]);
    table.print();
    println!("  same real-world behaviour, very different audit outcome (Slack et al.).");
}

/// E7 — the LIME locality assumption (§2.1.1): local fidelity (weighted
/// R²) as a function of kernel width on a non-linear model; global
/// linear fidelity shown as the limit.
pub fn e7(quick: bool) {
    let data = circles(if quick { 400 } else { 800 }, 9, 0.15);
    let forest = RandomForest::fit(
        data.x(),
        data.y(),
        ForestConfig { n_trees: 30, seed: 1, ..Default::default() },
    );
    let lime = LimeExplainer::fit(&data);
    let fm = proba_fn(&forest);
    let mut table = Table::new(
        "E7  LIME local fidelity vs kernel width (rings data, forest model)",
        &["kernel width", "weighted R²"],
    );
    for width in [0.2, 0.5, 1.0, 3.0, 10.0] {
        let exp = lime.explain(
            &fm,
            data.row(0),
            LimeConfig { kernel_width: Some(width), n_samples: 2000, ..LimeConfig::default() },
            3,
        );
        table.row(vec![format!("{width:.1}"), f(exp.local_fidelity)]);
    }
    // Global linear surrogate as the "width → ∞" reference.
    let global = xai_surrogate::linear_surrogate(&fm, &data);
    table.row(vec!["∞ (global linear)".into(), f(global.train_fidelity)]);
    table.print();
}
