//! Golden-oracle tests: a linear model over an independent-feature
//! background has a closed-form Shapley value,
//! `φ_i = w_i · (x_i − mean_i)`, where `mean_i` is the background mean of
//! feature `i`. Every estimator in the crate must reproduce it — the
//! enumerating oracle exactly, Kernel SHAP on a full coalition budget to
//! 1e-10, and the batched paths bit-identically to their scalar twins.
// The legacy twins stay under golden test until removal.
#![allow(deprecated)]

use xai_linalg::Matrix;
use xai_models::{batch_regress_fn, regress_fn, LinearRegression};
use xai_shapley::{
    exact_shapley, kernel_shap, kernel_shap_batched, BatchPredictionGame, CachedGame,
    KernelShapConfig, PredictionGame,
};

const N: usize = 8;

fn fixture() -> (LinearRegression, Vec<f64>, Matrix) {
    let coef: Vec<f64> = (0..N).map(|j| (j as f64 - 3.0) * 0.7 + 0.1).collect();
    let model = LinearRegression::from_parameters(-0.25, coef);
    let instance: Vec<f64> = (0..N).map(|j| (j as f64 * 0.9).sin() * 2.0 + 0.3).collect();
    let background = Matrix::from_fn(6, N, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.4 - 2.0);
    (model, instance, background)
}

/// `φ_i = w_i (x_i − mean_i)` for a linear model: the game is additive, so
/// each player's value is its singleton marginal.
fn closed_form(model: &LinearRegression, instance: &[f64], background: &Matrix) -> Vec<f64> {
    (0..N)
        .map(|j| {
            let mean = background.col(j).iter().sum::<f64>() / background.rows() as f64;
            model.coef()[j] * (instance[j] - mean)
        })
        .collect()
}

#[test]
fn exact_shapley_matches_closed_form() {
    let (model, instance, background) = fixture();
    let f = regress_fn(&model);
    let game = PredictionGame::new(&f, &instance, &background);
    let phi = exact_shapley(&game);
    let oracle = closed_form(&model, &instance, &background);
    for (j, (p, o)) in phi.iter().zip(&oracle).enumerate() {
        assert!((p - o).abs() < 1e-10, "phi[{j}] {p} vs closed form {o}");
    }
}

#[test]
fn kernel_shap_on_full_budget_reproduces_exact_shapley() {
    let (model, instance, background) = fixture();
    let f = regress_fn(&model);
    let game = PredictionGame::new(&f, &instance, &background);
    let oracle = exact_shapley(&game);
    // 2^8 − 2 = 254 proper coalitions fit the default budget → exact mode.
    // The ridge is dropped to keep the regression's bias below the bound.
    let cfg = KernelShapConfig { ridge: 1e-12, ..KernelShapConfig::default() };
    let ks = kernel_shap(&game, cfg);
    assert!(ks.exact, "full budget must enumerate");
    assert_eq!(ks.coalitions_used, (1 << N) - 2);
    for (j, (p, o)) in ks.phi.iter().zip(&oracle).enumerate() {
        assert!((p - o).abs() < 1e-10, "phi[{j}] {p} vs exact {o}");
    }
    let closed = closed_form(&model, &instance, &background);
    for (p, o) in ks.phi.iter().zip(&closed) {
        assert!((p - o).abs() < 1e-10);
    }
}

#[test]
fn batched_path_passes_the_same_oracles_bit_identically() {
    let (model, instance, background) = fixture();
    let f = regress_fn(&model);
    let bf = batch_regress_fn(&model);
    let scalar_game = PredictionGame::new(&f, &instance, &background);
    let batch_game = BatchPredictionGame::new(&bf, &instance, &background);
    let cfg = KernelShapConfig { ridge: 1e-12, ..KernelShapConfig::default() };
    let scalar = kernel_shap(&scalar_game, cfg);
    let batched = kernel_shap_batched(&batch_game, cfg);
    assert_eq!(scalar.phi, batched.phi, "batched kernel SHAP must be bit-identical");
    assert_eq!(scalar.base_value, batched.base_value);

    let cached = CachedGame::new(&batch_game);
    let memoed = kernel_shap_batched(&cached, cfg);
    assert_eq!(scalar.phi, memoed.phi, "memo cache must not perturb bits");

    let oracle = closed_form(&model, &instance, &background);
    for (p, o) in batched.phi.iter().zip(&oracle) {
        assert!((p - o).abs() < 1e-10);
    }

    // The batched game itself is the scalar game, value for value.
    let coalition: Vec<bool> = (0..N).map(|j| j % 3 != 1).collect();
    use xai_shapley::CooperativeGame;
    assert_eq!(scalar_game.value(&coalition), batch_game.value(&coalition));
}
