//! Property-based tests: the Shapley axioms and estimator agreements hold
//! on randomly generated cooperative games.

use proptest::prelude::*;
use xai_shapley::{
    exact_shapley, kernel_shap, permutation_shapley, shapley_from_table, KernelShapConfig,
    TableGame,
};

/// Random 3–5 player game with bounded values and v(∅)=0.
fn game_strategy() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (3..=5usize).prop_flat_map(|n| {
        prop::collection::vec(-10.0..10.0f64, 1 << n).prop_map(move |mut v| {
            v[0] = 0.0;
            (n, v)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn efficiency((n, values) in game_strategy()) {
        let game = TableGame::new(n, values.clone());
        let phi = exact_shapley(&game);
        let total: f64 = phi.iter().sum();
        let expected = values[(1 << n) - 1] - values[0];
        prop_assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn linearity((n, v1) in game_strategy(), scale in -3.0..3.0f64) {
        // φ(a·v) = a·φ(v) and φ(v+w) = φ(v) + φ(w).
        let scaled: Vec<f64> = v1.iter().map(|x| x * scale).collect();
        let p1 = shapley_from_table(n, &v1);
        let ps = shapley_from_table(n, &scaled);
        for (a, b) in p1.iter().zip(&ps) {
            prop_assert!((a * scale - b).abs() < 1e-9);
        }
        let doubled: Vec<f64> = v1.iter().map(|x| x + x).collect();
        let pd = shapley_from_table(n, &doubled);
        for (a, b) in p1.iter().zip(&pd) {
            prop_assert!((2.0 * a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn dummy_player((n, mut values) in game_strategy()) {
        // Make player 0 a dummy: v(S ∪ {0}) = v(S) for every S.
        let size = 1usize << n;
        for mask in 0..size {
            if mask & 1 != 0 {
                values[mask] = values[mask & !1];
            }
        }
        let phi = shapley_from_table(n, &values);
        prop_assert!(phi[0].abs() < 1e-12, "dummy got {}", phi[0]);
    }

    #[test]
    fn symmetry((n, mut values) in game_strategy()) {
        // Make players 0 and 1 symmetric by averaging their roles.
        let size = 1usize << n;
        let swap01 = |mask: usize| -> usize {
            let b0 = (mask >> 0) & 1;
            let b1 = (mask >> 1) & 1;
            (mask & !0b11) | (b0 << 1) | b1
        };
        let orig = values.clone();
        for mask in 0..size {
            values[mask] = 0.5 * (orig[mask] + orig[swap01(mask)]);
        }
        let phi = shapley_from_table(n, &values);
        prop_assert!((phi[0] - phi[1]).abs() < 1e-9);
    }

    #[test]
    fn kernel_shap_matches_exact((n, values) in game_strategy()) {
        let game = TableGame::new(n, values);
        let exact = exact_shapley(&game);
        let ks = kernel_shap(&game, KernelShapConfig::default());
        prop_assert!(ks.exact);
        for (a, b) in ks.phi.iter().zip(&exact) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn permutation_sampling_preserves_efficiency((n, values) in game_strategy(), seed in 0u64..1000) {
        let game = TableGame::new(n, values.clone());
        let est = permutation_shapley(&game, 7, seed);
        let total: f64 = est.phi.iter().sum();
        let expected = values[(1 << n) - 1] - values[0];
        prop_assert!((total - expected).abs() < 1e-9);
    }
}
