//! Property-based tests: the Shapley axioms and estimator agreements hold
//! on randomly generated cooperative games. Run as deterministic seeded
//! loops over `xai_rand`.

use xai_data::synth::german_credit;
use xai_linalg::Matrix;
use xai_models::{proba_fn, LogisticConfig, LogisticRegression};
use xai_rand::property::{cases, vec_in};
use xai_rand::rngs::StdRng;
use xai_rand::Rng;
use xai_shapley::{
    exact_shapley, CooperativeGame, kernel_shap, permutation_shapley, shapley_from_table, KernelShapConfig,
    PredictionGame, TableGame,
};

/// Random 3–5 player game with bounded values and v(∅)=0.
fn random_game(rng: &mut StdRng) -> (usize, Vec<f64>) {
    let n: usize = rng.gen_range(3..=5);
    let mut v = vec_in(rng, 1usize << n, -10.0, 10.0);
    v[0] = 0.0;
    (n, v)
}

#[test]
fn efficiency() {
    cases(64, 601, |rng| {
        let (n, values) = random_game(rng);
        let game = TableGame::new(n, values.clone());
        let phi = exact_shapley(&game);
        let total: f64 = phi.iter().sum();
        let expected = values[(1 << n) - 1] - values[0];
        assert!((total - expected).abs() < 1e-9);
    });
}

#[test]
fn linearity() {
    cases(64, 602, |rng| {
        // φ(a·v) = a·φ(v) and φ(v+w) = φ(v) + φ(w).
        let (n, v1) = random_game(rng);
        let scale: f64 = rng.gen_range(-3.0..3.0);
        let scaled: Vec<f64> = v1.iter().map(|x| x * scale).collect();
        let p1 = shapley_from_table(n, &v1);
        let ps = shapley_from_table(n, &scaled);
        for (a, b) in p1.iter().zip(&ps) {
            assert!((a * scale - b).abs() < 1e-9);
        }
        let doubled: Vec<f64> = v1.iter().map(|x| x + x).collect();
        let pd = shapley_from_table(n, &doubled);
        for (a, b) in p1.iter().zip(&pd) {
            assert!((2.0 * a - b).abs() < 1e-9);
        }
    });
}

#[test]
fn dummy_player() {
    cases(64, 603, |rng| {
        // Make player 0 a dummy: v(S ∪ {0}) = v(S) for every S.
        let (n, mut values) = random_game(rng);
        let size = 1usize << n;
        for mask in 0..size {
            if mask & 1 != 0 {
                values[mask] = values[mask & !1];
            }
        }
        let phi = shapley_from_table(n, &values);
        assert!(phi[0].abs() < 1e-12, "dummy got {}", phi[0]);
    });
}

#[test]
fn symmetry() {
    cases(64, 604, |rng| {
        // Make players 0 and 1 symmetric by averaging their roles.
        let (n, mut values) = random_game(rng);
        let size = 1usize << n;
        let swap01 = |mask: usize| -> usize {
            let b0 = mask & 1;
            let b1 = (mask >> 1) & 1;
            (mask & !0b11) | (b0 << 1) | b1
        };
        let orig = values.clone();
        for mask in 0..size {
            values[mask] = 0.5 * (orig[mask] + orig[swap01(mask)]);
        }
        let phi = shapley_from_table(n, &values);
        assert!((phi[0] - phi[1]).abs() < 1e-9);
    });
}

#[test]
fn kernel_shap_matches_exact() {
    cases(64, 605, |rng| {
        let (n, values) = random_game(rng);
        let game = TableGame::new(n, values);
        let exact = exact_shapley(&game);
        let ks = kernel_shap(&game, KernelShapConfig::default());
        assert!(ks.exact);
        for (a, b) in ks.phi.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    });
}

#[test]
fn permutation_sampling_preserves_efficiency() {
    cases(64, 606, |rng| {
        let (n, values) = random_game(rng);
        let game = TableGame::new(n, values.clone());
        let est = permutation_shapley(&game, 7, rng.gen_range(0u64..1000));
        let total: f64 = est.phi.iter().sum();
        let expected = values[(1 << n) - 1] - values[0];
        assert!((total - expected).abs() < 1e-9);
    });
}

/// Axioms on a *model* game: attributions over a fitted logistic model sum
/// to `f(x) − E[f(background)]` (efficiency in its SHAP form).
#[test]
fn model_efficiency_sums_to_prediction_minus_baseline() {
    let data = german_credit(120, 29);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let d = data.n_features();
    let background = Matrix::from_fn(10, d, |i, j| data.x()[(i, j)]);
    cases(8, 607, |rng| {
        let row = rng.gen_range(0..data.n_rows());
        let instance: Vec<f64> = data.row(row).to_vec();
        let game = PredictionGame::new(&f, &instance, &background);
        let phi = exact_shapley(&game);
        let total: f64 = phi.iter().sum();
        let expected = game.grand_value() - game.empty_value();
        assert!((total - expected).abs() < 1e-9, "{total} vs {expected}");
    });
}

/// Statistical convergence: Monte-Carlo permutation Shapley approaches the
/// exact values on a ≤10-feature model, and the error shrinks as the
/// sample count grows.
#[test]
fn monte_carlo_converges_to_exact_on_model() {
    let data = german_credit(150, 31);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let d = data.n_features();
    assert!(d <= 10, "convergence check is exact-enumeration sized");
    let background = Matrix::from_fn(8, d, |i, j| data.x()[(i, j)]);
    let instance: Vec<f64> = data.row(3).to_vec();
    let game = PredictionGame::new(&f, &instance, &background);
    let exact = exact_shapley(&game);

    let err = |m: usize, seed: u64| -> f64 {
        let est = permutation_shapley(&game, m, seed);
        est.phi
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    // Averaged over a few seeds so the comparison is statistical, not a
    // single lucky draw.
    let mean_err = |m: usize| (0..4).map(|s| err(m, 700 + s)).sum::<f64>() / 4.0;
    let coarse = mean_err(40);
    let fine = mean_err(1200);
    assert!(fine < 0.05, "1200-permutation estimate should be close: {fine}");
    assert!(
        fine < coarse * 0.7,
        "error must shrink with more permutations: {coarse} -> {fine}"
    );
}
