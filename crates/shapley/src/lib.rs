//! # xai-shapley
//!
//! Shapley-value explanation methods (tutorial §2.1.2–§2.1.3), all built on
//! one abstraction — the cooperative [`game::CooperativeGame`] — with
//! interchangeable estimators:
//!
//! | module | method | cost |
//! |---|---|---|
//! | [`exact`] | exact Shapley / Banzhaf by coalition enumeration | `O(2^n)` |
//! | [`sampling`] | permutation Monte-Carlo (±antithetic) | `O(m·n)` evals |
//! | [`kernel`] | Kernel SHAP weighted regression | `O(m)` evals + WLS |
//! | [`tree`] | TreeSHAP for CART/forest/GBDT | `O(L·D²)` per tree |
//! | [`qii`] | Quantitative Input Influence | `O(m·n)` evals |
//! | [`asymmetric`] | asymmetric Shapley values (causal orderings) | `n!` / sampled |
//! | [`causal`] | causal (interventional) Shapley values on an SCM | `O(2^n)` · MC |
//! | [`flow`] | edge-level Shapley credit on the causal DAG | `O(2^E)` |
//! | [`global`] | local→global aggregation | linear |
//! | [`batch`] | batched coalition evaluation + memo cache | — |
//! | [`masked`] | zero-copy masked evaluation + cross-request memo | — |
//!
//! The Monte-Carlo estimators each have a `*_batched` twin that accepts a
//! [`batch::BatchGame`] and materializes whole sampling rounds into single
//! model calls; at the same seed the twins are bit-identical. For models
//! with a [`xai_core::ModelOracle`] surface and ≤ 64 features, the batched
//! path routes through [`masked::MaskedPredictionGame`], which evaluates
//! coalitions zero-copy — still bit-identical at every seed.
pub mod asymmetric;
pub mod batch;
pub mod causal;
pub mod conditional;
pub mod exact;
pub mod explainer;
pub mod flow;
pub mod game;
pub mod global;
pub mod interaction;
pub mod kernel;
pub mod masked;
pub mod owen;
pub mod qii;
pub mod sampling;
pub mod tree;

pub use asymmetric::{asymmetric_shapley_exact, asymmetric_shapley_sampled, Precedence};
pub use batch::{BatchGame, BatchPredictionGame, CachedGame};
pub use conditional::{conditional_shapley, ConditionalGame};
pub use causal::{causal_shapley, effect_decomposition, CausalGame, EffectDecomposition};
pub use exact::{exact_banzhaf, exact_shapley, shapley_from_table, MAX_EXACT_PLAYERS};
pub use explainer::{
    ExactShapleyMethod, KernelShapMethod, PermutationShapleyMethod, TreeShapMethod,
};
pub use flow::{shapley_flow, FlowEdge, ShapleyFlow};
pub use game::{CooperativeGame, PredictionGame, TableGame};
pub use masked::{coalition_mask, MaskedPredictionGame, MemoGame, MAX_MASKED_PLAYERS};
pub use interaction::{exact_interactions, model_interactions, InteractionMatrix};
pub use global::{
    aggregate_local, gbdt_global_importance, kernel_shap_attribution,
    try_kernel_shap_attribution, tree_shap_attribution,
    GlobalImportance,
};
pub use owen::{one_hot_groups, owen_values, OwenValues};
#[allow(deprecated)] // re-export keeps the legacy twins reachable during migration
pub use kernel::{
    kernel_shap, kernel_shap_batched, kernel_shap_batched_parallel, kernel_shap_parallel,
    shapley_kernel_weight, try_kernel_shap, try_kernel_shap_batched,
    try_kernel_shap_batched_parallel, try_kernel_shap_budgeted, try_kernel_shap_parallel,
    KernelShap, KernelShapConfig,
};
pub use qii::{set_qii, shapley_qii, unary_qii};
#[allow(deprecated)] // re-export keeps the legacy twins reachable during migration
pub use sampling::{
    antithetic_permutation_shapley, permutation_shapley, permutation_shapley_batched,
    permutation_shapley_batched_parallel, permutation_shapley_parallel,
    try_antithetic_permutation_shapley, try_permutation_shapley, try_permutation_shapley_batched,
    try_permutation_shapley_batched_parallel, try_permutation_shapley_budgeted,
    try_permutation_shapley_parallel, SampledShapley,
};
pub use tree::{
    brute_force_tree_shap, forest_shap, gbdt_shap, tree_expected_value, tree_shap,
    PathDependentGame, TreeShapExplanation,
};
