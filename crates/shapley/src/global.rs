//! From local explanations to global understanding (§2.1.2, \[46\]).
//!
//! TreeSHAP's headline application: aggregate per-instance Shapley values
//! over a dataset into global feature importances, keeping the local
//! additivity that permutation-importance style summaries lose.

use xai_core::{validate, FeatureAttribution, XaiResult};
use xai_data::Dataset;
use xai_linalg::Matrix;

/// Global importance summary aggregated from local attributions.
#[derive(Clone, Debug)]
pub struct GlobalImportance {
    /// Feature names.
    pub feature_names: Vec<String>,
    /// Mean |φ| per feature over the explained rows.
    pub mean_abs: Vec<f64>,
    /// Mean signed φ per feature (direction of average influence).
    pub mean_signed: Vec<f64>,
    /// Number of rows explained.
    pub rows: usize,
}

impl GlobalImportance {
    /// Features sorted by mean |φ| descending.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.mean_abs.len()).collect();
        idx.sort_by(|&a, &b| self.mean_abs[b].total_cmp(&self.mean_abs[a]).then(a.cmp(&b)));
        idx
    }

    /// The `k` most important `(name, mean |φ|)` pairs.
    pub fn top_k(&self, k: usize) -> Vec<(&str, f64)> {
        self.ranking()
            .into_iter()
            .take(k)
            .map(|i| (self.feature_names[i].as_str(), self.mean_abs[i]))
            .collect()
    }
}

/// Aggregates any per-row attribution function over (a subsample of) a
/// dataset. `explain_row` returns the φ vector for one row.
pub fn aggregate_local(
    data: &Dataset,
    max_rows: usize,
    mut explain_row: impl FnMut(&[f64]) -> Vec<f64>,
) -> GlobalImportance {
    let rows = data.n_rows().min(max_rows.max(1));
    let d = data.n_features();
    let mut mean_abs = vec![0.0; d];
    let mut mean_signed = vec![0.0; d];
    for i in 0..rows {
        let phi = explain_row(data.row(i));
        assert_eq!(phi.len(), d, "attribution arity mismatch");
        for j in 0..d {
            mean_abs[j] += phi[j].abs() / rows as f64;
            mean_signed[j] += phi[j] / rows as f64;
        }
    }
    GlobalImportance {
        feature_names: data.schema().names().iter().map(|s| s.to_string()).collect(),
        mean_abs,
        mean_signed,
        rows,
    }
}

/// Global TreeSHAP importance for a GBDT over a dataset.
pub fn gbdt_global_importance(model: &xai_models::Gbdt, data: &Dataset, max_rows: usize) -> GlobalImportance {
    aggregate_local(data, max_rows, |row| crate::tree::gbdt_shap(model, row).phi)
}

/// Wraps a Kernel SHAP run into a named [`FeatureAttribution`] for
/// reporting.
pub fn kernel_shap_attribution(
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    background: &Matrix,
    feature_names: &[&str],
    config: crate::kernel::KernelShapConfig,
) -> FeatureAttribution {
    let game = crate::game::PredictionGame::new(model, instance, background);
    let ks = crate::kernel::kernel_shap(&game, config);
    FeatureAttribution::new(
        feature_names.iter().map(|s| s.to_string()).collect(),
        ks.phi,
        ks.base_value,
        model(instance),
    )
}

/// Fallible twin of [`kernel_shap_attribution`]: validates the
/// instance/background pair up front (finiteness, arity, non-degenerate
/// background), then runs [`crate::kernel::try_kernel_shap`]. A ridge-
/// escalated (degraded) regression still returns `Ok` — inspect
/// [`crate::kernel::KernelShap::degraded`] via [`crate::kernel::try_kernel_shap`]
/// directly when that distinction matters.
pub fn try_kernel_shap_attribution(
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    background: &Matrix,
    feature_names: &[&str],
    config: crate::kernel::KernelShapConfig,
) -> XaiResult<FeatureAttribution> {
    validate::background("kernel SHAP", instance, background)?;
    let game = crate::game::PredictionGame::new(model, instance, background);
    let ks = crate::kernel::try_kernel_shap(&game, config)?;
    let prediction = xai_core::catch_model("kernel SHAP instance prediction", || model(instance))?;
    Ok(FeatureAttribution::new(
        feature_names.iter().map(|s| s.to_string()).collect(),
        ks.phi,
        ks.base_value,
        prediction,
    ))
}

/// Wraps a GBDT TreeSHAP run into a named [`FeatureAttribution`]
/// (attributing the raw margin).
pub fn tree_shap_attribution(
    model: &xai_models::Gbdt,
    instance: &[f64],
    feature_names: &[&str],
) -> FeatureAttribution {
    let exp = crate::tree::gbdt_shap(model, instance);
    FeatureAttribution::new(
        feature_names.iter().map(|s| s.to_string()).collect(),
        exp.phi,
        exp.expected_value,
        model.margin(instance),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::friedman1;
    use xai_models::{Gbdt, GbdtConfig, GbdtLoss};

    #[test]
    fn friedman_global_ranking_finds_relevant_features() {
        let data = friedman1(1200, 23, 0.2);
        let model = Gbdt::fit(
            data.x(),
            data.y(),
            GbdtConfig { n_rounds: 60, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let gi = gbdt_global_importance(&model, &data, 120);
        assert_eq!(gi.rows, 120);
        let top5: std::collections::HashSet<usize> = gi.ranking().into_iter().take(5).collect();
        // Ground truth: features 0-4 are the relevant ones.
        let hits = (0..5).filter(|i| top5.contains(i)).count();
        assert!(hits >= 4, "top-5 should recover the relevant features, got {top5:?}");
    }

    #[test]
    fn kernel_attribution_has_local_accuracy() {
        let model = |x: &[f64]| x[0] * 2.0 + x[1];
        let background = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let fa = kernel_shap_attribution(
            &model,
            &[2.0, 3.0],
            &background,
            &["a", "b"],
            Default::default(),
        );
        assert!(fa.efficiency_gap() < 1e-9);
        assert_eq!(fa.feature_names, vec!["a", "b"]);
    }

    #[test]
    fn tree_attribution_explains_margin() {
        let data = friedman1(300, 29, 0.2);
        // Regression GBDT: margin == prediction.
        let model = Gbdt::fit(
            data.x(),
            data.y(),
            GbdtConfig { n_rounds: 20, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let names: Vec<&str> = data.schema().names();
        let fa = tree_shap_attribution(&model, data.row(0), &names);
        assert!(fa.efficiency_gap() < 1e-8);
    }

    #[test]
    fn top_k_is_sorted() {
        let gi = GlobalImportance {
            feature_names: vec!["a".into(), "b".into(), "c".into()],
            mean_abs: vec![0.1, 0.7, 0.3],
            mean_signed: vec![0.1, -0.7, 0.3],
            rows: 1,
        };
        let top = gi.top_k(2);
        assert_eq!(top[0].0, "b");
        assert_eq!(top[1].0, "c");
    }
}
