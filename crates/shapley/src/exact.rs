//! Exact Shapley values by complete coalition enumeration.
//!
//! This is the `O(2^n)` ground truth the tutorial refers to with
//! *"Computing Shapley values takes exponential time, since all possible
//! feature orderings are considered"* (§2.1.2). Every approximation in this
//! crate is validated against it, and experiment E1 measures its runtime
//! wall.

use crate::game::{mask_to_coalition, CooperativeGame};

/// Maximum player count accepted by the exact estimator (2^24 coalition
/// evaluations is already ~16M model calls).
pub const MAX_EXACT_PLAYERS: usize = 24;

/// Computes exact Shapley values for every player.
///
/// Evaluates each of the `2^n` coalitions exactly once, then combines
/// marginal contributions with the closed-form weights
/// `|S|! (n−|S|−1)! / n!`.
///
/// # Panics
/// Panics when `n > MAX_EXACT_PLAYERS`.
pub fn exact_shapley(game: &dyn CooperativeGame) -> Vec<f64> {
    let n = game.n_players();
    assert!(
        n <= MAX_EXACT_PLAYERS,
        "exact Shapley on {n} players would need 2^{n} coalition evaluations"
    );
    if n == 0 {
        return Vec::new();
    }
    // Evaluate every coalition once.
    let size = 1usize << n;
    let mut values = Vec::with_capacity(size);
    for mask in 0..size {
        values.push(game.value(&mask_to_coalition(mask, n)));
    }
    shapley_from_table(n, &values)
}

/// Shapley values from a precomputed `2^n` coalition-value table.
pub fn shapley_from_table(n: usize, values: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), 1usize << n);
    // weight[s] = s! (n-s-1)! / n! computed in log-space-free factorial form.
    let mut factorial = vec![1.0f64; n + 1];
    for i in 1..=n {
        factorial[i] = factorial[i - 1] * i as f64;
    }
    let weight: Vec<f64> = (0..n)
        .map(|s| factorial[s] * factorial[n - s - 1] / factorial[n])
        .collect();

    let mut phi = vec![0.0; n];
    for (mask, &v_s) in values.iter().enumerate() {
        let s = mask.count_ones() as usize;
        for (i, p) in phi.iter_mut().enumerate() {
            if mask & (1 << i) == 0 {
                let v_si = values[mask | (1 << i)];
                *p += weight[s] * (v_si - v_s);
            }
        }
    }
    phi
}

/// Exact Banzhaf values from the same enumeration (used as a contrast
/// index: Banzhaf drops the ordering-based weights and violates
/// efficiency).
pub fn exact_banzhaf(game: &dyn CooperativeGame) -> Vec<f64> {
    let n = game.n_players();
    assert!(n <= MAX_EXACT_PLAYERS && n > 0);
    let size = 1usize << n;
    let mut values = Vec::with_capacity(size);
    for mask in 0..size {
        values.push(game.value(&mask_to_coalition(mask, n)));
    }
    let denom = (size >> 1) as f64;
    let mut phi = vec![0.0; n];
    for (mask, &v_s) in values.iter().enumerate() {
        for (i, p) in phi.iter_mut().enumerate() {
            if mask & (1 << i) == 0 {
                *p += (values[mask | (1 << i)] - v_s) / denom;
            }
        }
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{PredictionGame, TableGame};
    use xai_linalg::Matrix;

    #[test]
    fn glove_game_closed_form() {
        // Textbook result: φ = (1/6, 1/6, 4/6).
        let phi = exact_shapley(&TableGame::glove());
        assert!((phi[0] - 1.0 / 6.0).abs() < 1e-12);
        assert!((phi[1] - 1.0 / 6.0).abs() < 1e-12);
        assert!((phi[2] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_axiom() {
        let game = TableGame::new(3, vec![0.0, 1.0, 2.0, 4.0, 0.5, 2.5, 3.0, 7.0]);
        let phi = exact_shapley(&game);
        let total: f64 = phi.iter().sum();
        assert!((total - (game.grand_value() - game.empty_value())).abs() < 1e-12);
    }

    #[test]
    fn dummy_player_gets_zero() {
        // Player 1 never changes the value.
        let mut values = vec![0.0; 8];
        for mask in 0..8usize {
            values[mask] = f64::from(mask & 1 != 0) * 2.0 + f64::from(mask & 4 != 0);
        }
        let phi = exact_shapley(&TableGame::new(3, values));
        assert!((phi[0] - 2.0).abs() < 1e-12);
        assert!(phi[1].abs() < 1e-12);
        assert!((phi[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_axiom() {
        // Players 0 and 1 are interchangeable.
        let mut values = vec![0.0; 8];
        for mask in 0..8usize {
            let s01 = (mask & 1 != 0) as usize + (mask & 2 != 0) as usize;
            values[mask] = s01 as f64 * 3.0 + f64::from(mask & 4 != 0);
        }
        let phi = exact_shapley(&TableGame::new(3, values));
        assert!((phi[0] - phi[1]).abs() < 1e-12);
    }

    #[test]
    fn linear_model_shapley_equals_weight_times_deviation() {
        // For f(x) = w·x and an independent background, φ_i = w_i (x_i − mean_i).
        let model = |x: &[f64]| 2.0 * x[0] - 3.0 * x[1] + 0.5 * x[2];
        let background = Matrix::from_rows(&[
            vec![0.0, 1.0, 2.0],
            vec![2.0, 3.0, 0.0],
            vec![1.0, 2.0, 1.0],
        ]);
        let instance = [3.0, 0.0, 2.0];
        let game = PredictionGame::new(&model, &instance, &background);
        let phi = exact_shapley(&game);
        let means = [1.0, 2.0, 1.0];
        let expect = [2.0 * (3.0 - 1.0), -3.0 * (0.0 - 2.0), 0.5 * (2.0 - 1.0)];
        for i in 0..3 {
            assert!((phi[i] - expect[i]).abs() < 1e-10, "phi[{i}]={} expect {}", phi[i], expect[i]);
        }
        let _ = means;
    }

    #[test]
    fn banzhaf_violates_efficiency_in_general() {
        let game = TableGame::new(2, vec![0.0, 0.0, 0.0, 1.0]); // unanimity game
        let shap = exact_shapley(&game);
        let banzhaf = exact_banzhaf(&game);
        assert!((shap.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Banzhaf gives each 1/2 here (sums to 1 by accident for n=2
        // unanimity) — use a 3-player majority game to see the violation.
        let mut values = vec![0.0; 8];
        for mask in 0..8usize {
            values[mask] = f64::from(mask.count_ones() >= 2);
        }
        let b3 = exact_banzhaf(&TableGame::new(3, values));
        assert!((b3.iter().sum::<f64>() - 1.0).abs() > 0.1, "sum {}", b3.iter().sum::<f64>());
        let _ = banzhaf;
    }

    #[test]
    #[should_panic(expected = "exact Shapley")]
    fn too_many_players_rejected() {
        struct Big;
        impl CooperativeGame for Big {
            fn n_players(&self) -> usize {
                30
            }
            fn value(&self, _: &[bool]) -> f64 {
                0.0
            }
        }
        exact_shapley(&Big);
    }
}
