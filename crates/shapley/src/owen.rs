//! Owen values: Shapley values under a coalition structure.
//!
//! When features come in natural groups — the one-hot columns of one
//! categorical attribute, or a block of correlated measurements — plain
//! Shapley values fragment the group's credit across its members. The
//! Owen value restricts the orderings to those where each group enters
//! *contiguously* (a two-level game: Shapley across groups, Shapley
//! within the entering group), giving both a per-group and a per-player
//! attribution that respect the structure. With singleton groups it
//! reduces exactly to the Shapley value — asserted in the tests.

use crate::game::CooperativeGame;
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;

/// Result of an Owen-value computation.
#[derive(Clone, Debug)]
pub struct OwenValues {
    /// Per-player values (aligned with the game's players).
    pub player_values: Vec<f64>,
    /// Per-group totals, aligned with the input partition.
    pub group_values: Vec<f64>,
}

/// Monte-Carlo Owen values: sample a random ordering of groups and a
/// random ordering within each group, walk the concatenation, record
/// marginal contributions.
///
/// # Panics
/// Panics when the partition does not cover every player exactly once.
pub fn owen_values(
    game: &dyn CooperativeGame,
    groups: &[Vec<usize>],
    samples: usize,
    seed: u64,
) -> OwenValues {
    let n = game.n_players();
    assert!(samples >= 1);
    // Validate the partition.
    {
        let mut seen = vec![false; n];
        for g in groups {
            for &p in g {
                assert!(p < n, "player {p} out of range");
                assert!(!seen[p], "player {p} appears in two groups");
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition must cover every player");
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut player_values = vec![0.0; n];
    let mut group_order: Vec<usize> = (0..groups.len()).collect();
    let mut coalition = vec![false; n];
    for _ in 0..samples {
        group_order.shuffle(&mut rng);
        coalition.iter_mut().for_each(|c| *c = false);
        let mut prev = game.value(&coalition);
        for &g in &group_order {
            let mut members = groups[g].clone();
            members.shuffle(&mut rng);
            for &p in &members {
                coalition[p] = true;
                let cur = game.value(&coalition);
                player_values[p] += (cur - prev) / samples as f64;
                prev = cur;
            }
        }
    }
    let group_values = groups
        .iter()
        .map(|g| g.iter().map(|&p| player_values[p]).sum())
        .collect();
    OwenValues { player_values, group_values }
}

/// Builds the canonical one-hot grouping from a
/// [`xai_data::OneHotEncoder`] layout: each raw feature's encoded columns
/// form one group.
pub fn one_hot_groups(encoder: &xai_data::OneHotEncoder, n_raw_features: usize) -> Vec<Vec<usize>> {
    (0..n_raw_features)
        .map(|j| encoder.columns_of(j).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::TableGame;

    #[test]
    fn singleton_groups_reduce_to_shapley() {
        let game = TableGame::glove();
        let groups: Vec<Vec<usize>> = (0..3).map(|i| vec![i]).collect();
        let owen = owen_values(&game, &groups, 20_000, 7);
        let shap = exact_shapley(&game);
        for (a, b) in owen.player_values.iter().zip(&shap) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn efficiency_holds() {
        let game = TableGame::new(4, (0..16).map(|m: usize| (m.count_ones() as f64).powi(2)).collect());
        let groups = vec![vec![0, 1], vec![2, 3]];
        let owen = owen_values(&game, &groups, 500, 3);
        let total: f64 = owen.player_values.iter().sum();
        assert!((total - (game.grand_value() - game.empty_value())).abs() < 1e-9);
        let gtotal: f64 = owen.group_values.iter().sum();
        assert!((gtotal - total).abs() < 1e-9);
    }

    #[test]
    fn grouping_protects_redundant_members_from_dilution() {
        // Players 0 and 1 are duplicates of one "signal" (either suffices
        // for value 1); player 2 independently adds 1.
        let mut values = vec![0.0; 8];
        for mask in 0..8usize {
            let signal = f64::from(mask & 0b11 != 0);
            let solo = f64::from(mask & 0b100 != 0);
            values[mask] = signal + solo;
        }
        let game = TableGame::new(3, values);
        // Ungrouped Shapley: the duplicate pair shares its unit of credit
        // (~0.5 each), player 2 gets 1.
        let shap = exact_shapley(&game);
        assert!((shap[2] - 1.0).abs() < 1e-9);
        // Grouped: the {0,1} block gets 1 as a *group* — the group view
        // reports the signal's full worth regardless of internal
        // redundancy.
        let owen = owen_values(&game, &[vec![0, 1], vec![2]], 4000, 11);
        assert!((owen.group_values[0] - 1.0).abs() < 0.03, "group {}", owen.group_values[0]);
        assert!((owen.group_values[1] - 1.0).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn incomplete_partition_rejected() {
        let game = TableGame::glove();
        owen_values(&game, &[vec![0, 1]], 10, 0);
    }

    #[test]
    #[should_panic(expected = "appears in two groups")]
    fn overlapping_partition_rejected() {
        let game = TableGame::glove();
        owen_values(&game, &[vec![0, 1], vec![1, 2]], 10, 0);
    }

    #[test]
    fn one_hot_groups_follow_encoder_layout() {
        use xai_data::synth::german_credit;
        use xai_data::OneHotEncoder;
        let data = german_credit(50, 3);
        let enc = OneHotEncoder::fit(data.schema());
        let groups = one_hot_groups(&enc, data.n_features());
        assert_eq!(groups.len(), data.n_features());
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, enc.encoded_width());
        // Categorical features map to multi-column groups.
        let housing = data.schema().index_of("housing").unwrap();
        assert_eq!(groups[housing].len(), 3);
    }
}
