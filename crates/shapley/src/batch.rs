//! Batched coalition evaluation: the [`BatchGame`] abstraction plus its
//! **materializing** implementation.
//!
//! The Monte-Carlo estimators spend essentially all of their time asking a
//! game for coalition values, and for prediction games each such call
//! assembles `|background|` perturbed rows and feeds them through the
//! model one row at a time. This module holds the trait that amortizes
//! that cost and one of two strategies for implementing it:
//!
//! - [`BatchGame`] extends [`CooperativeGame`] with a many-coalitions-in /
//!   many-values-out entry point;
//! - [`BatchPredictionGame`] materializes *all* perturbed rows of a
//!   sampling round into one [`Matrix`] and makes a single call through a
//!   batched model surface (`Fn(&Matrix) -> Vec<f64>`, see
//!   `xai_models::BatchPredictFn`);
//! - [`CachedGame`] memoizes coalition values by bitmask *within one
//!   game instance*, so repeated subsets hit a hash map instead of the
//!   model.
//!
//! Materialization is **not** the only strategy, and since the zero-copy
//! layer (DESIGN.md §12) it is no longer the default one. Which path a
//! `batched: true` plan takes is decided in `explainer.rs`:
//!
//! - **≤ 64 features and a [`xai_core::ModelOracle`]** — the unified
//!   explainers build a [`crate::masked::MaskedPredictionGame`], which
//!   encodes each coalition as a `u64` bitmask and evaluates it through
//!   `ModelOracle::predict_masked` with **no perturbed row ever copied**
//!   (masked kernels in `xai_linalg::batch`, arena scratch for outputs).
//!   When the request carries a shared [`xai_core::CoalitionMemo`] handle,
//!   the game is additionally wrapped in a
//!   [`crate::masked::MemoGame`] — the cross-request generalization of
//!   [`CachedGame`].
//! - **> 64 features, or callers holding only a closure** — the
//!   [`BatchPredictionGame`] here, which trades one big allocation for
//!   batched inference and works at any arity. The legacy `*_batched`
//!   free-function twins also remain on this path.
//!
//! Everything on either path preserves the workspace determinism contract
//! *bitwise*: a batched estimator run equals its scalar counterpart
//! bit-for-bit at the same seed and worker count
//! (`tests/batch_equivalence.rs`, `tests/masked_equivalence.rs`), because
//! (a) randomness is always drawn before evaluation and evaluation never
//! consumes randomness, (b) per-coalition averaging keeps the background
//! accumulation order, and (c) the batched and masked model kernels are
//! themselves bit-identical to the scalar predictors.

use crate::game::{CooperativeGame, TableGame};
use std::collections::HashMap;
use std::sync::Mutex;
use xai_linalg::Matrix;

/// A cooperative game that can evaluate many coalitions per call.
///
/// The default implementation is the scalar loop, so any game is trivially
/// a `BatchGame`; games backed by batched model inference override
/// [`BatchGame::values`] to amortize the per-call cost.
pub trait BatchGame: CooperativeGame {
    /// Values of all `coalitions`, in order. Must equal
    /// `coalitions.iter().map(|c| self.value(c))` bit-for-bit.
    fn values(&self, coalitions: &[Vec<bool>]) -> Vec<f64> {
        coalitions.iter().map(|c| self.value(c)).collect()
    }
}

impl BatchGame for TableGame {}

// A scalar prediction game is a batch game via the default row loop, so
// the batched estimator entry points accept it as a drop-in.
impl<F: Fn(&[f64]) -> f64 + ?Sized> BatchGame for crate::game::PredictionGame<'_, F> {}

/// The SHAP prediction game over a **batched** model surface: semantics of
/// [`crate::PredictionGame`] (marginal expectation over a background
/// sample), but one model call per coalition *round* instead of one per
/// perturbed row.
///
/// Generic over the model's function type exactly like `PredictionGame`,
/// so `Sync` closures yield a `Sync` game for the parallel estimators.
pub struct BatchPredictionGame<'a, F: ?Sized = dyn Fn(&Matrix) -> Vec<f64> + 'a> {
    model: &'a F,
    instance: &'a [f64],
    background: &'a Matrix,
}

impl<'a, F: Fn(&Matrix) -> Vec<f64> + ?Sized> BatchPredictionGame<'a, F> {
    /// Builds the game.
    ///
    /// # Panics
    /// Panics when the background is empty or arities disagree.
    pub fn new(model: &'a F, instance: &'a [f64], background: &'a Matrix) -> Self {
        assert!(background.rows() > 0, "background must be non-empty");
        assert_eq!(
            background.cols(),
            instance.len(),
            "background/instance arity mismatch"
        );
        Self { model, instance, background }
    }

    /// The instance being explained.
    pub fn instance(&self) -> &[f64] {
        self.instance
    }
}

impl<F: Fn(&Matrix) -> Vec<f64> + ?Sized> CooperativeGame for BatchPredictionGame<'_, F> {
    fn n_players(&self) -> usize {
        self.instance.len()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        self.values(std::slice::from_ref(&coalition.to_vec()))[0]
    }
}

impl<F: Fn(&Matrix) -> Vec<f64> + ?Sized> BatchGame for BatchPredictionGame<'_, F> {
    fn values(&self, coalitions: &[Vec<bool>]) -> Vec<f64> {
        let b = self.background.rows();
        let d = self.instance.len();
        // Materialize every perturbed row of the round into one matrix:
        // coalition c occupies the contiguous row block [c*b, (c+1)*b).
        // Each block is one memcpy of the whole background followed by a
        // strided patch of the coalition's columns — far cheaper than a
        // branch per element.
        let mut probes = Matrix::zeros(coalitions.len() * b, d);
        let bg_flat = self.background.as_slice();
        let out_flat = probes.as_mut_slice();
        for (c, coalition) in coalitions.iter().enumerate() {
            assert_eq!(
                coalition.len(),
                d,
                "coalition {c} has {} members but the game has {d} players",
                coalition.len()
            );
            let block = &mut out_flat[c * b * d..(c + 1) * b * d];
            block.copy_from_slice(bg_flat);
            for (j, _) in coalition.iter().enumerate().filter(|(_, &in_s)| in_s) {
                let v = self.instance[j];
                for bi in 0..b {
                    block[bi * d + j] = v;
                }
            }
        }
        let preds = (self.model)(&probes);
        assert_eq!(preds.len(), coalitions.len() * b, "model returned wrong batch size");
        // Per-coalition mean over its block, accumulating in background
        // order — the same summation order as PredictionGame::value.
        (0..coalitions.len())
            .map(|c| {
                let mut total = 0.0;
                for &p in &preds[c * b..(c + 1) * b] {
                    total += p;
                }
                total / b as f64
            })
            .collect()
    }
}

/// Cache counters and the memo table, behind one lock.
struct CacheState {
    memo: HashMap<u64, f64>,
    hits: usize,
    misses: usize,
}

/// A memoizing wrapper around any [`BatchGame`]: coalition values are
/// cached under their membership bitmask (player `i` ⇔ bit `i`), so
/// repeated subsets within a seeded run — common in permutation walks and
/// sampled Kernel SHAP — cost one hash lookup instead of a model round.
///
/// Because game values are deterministic functions of the coalition, a
/// cache hit returns the bit-identical value the game would have produced;
/// wrapping a game in `CachedGame` never changes estimator output. The
/// wrapper is `Sync` (the memo sits behind a [`Mutex`]) and misses are
/// evaluated *outside* the lock, batched per call, so parallel workers
/// share the cache without serializing their model rounds.
pub struct CachedGame<'a, G: BatchGame + ?Sized> {
    inner: &'a G,
    state: Mutex<CacheState>,
}

impl<'a, G: BatchGame + ?Sized> CachedGame<'a, G> {
    /// Wraps a game. Panics above 64 players (the bitmask key width).
    pub fn new(inner: &'a G) -> Self {
        assert!(
            inner.n_players() <= 64,
            "coalition bitmask cache supports at most 64 players"
        );
        Self {
            inner,
            state: Mutex::new(CacheState { memo: HashMap::new(), hits: 0, misses: 0 }),
        }
    }

    fn mask_of(coalition: &[bool]) -> u64 {
        let mut mask = 0u64;
        for (i, &in_s) in coalition.iter().enumerate() {
            if in_s {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// `(hits, misses)` so far; a miss is a coalition forwarded to the
    /// underlying game.
    pub fn stats(&self) -> (usize, usize) {
        let state = self.state.lock().expect("cache lock poisoned");
        (state.hits, state.misses)
    }

    /// Number of distinct coalitions cached.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock poisoned").memo.len()
    }

    /// Whether the cache is still empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<G: BatchGame + ?Sized> CooperativeGame for CachedGame<'_, G> {
    fn n_players(&self) -> usize {
        self.inner.n_players()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        self.values(std::slice::from_ref(&coalition.to_vec()))[0]
    }
}

impl<G: BatchGame + ?Sized> BatchGame for CachedGame<'_, G> {
    fn values(&self, coalitions: &[Vec<bool>]) -> Vec<f64> {
        let masks: Vec<u64> = coalitions.iter().map(|c| Self::mask_of(c)).collect();
        let mut out = vec![0.0; coalitions.len()];
        // Phase 1: serve hits, collect distinct misses in first-seen order.
        let mut miss_masks: Vec<u64> = Vec::new();
        let mut miss_coalitions: Vec<Vec<bool>> = Vec::new();
        let mut unresolved: Vec<usize> = Vec::new();
        {
            let mut state = self.state.lock().expect("cache lock poisoned");
            let mut seen_this_call: HashMap<u64, ()> = HashMap::new();
            for (i, (&mask, coalition)) in masks.iter().zip(coalitions).enumerate() {
                if let Some(&v) = state.memo.get(&mask) {
                    state.hits += 1;
                    out[i] = v;
                } else {
                    state.misses += 1;
                    unresolved.push(i);
                    if seen_this_call.insert(mask, ()).is_none() {
                        miss_masks.push(mask);
                        miss_coalitions.push(coalition.clone());
                    }
                }
            }
        }
        if miss_coalitions.is_empty() {
            return out;
        }
        // Phase 2: one batched round for the distinct misses, lock released
        // so concurrent workers overlap their model evaluation. (A racing
        // worker may evaluate the same mask; both compute the identical
        // deterministic value, so the duplicate insert is harmless.)
        let fresh = self.inner.values(&miss_coalitions);
        let fresh_by_mask: HashMap<u64, f64> =
            miss_masks.iter().copied().zip(fresh.iter().copied()).collect();
        {
            let mut state = self.state.lock().expect("cache lock poisoned");
            for (&mask, &v) in miss_masks.iter().zip(&fresh) {
                state.memo.insert(mask, v);
            }
        }
        for i in unresolved {
            out[i] = fresh_by_mask[&masks[i]];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{mask_to_coalition, PredictionGame};

    fn toy() -> (Vec<f64>, Matrix) {
        let instance = vec![1.0, 5.0, -2.0];
        let background =
            Matrix::from_rows(&[vec![0.0, 0.0, 0.0], vec![2.0, 2.0, 2.0], vec![-1.0, 0.5, 3.0]]);
        (instance, background)
    }

    #[test]
    fn batch_prediction_game_matches_scalar_game_bitwise() {
        let (instance, background) = toy();
        let scalar = |x: &[f64]| (3.0 * x[0] + x[1]) * (x[2] + 0.7).tanh();
        let batched = |m: &Matrix| -> Vec<f64> { m.iter_rows().map(scalar).collect() };
        let g_scalar = PredictionGame::new(&scalar, &instance, &background);
        let g_batch = BatchPredictionGame::new(&batched, &instance, &background);
        let coalitions: Vec<Vec<bool>> = (0..8).map(|m| mask_to_coalition(m, 3)).collect();
        let vals = g_batch.values(&coalitions);
        for (c, v) in coalitions.iter().zip(&vals) {
            assert_eq!(*v, g_scalar.value(c), "coalition {c:?}");
            assert_eq!(g_batch.value(c), g_scalar.value(c));
        }
        assert_eq!(g_batch.n_players(), 3);
        assert_eq!(g_batch.empty_value(), g_scalar.empty_value());
        assert_eq!(g_batch.grand_value(), g_scalar.grand_value());
    }

    #[test]
    fn cached_game_serves_repeats_bit_identically_and_counts() {
        let game = TableGame::new(
            4,
            (0..16).map(|m: usize| (m.count_ones() as f64).sqrt() * 1.3 - 0.1).collect(),
        );
        let cached = CachedGame::new(&game);
        let coalitions: Vec<Vec<bool>> = [3usize, 5, 3, 9, 5, 3]
            .iter()
            .map(|&m| mask_to_coalition(m, 4))
            .collect();
        let vals = cached.values(&coalitions);
        for (c, v) in coalitions.iter().zip(&vals) {
            assert_eq!(*v, game.value(c));
        }
        // All six requests of the first call miss (the cache fills only at
        // the end of the call), but only the 3 distinct masks reach the
        // underlying game.
        assert_eq!(cached.stats(), (0, 6));
        assert_eq!(cached.len(), 3);
        // Second pass over the same coalitions: all hits, same bits.
        let again = cached.values(&coalitions);
        assert_eq!(again, vals);
        assert_eq!(cached.stats(), (6, 6));
        // Scalar entry point goes through the cache too.
        assert_eq!(cached.value(&coalitions[0]), vals[0]);
        assert_eq!(cached.stats(), (7, 6));
    }

    #[test]
    fn cached_game_rejects_too_many_players() {
        struct Wide;
        impl CooperativeGame for Wide {
            fn n_players(&self) -> usize {
                65
            }
            fn value(&self, _c: &[bool]) -> f64 {
                0.0
            }
        }
        impl BatchGame for Wide {}
        let result = std::panic::catch_unwind(|| CachedGame::new(&Wide));
        assert!(result.is_err());
    }
}
