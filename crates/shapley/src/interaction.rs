//! Shapley interaction indices.
//!
//! The tutorial's criticism list for Shapley-based attributions includes
//! their "inability … to capture the indirect influences of features"
//! (§2.1.2 \[40\]) — single φ values average interactions away. The
//! Shapley *interaction* index (Grabisch & Roubens; popularized for trees
//! by Lundberg et al. \[46\]) attributes to *pairs*:
//!
//! `Φ_{ij} = Σ_{S ⊆ N∖{i,j}} w(|S|) · Δ_{ij}(S)`,
//! `Δ_{ij}(S) = v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S)`,
//! with `w(s) = s!(n−s−2)!/(2(n−1)!)`,
//!
//! and the main effect of `i` is `φ_i − Σ_{j≠i} Φ_{ij}` (off-diagonal
//! entries split evenly, following the SHAP-interaction convention so the
//! full matrix sums to `v(N) − v(∅)`).

use crate::game::{mask_to_coalition, CooperativeGame};
use xai_linalg::Matrix;

/// The full SHAP-interaction matrix.
#[derive(Clone, Debug)]
pub struct InteractionMatrix {
    /// Symmetric matrix; `[i][j]` (i≠j) is half the pairwise interaction
    /// `Φ_{ij}` (so that row sums recover φ), `[i][i]` the main effect.
    pub matrix: Matrix,
    /// The plain Shapley values (row sums of `matrix`).
    pub phi: Vec<f64>,
}

impl InteractionMatrix {
    /// The pairwise interaction `Φ_{ij}` (full strength, both halves).
    pub fn pairwise(&self, i: usize, j: usize) -> f64 {
        assert_ne!(i, j, "use main_effect for the diagonal");
        2.0 * self.matrix[(i, j)]
    }

    /// The main (interaction-free) effect of feature `i`.
    pub fn main_effect(&self, i: usize) -> f64 {
        self.matrix[(i, i)]
    }

    /// Total attribution mass: equals `v(N) − v(∅)`.
    pub fn total(&self) -> f64 {
        let n = self.matrix.rows();
        let mut t = 0.0;
        for i in 0..n {
            for j in 0..n {
                t += self.matrix[(i, j)];
            }
        }
        t
    }
}

/// Computes the exact SHAP-interaction matrix by coalition enumeration
/// (`O(2^n)` game evaluations, each reused across all pairs).
///
/// # Panics
/// Panics when `n > 20` or `n < 2`.
pub fn exact_interactions(game: &dyn CooperativeGame) -> InteractionMatrix {
    let n = game.n_players();
    assert!((2..=20).contains(&n), "interaction enumeration needs 2 ≤ n ≤ 20");
    let size = 1usize << n;
    let mut values = Vec::with_capacity(size);
    for mask in 0..size {
        values.push(game.value(&mask_to_coalition(mask, n)));
    }

    // Interaction weights w(s) = s!(n-s-2)!/(2(n-1)!) for s = |S|.
    let mut factorial = vec![1.0f64; n + 1];
    for i in 1..=n {
        factorial[i] = factorial[i - 1] * i as f64;
    }
    let w: Vec<f64> = (0..n - 1)
        .map(|s| factorial[s] * factorial[n - s - 2] / (2.0 * factorial[n - 1]))
        .collect();

    let mut matrix = Matrix::zeros(n, n);
    for mask in 0..size {
        let s = mask.count_ones() as usize;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                continue;
            }
            for j in i + 1..n {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let v_s = values[mask];
                let v_si = values[mask | (1 << i)];
                let v_sj = values[mask | (1 << j)];
                let v_sij = values[mask | (1 << i) | (1 << j)];
                let delta = v_sij - v_si - v_sj + v_s;
                let contrib = w[s] * delta;
                // Store half on each symmetric entry.
                matrix[(i, j)] += contrib;
                matrix[(j, i)] += contrib;
            }
        }
    }

    // Diagonal: main effects so that rows sum to φ.
    let phi = crate::exact::shapley_from_table(n, &values);
    for i in 0..n {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| matrix[(i, j)]).sum();
        matrix[(i, i)] = phi[i] - off;
    }
    InteractionMatrix { matrix, phi }
}

/// Convenience: exact interactions of the prediction game for a black-box
/// model (marginal-expectation semantics, like Kernel SHAP).
pub fn model_interactions(
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    background: &Matrix,
) -> InteractionMatrix {
    let game = crate::game::PredictionGame::new(model, instance, background);
    exact_interactions(&game)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::TableGame;

    #[test]
    fn additive_game_has_zero_interactions() {
        // v(S) = Σ_{i∈S} (i+1): purely additive.
        let n = 4;
        let values: Vec<f64> = (0..1usize << n)
            .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).map(|i| (i + 1) as f64).sum())
            .collect();
        let im = exact_interactions(&TableGame::new(n, values));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    assert!(im.matrix[(i, j)].abs() < 1e-12, "({i},{j})");
                }
            }
            assert!((im.main_effect(i) - (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_interaction_game_puts_everything_on_the_pair() {
        // v(S) = 1 iff {0,1} ⊆ S: the 2-player unanimity game embedded in 3.
        let n = 3;
        let values: Vec<f64> = (0..8usize)
            .map(|mask| f64::from(mask & 0b11 == 0b11))
            .collect();
        let im = exact_interactions(&TableGame::new(n, values));
        assert!((im.pairwise(0, 1) - 1.0).abs() < 1e-12, "Φ01 = {}", im.pairwise(0, 1));
        assert!(im.main_effect(0).abs() < 1e-12);
        assert!(im.main_effect(1).abs() < 1e-12);
        assert!(im.pairwise(0, 2).abs() < 1e-12);
        // φ_i = 1/2 each for the pair.
        assert!((im.phi[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rows_sum_to_shapley_and_total_to_grand_value() {
        let game = TableGame::new(4, (0..16).map(|m: usize| (m.count_ones() as f64).powi(2) + f64::from(m & 1 != 0)).collect());
        let im = exact_interactions(&game);
        let exact = exact_shapley(&game);
        for i in 0..4 {
            let row: f64 = (0..4).map(|j| im.matrix[(i, j)]).sum();
            assert!((row - exact[i]).abs() < 1e-10, "row {i}: {row} vs {}", exact[i]);
        }
        assert!((im.total() - (game.grand_value() - game.empty_value())).abs() < 1e-10);
    }

    #[test]
    fn multiplicative_model_interaction_detected() {
        // f(x) = x0·x1 + x2 with a symmetric background: the (0,1)
        // interaction carries the product term.
        let model = |x: &[f64]| x[0] * x[1] + x[2];
        let background = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 1.0, 0.0],
            vec![-1.0, -1.0, 0.0],
        ]);
        let instance = [1.0, 1.0, 2.0];
        let im = model_interactions(&model, &instance, &background);
        assert!(im.pairwise(0, 1) > 0.5, "Φ01 = {}", im.pairwise(0, 1));
        assert!(im.pairwise(0, 2).abs() < 1e-9);
        assert!((im.main_effect(2) - 2.0).abs() < 1e-9, "x2 is purely additive");
    }

    #[test]
    fn symmetry_of_the_matrix() {
        let game = TableGame::glove();
        let im = exact_interactions(&game);
        for i in 0..3 {
            for j in 0..3 {
                assert!((im.matrix[(i, j)] - im.matrix[(j, i)]).abs() < 1e-12);
            }
        }
        // Glove: lefts interact negatively with each other (substitutes),
        // positively with the right glove (complements).
        assert!(im.pairwise(0, 1) < 0.0);
        assert!(im.pairwise(0, 2) > 0.0);
    }
}
