//! Quantitative Input Influence (Datta, Sen & Zick, §2.1.2 \[14\]).
//!
//! QII measures the influence of a feature (or feature set) by *randomized
//! intervention*: replace the feature with an independent draw from its
//! marginal and watch the expected output move. The Shapley aggregation of
//! set influences is exactly the Shapley value of the marginal-expectation
//! prediction game, so `shapley_qii` delegates to the permutation sampler
//! over [`PredictionGame`].

use crate::game::PredictionGame;
use crate::sampling::{permutation_shapley, SampledShapley};
use xai_linalg::Matrix;

/// Unary QII of each feature: `f(x) − E_u[f(x with x_i := u_i)]` where `u_i`
/// is drawn from the feature's marginal (represented by the background
/// sample).
pub fn unary_qii(model: &dyn Fn(&[f64]) -> f64, instance: &[f64], background: &Matrix) -> Vec<f64> {
    assert_eq!(background.cols(), instance.len());
    assert!(background.rows() > 0);
    let fx = model(instance);
    let mut out = Vec::with_capacity(instance.len());
    let mut probe = instance.to_vec();
    for i in 0..instance.len() {
        let mut mean = 0.0;
        for b in 0..background.rows() {
            probe[i] = background[(b, i)];
            mean += model(&probe);
        }
        probe[i] = instance[i];
        out.push(fx - mean / background.rows() as f64);
    }
    out
}

/// Set QII: influence of randomizing the whole set `s` jointly.
pub fn set_qii(
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    background: &Matrix,
    s: &[usize],
) -> f64 {
    assert!(s.iter().all(|&i| i < instance.len()), "feature index out of range");
    let fx = model(instance);
    let mut probe = instance.to_vec();
    let mut mean = 0.0;
    for b in 0..background.rows() {
        for &i in s {
            probe[i] = background[(b, i)];
        }
        mean += model(&probe);
    }
    fx - mean / background.rows() as f64
}

/// Shapley-aggregated QII — identical to the Shapley values of the
/// marginal-expectation game, estimated by permutation sampling.
pub fn shapley_qii(
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    background: &Matrix,
    permutations: usize,
    seed: u64,
) -> SampledShapley {
    let game = PredictionGame::new(model, instance, background);
    permutation_shapley(&game, permutations, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::PredictionGame;

    fn background() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0, 0.0],
            vec![2.0, 2.0, 2.0],
            vec![1.0, -1.0, 0.5],
        ])
    }

    #[test]
    fn unary_qii_for_linear_model_is_weight_times_deviation() {
        let model = |x: &[f64]| 3.0 * x[0] - 2.0 * x[1];
        let bg = background();
        let instance = [2.0, 1.0, 7.0];
        let q = unary_qii(&model, &instance, &bg);
        // Means of background cols: (1, 1/3, ...)
        assert!((q[0] - 3.0 * (2.0 - 1.0)).abs() < 1e-12);
        assert!((q[1] - (-2.0) * (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        assert!(q[2].abs() < 1e-12, "irrelevant feature must have zero influence");
    }

    #[test]
    fn set_qii_reduces_to_unary_for_singletons() {
        let model = |x: &[f64]| x[0] * x[1] + x[2];
        let bg = background();
        let instance = [1.5, -0.5, 2.0];
        let u = unary_qii(&model, &instance, &bg);
        for i in 0..3 {
            assert!((set_qii(&model, &instance, &bg, &[i]) - u[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn set_influence_is_not_additive_under_interactions() {
        // Multiplicative model with a symmetric background: each singleton
        // influence is 1 (randomizing either factor kills the product), but
        // randomizing both jointly also only costs 1 — set influence is
        // sub-additive, which is why QII aggregates marginal influences
        // across sets instead of summing singletons.
        let model = |x: &[f64]| x[0] * x[1];
        let bg = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 1.0, 0.0],
            vec![-1.0, -1.0, 0.0],
        ]);
        let instance = [1.0, 1.0, 0.0];
        let u = unary_qii(&model, &instance, &bg);
        assert!((u[0] - 1.0).abs() < 1e-12 && (u[1] - 1.0).abs() < 1e-12);
        let pair = set_qii(&model, &instance, &bg, &[0, 1]);
        assert!((pair - 1.0).abs() < 1e-12);
        assert!(u[0] + u[1] > pair + 0.5, "additivity must fail: {} vs {pair}", u[0] + u[1]);
    }

    #[test]
    fn shapley_qii_converges_to_exact_game_values() {
        let model = |x: &[f64]| x[0] * x[1] + 2.0 * x[2];
        let bg = background();
        let instance = [1.0, 2.0, -1.0];
        let game = PredictionGame::new(&model, &instance, &bg);
        let exact = exact_shapley(&game);
        let est = shapley_qii(&model, &instance, &bg, 3000, 3);
        for (a, b) in est.phi.iter().zip(&exact) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }
}
