//! Zero-copy masked coalition evaluation (DESIGN.md §12).
//!
//! [`crate::BatchPredictionGame`] amortizes model calls but still
//! *materializes* every perturbed row of a sampling round — a full
//! background memcpy plus column patches per coalition. The games here
//! skip the copies entirely:
//!
//! - [`MaskedPredictionGame`] turns each coalition into a `u64` bitmask
//!   and hands `(instance, background, masks)` to
//!   [`ModelOracle::predict_masked`], where every model family reads the
//!   instance column or the background column per the mask — blocked
//!   masked kernels for linear/logistic/MLP, masked split routing for the
//!   tree ensembles, and an arena-backed gather fallback for everything
//!   else. Predictions land in arena scratch, so steady-state rounds make
//!   zero heap allocations.
//! - [`MemoGame`] wraps any [`BatchGame`] with the shared cross-request
//!   [`CoalitionMemo`]: coalition values are looked up under
//!   `(GameKey, mask)` before touching the oracle and published after, so
//!   repeated serve traffic against the same (model, background, instance)
//!   skips whole rounds.
//!
//! Both wrappers preserve the workspace determinism contract bitwise. The
//! masked kernels accumulate in exactly the order of their materialized
//! twins (`xai_linalg::batch` docs that contract per kernel), the
//! per-coalition mean below accumulates in background order exactly like
//! `BatchPredictionGame::values`, and a memo hit substitutes a value that
//! is a pure function of its key — `tests/masked_equivalence.rs` pins all
//! of it per model family and mask pattern.

use crate::batch::BatchGame;
use crate::game::CooperativeGame;
use std::collections::HashMap;
use xai_core::memo::{CoalitionMemo, GameKey};
use xai_core::ModelOracle;
use xai_linalg::Matrix;

/// Width of the coalition bitmask: masked games support at most 64
/// players. Wider games fall back to materialized evaluation.
pub const MAX_MASKED_PLAYERS: usize = 64;

/// Packs a membership slice into a `u64` bitmask (player `i` ⇔ bit `i`).
///
/// # Panics
/// Panics when the coalition has more than [`MAX_MASKED_PLAYERS`] members.
pub fn coalition_mask(coalition: &[bool]) -> u64 {
    assert!(
        coalition.len() <= MAX_MASKED_PLAYERS,
        "coalition bitmask supports at most {MAX_MASKED_PLAYERS} players, got {}",
        coalition.len()
    );
    let mut mask = 0u64;
    for (i, &in_s) in coalition.iter().enumerate() {
        mask |= (in_s as u64) << i;
    }
    mask
}

/// The SHAP prediction game over [`ModelOracle::predict_masked`]: the
/// semantics of [`crate::PredictionGame`] (marginal expectation over a
/// background sample) with **no perturbed row ever materialized**.
pub struct MaskedPredictionGame<'a> {
    model: &'a dyn ModelOracle,
    instance: &'a [f64],
    background: &'a Matrix,
}

impl<'a> MaskedPredictionGame<'a> {
    /// Builds the game.
    ///
    /// # Panics
    /// Panics when the background is empty, arities disagree, or the
    /// instance has more than [`MAX_MASKED_PLAYERS`] features.
    pub fn new(model: &'a dyn ModelOracle, instance: &'a [f64], background: &'a Matrix) -> Self {
        assert!(background.rows() > 0, "background must be non-empty");
        assert_eq!(background.cols(), instance.len(), "background/instance arity mismatch");
        assert!(
            instance.len() <= MAX_MASKED_PLAYERS,
            "masked games support at most {MAX_MASKED_PLAYERS} players, got {}",
            instance.len()
        );
        Self { model, instance, background }
    }

    /// The instance being explained.
    pub fn instance(&self) -> &[f64] {
        self.instance
    }
}

impl CooperativeGame for MaskedPredictionGame<'_> {
    fn n_players(&self) -> usize {
        self.instance.len()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        self.values(std::slice::from_ref(&coalition.to_vec()))[0]
    }
}

impl BatchGame for MaskedPredictionGame<'_> {
    fn values(&self, coalitions: &[Vec<bool>]) -> Vec<f64> {
        let b = self.background.rows();
        let d = self.instance.len();
        let masks: Vec<u64> = coalitions
            .iter()
            .enumerate()
            .map(|(c, coalition)| {
                assert_eq!(
                    coalition.len(),
                    d,
                    "coalition {c} has {} members but the game has {d} players",
                    coalition.len()
                );
                coalition_mask(coalition)
            })
            .collect();
        xai_linalg::arena::with_scratch_vec(|preds| {
            self.model.predict_masked(self.instance, self.background, &masks, preds);
            assert_eq!(preds.len(), masks.len() * b, "model returned wrong masked batch size");
            // Per-coalition mean over its block, accumulating in background
            // order — the same summation order as PredictionGame::value and
            // BatchPredictionGame::values.
            (0..masks.len())
                .map(|c| {
                    let mut total = 0.0;
                    for &p in &preds[c * b..(c + 1) * b] {
                        total += p;
                    }
                    total / b as f64
                })
                .collect()
        })
    }
}

/// A [`BatchGame`] wrapper over the shared cross-request [`CoalitionMemo`]
/// — the cross-request generalization of [`crate::CachedGame`]. Lookups
/// and inserts are keyed under this game's [`GameKey`], so any request
/// against the same (model, background, instance) triple shares values,
/// across explainers (Kernel SHAP and permutation walks hit the same
/// entries) and across serve workers.
///
/// Same two-phase structure as `CachedGame`: hits are served under the
/// memo's lock, distinct misses are evaluated *outside* it in one batched
/// round, then published. Racing workers may evaluate the same mask twice;
/// both compute the identical deterministic value, so the duplicate insert
/// is harmless and output never changes.
pub struct MemoGame<'a, G: BatchGame + ?Sized> {
    inner: &'a G,
    memo: &'a CoalitionMemo,
    key: GameKey,
}

impl<'a, G: BatchGame + ?Sized> MemoGame<'a, G> {
    /// Wraps `inner`, memoizing under `key` in `memo`.
    ///
    /// # Panics
    /// Panics above [`MAX_MASKED_PLAYERS`] players (the bitmask width).
    pub fn new(inner: &'a G, memo: &'a CoalitionMemo, key: GameKey) -> Self {
        assert!(
            inner.n_players() <= MAX_MASKED_PLAYERS,
            "coalition memo supports at most {MAX_MASKED_PLAYERS} players"
        );
        Self { inner, memo, key }
    }
}

impl<G: BatchGame + ?Sized> CooperativeGame for MemoGame<'_, G> {
    fn n_players(&self) -> usize {
        self.inner.n_players()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        self.values(std::slice::from_ref(&coalition.to_vec()))[0]
    }
}

impl<G: BatchGame + ?Sized> BatchGame for MemoGame<'_, G> {
    fn values(&self, coalitions: &[Vec<bool>]) -> Vec<f64> {
        let masks: Vec<u64> = coalitions.iter().map(|c| coalition_mask(c)).collect();
        let mut found: Vec<Option<f64>> = vec![None; masks.len()];
        self.memo.get_many(&self.key, &masks, &mut found);

        // Collect distinct misses in first-seen order.
        let mut miss_masks: Vec<u64> = Vec::new();
        let mut miss_coalitions: Vec<Vec<bool>> = Vec::new();
        let mut seen: HashMap<u64, ()> = HashMap::new();
        for ((&mask, coalition), slot) in masks.iter().zip(coalitions).zip(&found) {
            if slot.is_none() && seen.insert(mask, ()).is_none() {
                miss_masks.push(mask);
                miss_coalitions.push(coalition.clone());
            }
        }
        if miss_coalitions.is_empty() {
            return found.into_iter().map(|v| v.expect("all hits")).collect();
        }
        let fresh = self.inner.values(&miss_coalitions);
        let fresh_by_mask: HashMap<u64, f64> =
            miss_masks.iter().copied().zip(fresh.iter().copied()).collect();
        self.memo.insert_many(&self.key, miss_masks.into_iter().zip(fresh));
        found
            .into_iter()
            .zip(&masks)
            .map(|(slot, mask)| slot.unwrap_or_else(|| fresh_by_mask[mask]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPredictionGame;
    use crate::game::{mask_to_coalition, PredictionGame};
    use xai_core::FnOracle;

    fn toy() -> (Vec<f64>, Matrix) {
        let instance = vec![1.0, 5.0, -2.0];
        let background =
            Matrix::from_rows(&[vec![0.0, 0.0, 0.0], vec![2.0, 2.0, 2.0], vec![-1.0, 0.5, 3.0]]);
        (instance, background)
    }

    #[test]
    fn coalition_mask_round_trips() {
        for m in 0..32u64 {
            let c = mask_to_coalition(m as usize, 5);
            assert_eq!(coalition_mask(&c), m);
        }
    }

    #[test]
    fn masked_game_matches_scalar_and_batched_bitwise() {
        let (instance, background) = toy();
        let scalar = |x: &[f64]| (3.0 * x[0] + x[1]) * (x[2] + 0.7).tanh();
        let batched = |m: &Matrix| -> Vec<f64> { m.iter_rows().map(scalar).collect() };
        let oracle = FnOracle::new(3, scalar);
        let g_scalar = PredictionGame::new(&scalar, &instance, &background);
        let g_batch = BatchPredictionGame::new(&batched, &instance, &background);
        let g_masked = MaskedPredictionGame::new(&oracle, &instance, &background);
        let coalitions: Vec<Vec<bool>> = (0..8).map(|m| mask_to_coalition(m, 3)).collect();
        let masked_vals = g_masked.values(&coalitions);
        assert_eq!(masked_vals, g_batch.values(&coalitions));
        for (c, v) in coalitions.iter().zip(&masked_vals) {
            assert_eq!(*v, g_scalar.value(c), "coalition {c:?}");
            assert_eq!(g_masked.value(c), g_scalar.value(c));
        }
        assert_eq!(g_masked.n_players(), 3);
        assert_eq!(g_masked.empty_value(), g_scalar.empty_value());
        assert_eq!(g_masked.grand_value(), g_scalar.grand_value());
    }

    #[test]
    fn memo_game_serves_repeats_bit_identically_across_instances() {
        let (instance, background) = toy();
        let scalar = |x: &[f64]| x[0] * 0.3 + x[1] * x[2];
        let oracle = FnOracle::new(3, scalar);
        let game = MaskedPredictionGame::new(&oracle, &instance, &background);
        let memo = CoalitionMemo::new(256);
        let key = GameKey::derive(42, &background, &instance);
        let coalitions: Vec<Vec<bool>> = [3usize, 5, 3, 7, 5]
            .iter()
            .map(|&m| mask_to_coalition(m, 3))
            .collect();

        let plain = game.values(&coalitions);
        let memoized = MemoGame::new(&game, &memo, key);
        let first = memoized.values(&coalitions);
        assert_eq!(first, plain);
        let stats = memo.stats();
        assert_eq!(stats.entries, 3, "three distinct masks cached");

        // A *new* wrapper (fresh request) over the same key hits the memo.
        let second_wrapper = MemoGame::new(&game, &memo, key);
        let second = second_wrapper.values(&coalitions);
        assert_eq!(second, plain);
        assert_eq!(memo.stats().hits, stats.hits + coalitions.len() as u64);

        // A different instance derives a different key: no cross-talk.
        let other_instance = vec![9.0, 9.0, 9.0];
        let other_key = GameKey::derive(42, &background, &other_instance);
        let other_game = MaskedPredictionGame::new(&oracle, &other_instance, &background);
        let other = MemoGame::new(&other_game, &memo, other_key);
        let other_vals = other.values(&coalitions);
        assert_eq!(other_vals, other_game.values(&coalitions));
        assert_ne!(other_vals, plain);
    }

    #[test]
    fn memo_game_rejects_too_many_players() {
        use crate::game::TableGame;
        struct Wide;
        impl CooperativeGame for Wide {
            fn n_players(&self) -> usize {
                65
            }
            fn value(&self, _c: &[bool]) -> f64 {
                0.0
            }
        }
        impl BatchGame for Wide {}
        let memo = CoalitionMemo::new(16);
        let key = GameKey { model: 0, background: 0, instance: 0 };
        assert!(std::panic::catch_unwind(|| MemoGame::new(&Wide, &memo, key)).is_err());
        // 64 players is fine.
        let table = TableGame::new(2, vec![0.0, 1.0, 2.0, 3.0]);
        let _ = MemoGame::new(&table, &memo, key);
    }
}
