//! Cooperative games over feature coalitions.
//!
//! Shapley-value explanation methods (§2.1.2) differ only in **which game
//! they play** — how the value `v(S)` of a feature coalition `S` is defined
//! — and in **how the Shapley values of that game are approximated**. This
//! module fixes the game abstraction; `exact`, `sampling` and `kernel`
//! implement the estimators; `causal`/`asymmetric` swap in interventional
//! games.

// Row assembly reads two parallel sources per index.
#![allow(clippy::needless_range_loop)]
use xai_rand::rngs::StdRng;
use xai_rand::Rng;
use xai_linalg::Matrix;

/// A transferable-utility cooperative game over `n_players` features.
pub trait CooperativeGame {
    /// Number of players (features).
    fn n_players(&self) -> usize;

    /// Value of a coalition, given as a membership mask of length
    /// [`CooperativeGame::n_players`].
    fn value(&self, coalition: &[bool]) -> f64;

    /// Value of the empty coalition (the baseline).
    fn empty_value(&self) -> f64 {
        self.value(&vec![false; self.n_players()])
    }

    /// Value of the grand coalition (the full prediction).
    fn grand_value(&self) -> f64 {
        self.value(&vec![true; self.n_players()])
    }
}

/// The standard SHAP prediction game (Lundberg & Lee):
/// `v(S) = E[f(x_S, X_{\bar S})]`, the expectation over a background sample
/// of the model output with off-coalition features replaced by background
/// values (the marginal expectation).
/// Generic over the model's function type (defaulting to a plain trait
/// object) so that `Sync`-ness propagates: built from a `Sync` closure the
/// game is itself `Sync` and can feed the parallel estimators
/// ([`crate::permutation_shapley_parallel`],
/// [`crate::kernel_shap_parallel`]).
pub struct PredictionGame<'a, F: ?Sized = dyn Fn(&[f64]) -> f64 + 'a> {
    model: &'a F,
    instance: &'a [f64],
    background: &'a Matrix,
}

impl<'a, F: Fn(&[f64]) -> f64 + ?Sized> PredictionGame<'a, F> {
    /// Builds the game.
    ///
    /// # Panics
    /// Panics when the background is empty or arities disagree.
    pub fn new(model: &'a F, instance: &'a [f64], background: &'a Matrix) -> Self {
        assert!(background.rows() > 0, "background must be non-empty");
        assert_eq!(
            background.cols(),
            instance.len(),
            "background/instance arity mismatch"
        );
        Self { model, instance, background }
    }

    /// The instance being explained.
    pub fn instance(&self) -> &[f64] {
        self.instance
    }
}

impl<F: Fn(&[f64]) -> f64 + ?Sized> CooperativeGame for PredictionGame<'_, F> {
    fn n_players(&self) -> usize {
        self.instance.len()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        assert_eq!(coalition.len(), self.n_players());
        let mut total = 0.0;
        let mut row = vec![0.0; self.instance.len()];
        for b in 0..self.background.rows() {
            let bg = self.background.row(b);
            for j in 0..row.len() {
                row[j] = if coalition[j] { self.instance[j] } else { bg[j] };
            }
            total += (self.model)(&row);
        }
        total / self.background.rows() as f64
    }
}

/// A game defined by an explicit value table over bitmask-indexed
/// coalitions — handy for tests and for textbook games (glove, majority).
pub struct TableGame {
    n: usize,
    values: Vec<f64>,
}

impl TableGame {
    /// Builds from a table of length `2^n`, indexed by coalition bitmask
    /// (bit `i` set ⇔ player `i` in the coalition).
    pub fn new(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), 1usize << n, "table must have 2^n entries");
        Self { n, values }
    }

    /// The classic 3-player glove game: players {0,1} hold left gloves,
    /// player 2 a right glove; a pair is worth 1.
    pub fn glove() -> Self {
        let mut values = vec![0.0; 8];
        for mask in 0..8usize {
            let left = (mask & 1 != 0) || (mask & 2 != 0);
            let right = mask & 4 != 0;
            values[mask] = f64::from(left && right);
        }
        Self::new(3, values)
    }
}

impl CooperativeGame for TableGame {
    fn n_players(&self) -> usize {
        self.n
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        assert_eq!(coalition.len(), self.n);
        let mut mask = 0usize;
        for (i, &in_s) in coalition.iter().enumerate() {
            if in_s {
                mask |= 1 << i;
            }
        }
        self.values[mask]
    }
}

/// Converts a bitmask to a membership vector.
pub fn mask_to_coalition(mask: usize, n: usize) -> Vec<bool> {
    (0..n).map(|i| mask & (1 << i) != 0).collect()
}

/// Draws a uniformly random permutation of `0..n`.
pub fn random_permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_rand::SeedableRng;

    #[test]
    fn prediction_game_interpolates_between_baseline_and_prediction() {
        let model = |x: &[f64]| 3.0 * x[0] + x[1];
        let background = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 2.0]]);
        let instance = [1.0, 5.0];
        let game = PredictionGame::new(&model, &instance, &background);
        // v(∅) = mean(f(bg)) = mean(0, 8) = 4
        assert!((game.empty_value() - 4.0).abs() < 1e-12);
        // v(full) = f(instance) = 8
        assert!((game.grand_value() - 8.0).abs() < 1e-12);
        // v({0}) = mean over bg of f(1, bg1) = mean(3+0, 3+2) = 4
        assert!((game.value(&[true, false]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn glove_game_table() {
        let g = TableGame::glove();
        assert_eq!(g.empty_value(), 0.0);
        assert_eq!(g.grand_value(), 1.0);
        assert_eq!(g.value(&[true, true, false]), 0.0); // two lefts, no pair
        assert_eq!(g.value(&[true, false, true]), 1.0);
    }

    #[test]
    fn mask_roundtrip() {
        assert_eq!(mask_to_coalition(0b101, 3), vec![true, false, true]);
        assert_eq!(mask_to_coalition(0, 2), vec![false, false]);
    }

    #[test]
    fn permutations_are_valid_and_seeded() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_permutation(&mut rng, 10);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        let mut rng2 = StdRng::seed_from_u64(3);
        assert_eq!(p, random_permutation(&mut rng2, 10));
    }
}
