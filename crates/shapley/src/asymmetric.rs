//! Asymmetric Shapley values (Frye, Rowat & Feige, §2.1.3 \[18\]).
//!
//! Vanilla Shapley values average marginal contributions over *all* `n!`
//! feature orderings. ASV incorporates causal knowledge by averaging only
//! over orderings consistent with a causal partial order (ancestors before
//! descendants) — deliberately sacrificing the symmetry axiom to credit
//! causally-upstream features for the effects they transmit.

use crate::game::CooperativeGame;
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;

/// A precedence constraint: `before` must appear before `after` in every
/// admissible ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Precedence {
    /// The causally-upstream player.
    pub before: usize,
    /// The downstream player.
    pub after: usize,
}

fn consistent(perm: &[usize], constraints: &[Precedence]) -> bool {
    let mut pos = vec![0usize; perm.len()];
    for (p, &player) in perm.iter().enumerate() {
        pos[player] = p;
    }
    constraints.iter().all(|c| pos[c.before] < pos[c.after])
}

fn marginals_along(game: &dyn CooperativeGame, perm: &[usize], phi: &mut [f64], weight: f64) {
    let mut coalition = vec![false; perm.len()];
    let mut prev = game.value(&coalition);
    for &player in perm {
        coalition[player] = true;
        let cur = game.value(&coalition);
        phi[player] += weight * (cur - prev);
        prev = cur;
    }
}

/// Exact asymmetric Shapley values by enumerating all admissible orderings.
///
/// # Panics
/// Panics for more than 9 players (enumeration is `n!`) or when the
/// constraints admit no ordering (cyclic precedence).
pub fn asymmetric_shapley_exact(game: &dyn CooperativeGame, constraints: &[Precedence]) -> Vec<f64> {
    let n = game.n_players();
    assert!(n <= 9, "exact ASV enumerates n! orderings; use the sampled variant");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut phi = vec![0.0; n];
    let mut count = 0usize;
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    if consistent(&perm, constraints) {
        marginals_along(game, &perm, &mut phi, 1.0);
        count += 1;
    }
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            if consistent(&perm, constraints) {
                marginals_along(game, &perm, &mut phi, 1.0);
                count += 1;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    assert!(count > 0, "precedence constraints admit no ordering");
    for p in phi.iter_mut() {
        *p /= count as f64;
    }
    phi
}

/// Sampled asymmetric Shapley values via uniformly random linear extensions
/// of the precedence relation (random priority shuffle + Kahn topological
/// sort with shuffled ready-set ordering).
pub fn asymmetric_shapley_sampled(
    game: &dyn CooperativeGame,
    constraints: &[Precedence],
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(samples > 0);
    let n = game.n_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut phi = vec![0.0; n];
    for _ in 0..samples {
        let perm = random_linear_extension(n, constraints, &mut rng);
        marginals_along(game, &perm, &mut phi, 1.0 / samples as f64);
    }
    phi
}

/// Draws a random topological order consistent with the constraints.
fn random_linear_extension(n: usize, constraints: &[Precedence], rng: &mut StdRng) -> Vec<usize> {
    let mut indegree = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in constraints {
        indegree[c.after] += 1;
        out[c.before].push(c.after);
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        ready.shuffle(rng);
        let next = ready.pop().expect("non-empty");
        order.push(next);
        for &child in &out[next] {
            indegree[child] -= 1;
            if indegree[child] == 0 {
                ready.push(child);
            }
        }
    }
    assert_eq!(order.len(), n, "precedence constraints are cyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::TableGame;

    /// Game where players 0 and 1 are perfectly redundant: either alone
    /// yields the full value 1.
    fn redundant_game() -> TableGame {
        let mut values = vec![0.0; 4];
        for mask in 0..4usize {
            values[mask] = f64::from(mask != 0);
        }
        TableGame::new(2, values)
    }

    #[test]
    fn no_constraints_reduces_to_shapley() {
        let game = TableGame::glove();
        let sym = exact_shapley(&game);
        let asv = asymmetric_shapley_exact(&game, &[]);
        for (a, b) in asv.iter().zip(&sym) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn causal_ordering_credits_the_upstream_feature() {
        // Symmetric Shapley splits the redundant credit 50/50; requiring
        // player 0 first gives it everything — the ASV headline behaviour.
        let game = redundant_game();
        let sym = exact_shapley(&game);
        assert!((sym[0] - 0.5).abs() < 1e-12);
        let asv = asymmetric_shapley_exact(&game, &[Precedence { before: 0, after: 1 }]);
        assert!((asv[0] - 1.0).abs() < 1e-12, "upstream gets full credit, got {}", asv[0]);
        assert!(asv[1].abs() < 1e-12);
    }

    #[test]
    fn efficiency_preserved_under_constraints() {
        let game = TableGame::new(3, vec![0.0, 1.0, 0.5, 2.0, 0.2, 1.5, 1.0, 3.0]);
        let asv = asymmetric_shapley_exact(&game, &[Precedence { before: 2, after: 0 }]);
        let total: f64 = asv.iter().sum();
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_matches_exact() {
        let game = TableGame::glove();
        let constraints = [Precedence { before: 0, after: 2 }];
        let exact = asymmetric_shapley_exact(&game, &constraints);
        let sampled = asymmetric_shapley_sampled(&game, &constraints, 4000, 7);
        for (a, b) in sampled.iter().zip(&exact) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cyclic_constraints_rejected_in_sampling() {
        let game = redundant_game();
        let cyc = [
            Precedence { before: 0, after: 1 },
            Precedence { before: 1, after: 0 },
        ];
        asymmetric_shapley_sampled(&game, &cyc, 1, 0);
    }

    #[test]
    #[should_panic(expected = "admit no ordering")]
    fn cyclic_constraints_rejected_in_exact() {
        let game = redundant_game();
        let cyc = [
            Precedence { before: 0, after: 1 },
            Precedence { before: 1, after: 0 },
        ];
        asymmetric_shapley_exact(&game, &cyc);
    }
}
