//! Kernel SHAP (Lundberg & Lee 2017, §2.1.2 \[47\]).
//!
//! Shapley values are recovered as the solution of a *weighted linear
//! regression*: fit an additive model `g(z) = φ₀ + Σ φⱼ zⱼ` to coalition
//! values under the Shapley kernel weights
//! `π(z) = (n−1) / (C(n,|z|)·|z|·(n−|z|))`, subject to the efficiency
//! constraint `φ₀ = v(∅)` and `Σφ = v(N) − v(∅)` (the infinite-weight
//! endpoints). The constraint is eliminated by substitution, leaving an
//! ordinary weighted least-squares problem.
//!
//! Four entry points share one draw/solve core: sequential and parallel,
//! each in a scalar ([`CooperativeGame`]) and a batched
//! ([`crate::batch::BatchGame`]) flavour. Coalitions are always drawn
//! *before* any evaluation and evaluation consumes no randomness, so at
//! the same seed the batched paths produce bit-identical output to their
//! scalar counterparts (given a bit-exact batched model, which the
//! `xai-models` kernels guarantee).

use crate::batch::BatchGame;
use crate::game::{mask_to_coalition, CooperativeGame};
use xai_core::{SampleBudget, XaiError, XaiResult};
use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_linalg::distr::categorical;
use xai_linalg::{weighted_least_squares, Matrix};

/// Configuration for [`kernel_shap`].
#[derive(Clone, Copy, Debug)]
pub struct KernelShapConfig {
    /// Maximum number of coalition evaluations. When `2^n − 2` fits within
    /// this budget every coalition is enumerated (the estimate is then
    /// exact); otherwise coalitions are sampled from the kernel
    /// distribution.
    pub max_coalitions: usize,
    /// Ridge stabilizer for the regression.
    pub ridge: f64,
    /// RNG seed (used only in sampling mode).
    pub seed: u64,
}

impl Default for KernelShapConfig {
    fn default() -> Self {
        Self { max_coalitions: 2048, ridge: 1e-9, seed: 0 }
    }
}

/// Result of a Kernel SHAP run.
#[derive(Clone, Debug)]
pub struct KernelShap {
    /// Shapley value estimates.
    pub phi: Vec<f64>,
    /// Baseline `v(∅)` (the φ₀ of the additive model).
    pub base_value: f64,
    /// Coalitions actually evaluated (excluding the two endpoints).
    pub coalitions_used: usize,
    /// True when every proper coalition was enumerated (exact mode).
    pub exact: bool,
    /// True when the kernel regression was singular at the configured
    /// ridge and the estimate comes from an escalated-ridge fallback
    /// solve. Degraded estimates are finite and efficiency still holds by
    /// construction, but the extra regularization biases the attribution
    /// toward zero — treat it as best-effort.
    pub degraded: bool,
}

/// Shared preamble: endpoint values and the 1-player short circuit.
pub(crate) struct Endpoints {
    pub(crate) v0: f64,
    pub(crate) delta: f64,
}

pub(crate) fn endpoints(game: &dyn CooperativeGame) -> XaiResult<(Endpoints, Option<KernelShap>)> {
    let n = game.n_players();
    assert!(n >= 1, "need at least one player");
    let (v0, vn) = xai_core::catch_model("kernel SHAP endpoint evaluation", || {
        (game.empty_value(), game.grand_value())
    })?;
    if !v0.is_finite() || !vn.is_finite() {
        return Err(XaiError::ModelFault {
            context: format!("kernel SHAP endpoints: v(∅) = {v0}, v(N) = {vn}"),
        });
    }
    let delta = vn - v0;
    let short = (n == 1).then(|| KernelShap {
        phi: vec![delta],
        base_value: v0,
        coalitions_used: 0,
        exact: true,
        degraded: false,
    });
    Ok((Endpoints { v0, delta }, short))
}

/// Rejects non-finite coalition values: the model (not the caller's data)
/// produced them, so they map to [`XaiError::ModelFault`].
fn check_values(values: &[f64]) -> XaiResult<()> {
    if let Some(i) = values.iter().position(|v| !v.is_finite()) {
        return Err(XaiError::ModelFault {
            context: format!("coalition evaluation {i} returned {}", values[i]),
        });
    }
    Ok(())
}

/// Whether the budget admits full enumeration of the proper coalitions.
pub(crate) fn exact_mode(n: usize, max_coalitions: usize) -> bool {
    n < 63 && (1usize << n.min(62)) - 2 <= max_coalitions
}

/// The kernel's coalition-size distribution (unnormalized).
pub(crate) fn size_distribution(n: usize) -> Vec<f64> {
    (1..n).map(|s| (n - 1) as f64 / (s * (n - s)) as f64).collect()
}

/// One sampled-mode draw: a size from the kernel distribution, then a
/// uniform subset of that size by Floyd's algorithm. The kernel weight is
/// absorbed into the sampling density, so each draw gets unit weight.
/// Consumes the exact same RNG sequence wherever it is called from.
fn draw_coalition(rng: &mut StdRng, n: usize, size_weights: &[f64]) -> Vec<bool> {
    let s = 1 + categorical(rng, size_weights);
    let mut coalition = vec![false; n];
    let mut chosen = std::collections::HashSet::with_capacity(s);
    for j in n - s..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    for &i in &chosen {
        coalition[i] = true;
    }
    coalition
}

/// Ridge escalation ladder for degraded solves: when the regression is
/// singular at the configured ridge (degenerate background, duplicate
/// coalition columns), each rung adds more regularization until the
/// system becomes solvable. A solve that needed any rung is flagged
/// degraded.
const RIDGE_LADDER: [f64; 3] = [1e-6, 1e-4, 1e-2];

/// Solves the constraint-eliminated weighted regression:
/// target `t_i = v(z_i) − v0 − z_{i,n−1}·Δ`,
/// design `d_ij = z_ij − z_{i,n−1}` for `j < n−1`, tail player by
/// efficiency. `masks`, `weights` and `values` run in parallel. Returns
/// the estimate plus a degraded flag; fails with
/// [`XaiError::SingularSystem`] only when even the top of the ridge
/// ladder cannot stabilize the system, and with [`XaiError::ModelFault`]
/// when a coalition value is non-finite.
fn solve_kernel_regression(
    n: usize,
    ends: &Endpoints,
    masks: &[Vec<bool>],
    weights: &[f64],
    values: &[f64],
    ridge: f64,
) -> XaiResult<(Vec<f64>, bool)> {
    check_values(values)?;
    let m = masks.len();
    let mut design = Matrix::zeros(m, n - 1);
    let mut target = Vec::with_capacity(m);
    for (row_idx, (coalition, &v)) in masks.iter().zip(values).enumerate() {
        let last = f64::from(coalition[n - 1]);
        target.push(v - ends.v0 - last * ends.delta);
        let drow = design.row_mut(row_idx);
        for j in 0..n - 1 {
            drow[j] = f64::from(coalition[j]) - last;
        }
    }
    let mut solve_err = None;
    let mut solved = None;
    match weighted_least_squares(&design, &target, weights, ridge) {
        Ok(head) => solved = Some((head, false)),
        Err(first) => {
            for rung in RIDGE_LADDER {
                if rung <= ridge {
                    continue;
                }
                if let Ok(head) = weighted_least_squares(&design, &target, weights, rung) {
                    solved = Some((head, true));
                    break;
                }
            }
            solve_err = Some(first);
        }
    }
    let Some((head, degraded)) = solved else {
        return Err(XaiError::SingularSystem {
            context: format!(
                "kernel SHAP regression unsolvable even at ridge {:?}: {}",
                RIDGE_LADDER.last(),
                solve_err.map_or_else(String::new, |e| e.to_string())
            ),
        });
    };
    let mut phi = head;
    let tail = ends.delta - phi.iter().sum::<f64>();
    phi.push(tail);
    Ok((phi, degraded))
}

/// Draws the sequential coalition grid: full enumeration in exact mode,
/// one-stream kernel-distribution sampling otherwise.
fn sequential_coalitions(n: usize, config: KernelShapConfig) -> (Vec<Vec<bool>>, Vec<f64>, bool) {
    let exact = exact_mode(n, config.max_coalitions);
    let mut masks: Vec<Vec<bool>> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    if exact {
        for mask in 1..(1usize << n) - 1 {
            masks.push(mask_to_coalition(mask, n));
            weights.push(shapley_kernel_weight(n, mask.count_ones() as usize));
        }
    } else {
        let size_weights = size_distribution(n);
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.max_coalitions {
            masks.push(draw_coalition(&mut rng, n, &size_weights));
            weights.push(1.0);
        }
    }
    (masks, weights, exact)
}

/// Runs Kernel SHAP on any cooperative game.
///
/// # Panics
/// Panics when the game produces non-finite values or the regression is
/// unrecoverably singular; use [`try_kernel_shap`] for typed errors.
pub fn kernel_shap(game: &dyn CooperativeGame, config: KernelShapConfig) -> KernelShap {
    try_kernel_shap(game, config).expect("kernel SHAP failed; try_kernel_shap recovers this")
}

/// Fallible twin of [`kernel_shap`]: model faults (NaN values, panics
/// during evaluation) and unrecoverably singular regressions come back as
/// [`XaiError`]; a regression that needed ridge escalation comes back
/// `Ok` with `degraded = true`.
pub fn try_kernel_shap(game: &dyn CooperativeGame, config: KernelShapConfig) -> XaiResult<KernelShap> {
    let (ends, short) = endpoints(game)?;
    if let Some(s) = short {
        return Ok(s);
    }
    let n = game.n_players();
    let (masks, weights, exact) = sequential_coalitions(n, config);
    let values: Vec<f64> =
        xai_core::catch_model("kernel SHAP coalition evaluation", || {
            masks.iter().map(|c| game.value(c)).collect()
        })?;
    let (phi, degraded) = solve_kernel_regression(n, &ends, &masks, &weights, &values, config.ridge)?;
    Ok(KernelShap { phi, base_value: ends.v0, coalitions_used: masks.len(), exact, degraded })
}

/// Budgeted twin of [`try_kernel_shap`]: coalition evaluations are
/// metered against `budget` and the estimate is built from whatever
/// prefix of the coalition grid completed — graceful degradation instead
/// of an all-or-nothing timeout.
///
/// Semantics:
/// - the two endpoint evaluations (`v(∅)`, `v(N)`) are mandatory
///   bookkeeping and are **not** metered; the meter counts proper
///   coalition evaluations only;
/// - the coalition stream is the sequential one: in sampling mode an
///   eval cap of `k` consumes exactly the first `k` draws of the
///   `seed_from_u64(config.seed)` stream, so the result is
///   **bit-identical** to an unbudgeted run with `max_coalitions = k`;
/// - in exact mode a cap below `2^n − 2` truncates the enumeration and
///   clears the `exact` flag on the result;
/// - a budget that expires before the *first* coalition evaluation is
///   [`XaiError::BudgetExceeded`] — there is nothing to estimate from.
///
/// Only the sequential scalar path is budgeted; the unified layer
/// rejects budget + parallel/batched plans as
/// [`XaiError::Unsupported`].
pub fn try_kernel_shap_budgeted(
    game: &dyn CooperativeGame,
    config: KernelShapConfig,
    budget: SampleBudget,
) -> XaiResult<KernelShap> {
    let (ends, short) = endpoints(game)?;
    if let Some(s) = short {
        return Ok(s);
    }
    let n = game.n_players();
    let exact = exact_mode(n, config.max_coalitions);
    let planned = if exact { (1usize << n) - 2 } else { config.max_coalitions };
    let mut meter = budget.start();
    let (masks, weights, values) =
        xai_core::catch_model("kernel SHAP coalition evaluation", move || {
            let size_weights = size_distribution(n);
            let mut rng = StdRng::seed_from_u64(config.seed);
            let mut masks: Vec<Vec<bool>> = Vec::new();
            let mut weights: Vec<f64> = Vec::new();
            let mut values: Vec<f64> = Vec::new();
            for i in 0..planned {
                if meter.exhausted() {
                    break;
                }
                let (coalition, weight) = if exact {
                    let mask = i + 1;
                    (mask_to_coalition(mask, n), shapley_kernel_weight(n, mask.count_ones() as usize))
                } else {
                    (draw_coalition(&mut rng, n, &size_weights), 1.0)
                };
                values.push(game.value(&coalition));
                meter.record(1);
                masks.push(coalition);
                weights.push(weight);
            }
            (masks, weights, values)
        })?;
    if values.is_empty() {
        return Err(XaiError::BudgetExceeded {
            context: "kernel SHAP: budget expired before the first coalition evaluation".into(),
            completed: 0,
        });
    }
    let truncated = values.len() < planned;
    let (phi, degraded) = solve_kernel_regression(n, &ends, &masks, &weights, &values, config.ridge)?;
    Ok(KernelShap {
        phi,
        base_value: ends.v0,
        coalitions_used: masks.len(),
        exact: exact && !truncated,
        degraded,
    })
}

/// Kernel SHAP with every coalition of a sampling round materialized into
/// **one batched game call** — the fast path for
/// [`crate::batch::BatchPredictionGame`] over a vectorized model, and the
/// natural host for a [`crate::batch::CachedGame`] memo.
///
/// Coalition draws are identical to [`kernel_shap`] (randomness is drawn
/// up front; evaluation consumes none), so at the same seed the result is
/// bit-identical to the scalar path.
#[deprecated(note = "superseded by the unified explainer layer: use KernelShapMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn kernel_shap_batched(game: &dyn BatchGame, config: KernelShapConfig) -> KernelShap {
    try_kernel_shap_batched(game, config)
        .expect("kernel SHAP failed; try_kernel_shap_batched recovers this")
}

/// Fallible twin of [`kernel_shap_batched`]; see [`try_kernel_shap`].
#[deprecated(note = "superseded by the unified explainer layer: use KernelShapMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_kernel_shap_batched(
    game: &dyn BatchGame,
    config: KernelShapConfig,
) -> XaiResult<KernelShap> {
    let (ends, short) = endpoints(game)?;
    if let Some(s) = short {
        return Ok(s);
    }
    let n = game.n_players();
    let (masks, weights, exact) = sequential_coalitions(n, config);
    let values =
        xai_core::catch_model("kernel SHAP batched evaluation", || game.values(&masks))?;
    let (phi, degraded) = solve_kernel_regression(n, &ends, &masks, &weights, &values, config.ridge)?;
    Ok(KernelShap { phi, base_value: ends.v0, coalitions_used: masks.len(), exact, degraded })
}

/// Coalition evaluations per executor task in [`kernel_shap_parallel`]
/// — also the chunk size of the shard-plan draw grid (DESIGN.md §11).
pub(crate) const COALITIONS_PER_CHUNK: usize = 64;

/// One exact-mode chunk: enumerates the proper coalitions whose global
/// draw indices fall in `range` and evaluates them. Shared verbatim by
/// the parallel path and the shard executor so both produce the same
/// triples for the same chunk.
pub(crate) fn exact_chunk_triples(
    game: &dyn CooperativeGame,
    n: usize,
    range: std::ops::Range<usize>,
) -> Vec<(Vec<bool>, f64, f64)> {
    range
        .map(|i| {
            let mask = i + 1; // skip the empty coalition
            let coalition = mask_to_coalition(mask, n);
            let w = shapley_kernel_weight(n, mask.count_ones() as usize);
            let v = game.value(&coalition);
            (coalition, w, v)
        })
        .collect()
}

/// One sampled-mode chunk: draws `count` coalitions from the chunk's RNG
/// stream and evaluates them. Shared verbatim by the parallel path and
/// the shard executor.
pub(crate) fn sampled_chunk_triples(
    game: &dyn CooperativeGame,
    n: usize,
    size_weights: &[f64],
    count: usize,
    rng: &mut StdRng,
) -> Vec<(Vec<bool>, f64, f64)> {
    (0..count)
        .map(|_| {
            let coalition = draw_coalition(rng, n, size_weights);
            let v = game.value(&coalition);
            (coalition, 1.0, v)
        })
        .collect()
}

/// Kernel SHAP with coalition sampling and evaluation spread across
/// `workers` threads on the `xai_rand` executor.
///
/// In sampling mode each fixed-size chunk draws its coalitions from the
/// stream `child_seed(config.seed, chunk)` and evaluates them; in exact
/// mode the enumeration grid is evaluated in parallel. Triples are
/// concatenated in chunk order before the (sequential) weighted
/// least-squares solve, so the result is bit-identical across worker
/// counts. The sampled-mode draw differs from the sequential
/// [`kernel_shap`] (one stream vs. one stream per chunk); both are
/// unbiased.
#[deprecated(note = "superseded by the unified explainer layer: use KernelShapMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn kernel_shap_parallel(
    game: &(dyn CooperativeGame + Sync),
    config: KernelShapConfig,
    workers: usize,
) -> KernelShap {
    try_kernel_shap_parallel(game, config, workers)
        .expect("kernel SHAP failed; try_kernel_shap_parallel recovers this")
}

/// Fallible twin of [`kernel_shap_parallel`]: a panic inside a worker
/// chunk surfaces as [`XaiError::WorkerPanic`] naming the lowest-indexed
/// panicking chunk (worker-count invariant); other failures as in
/// [`try_kernel_shap`].
#[deprecated(note = "superseded by the unified explainer layer: use KernelShapMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_kernel_shap_parallel(
    game: &(dyn CooperativeGame + Sync),
    config: KernelShapConfig,
    workers: usize,
) -> XaiResult<KernelShap> {
    use xai_rand::parallel::try_par_map_chunks;
    assert!(workers >= 1, "need at least one worker");
    let (ends, short) = endpoints(game)?;
    if let Some(s) = short {
        return Ok(s);
    }
    let n = game.n_players();
    let exact = exact_mode(n, config.max_coalitions);
    // Each chunk returns (mask, weight, value) triples, concatenated in
    // chunk order below.
    let chunks: Vec<Vec<(Vec<bool>, f64, f64)>> = if exact {
        let total_proper = (1usize << n) - 2;
        try_par_map_chunks(total_proper, COALITIONS_PER_CHUNK, config.seed, workers, |_c, range, _rng| {
            exact_chunk_triples(game, n, range)
        })
    } else {
        let size_weights = size_distribution(n);
        let size_weights = &size_weights;
        try_par_map_chunks(config.max_coalitions, COALITIONS_PER_CHUNK, config.seed, workers, |_c, range, rng| {
            sampled_chunk_triples(game, n, size_weights, range.len(), rng)
        })
    }
    .map_err(XaiError::from)?;
    finish_parallel(n, &ends, chunks, config.ridge, exact)
}

/// Parallel Kernel SHAP where **each worker batches its chunk**: a chunk
/// draws (or enumerates) its 64 coalitions, then makes a single
/// [`BatchGame::values`] call for all of them. Same chunk grid, same
/// per-chunk RNG streams and same chunk-order reduction as
/// [`kernel_shap_parallel`] — output is bit-identical to it at every
/// worker count.
#[deprecated(note = "superseded by the unified explainer layer: use KernelShapMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn kernel_shap_batched_parallel(
    game: &(dyn BatchGame + Sync),
    config: KernelShapConfig,
    workers: usize,
) -> KernelShap {
    try_kernel_shap_batched_parallel(game, config, workers)
        .expect("kernel SHAP failed; try_kernel_shap_batched_parallel recovers this")
}

/// Fallible twin of [`kernel_shap_batched_parallel`]; failure semantics as
/// in [`try_kernel_shap_parallel`].
#[deprecated(note = "superseded by the unified explainer layer: use KernelShapMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_kernel_shap_batched_parallel(
    game: &(dyn BatchGame + Sync),
    config: KernelShapConfig,
    workers: usize,
) -> XaiResult<KernelShap> {
    use xai_rand::parallel::try_par_map_chunks;
    assert!(workers >= 1, "need at least one worker");
    let (ends, short) = endpoints(game)?;
    if let Some(s) = short {
        return Ok(s);
    }
    let n = game.n_players();
    let exact = exact_mode(n, config.max_coalitions);
    let chunks: Vec<Vec<(Vec<bool>, f64, f64)>> = if exact {
        let total_proper = (1usize << n) - 2;
        try_par_map_chunks(total_proper, COALITIONS_PER_CHUNK, config.seed, workers, |_c, range, _rng| {
            let masks: Vec<Vec<bool>> =
                range.clone().map(|i| mask_to_coalition(i + 1, n)).collect();
            let values = game.values(&masks);
            masks
                .into_iter()
                .zip(range)
                .zip(values)
                .map(|((coalition, i), v)| {
                    let w = shapley_kernel_weight(n, (i + 1).count_ones() as usize);
                    (coalition, w, v)
                })
                .collect()
        })
    } else {
        let size_weights = size_distribution(n);
        let size_weights = &size_weights;
        try_par_map_chunks(config.max_coalitions, COALITIONS_PER_CHUNK, config.seed, workers, |_c, range, rng| {
            let masks: Vec<Vec<bool>> =
                range.map(|_| draw_coalition(rng, n, size_weights)).collect();
            let values = game.values(&masks);
            masks.into_iter().zip(values).map(|(coalition, v)| (coalition, 1.0, v)).collect()
        })
    }
    .map_err(XaiError::from)?;
    finish_parallel(n, &ends, chunks, config.ridge, exact)
}

/// Concatenates chunk triples in order and solves. Also the shard-merge
/// epilogue: any partition of the chunk grid that concatenates to the
/// same triple sequence reproduces the parallel result bit-for-bit.
pub(crate) fn finish_parallel(
    n: usize,
    ends: &Endpoints,
    chunks: Vec<Vec<(Vec<bool>, f64, f64)>>,
    ridge: f64,
    exact: bool,
) -> XaiResult<KernelShap> {
    let mut masks = Vec::new();
    let mut weights = Vec::new();
    let mut values = Vec::new();
    for (coalition, w, v) in chunks.into_iter().flatten() {
        masks.push(coalition);
        weights.push(w);
        values.push(v);
    }
    let (phi, degraded) = solve_kernel_regression(n, ends, &masks, &weights, &values, ridge)?;
    Ok(KernelShap { phi, base_value: ends.v0, coalitions_used: masks.len(), exact, degraded })
}

/// The Shapley kernel weight for a coalition of size `s` out of `n`.
pub fn shapley_kernel_weight(n: usize, s: usize) -> f64 {
    assert!(s >= 1 && s < n, "kernel weight undefined at the endpoints");
    let binom = binomial(n, s);
    (n - 1) as f64 / (binom * (s * (n - s)) as f64)
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut r = 1.0f64;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
#[allow(deprecated)] // the twins stay under test until removal
mod tests {
    use super::*;
    use crate::batch::{BatchPredictionGame, CachedGame};
    use crate::exact::exact_shapley;
    use crate::game::{PredictionGame, TableGame};

    #[test]
    fn parallel_exact_mode_matches_sequential_and_is_worker_invariant() {
        let game = TableGame::new(
            4,
            (0..16).map(|m: usize| (m.count_ones() as f64).sqrt() + f64::from(m & 1 != 0)).collect(),
        );
        let seq = kernel_shap(&game, KernelShapConfig::default());
        let one = kernel_shap_parallel(&game, KernelShapConfig::default(), 1);
        assert!(one.exact);
        // Exact mode enumerates the same grid, so sequential and parallel
        // agree to solver precision; worker counts agree bit-exactly.
        for (a, b) in one.phi.iter().zip(&seq.phi) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        for workers in [2, 4] {
            let w = kernel_shap_parallel(&game, KernelShapConfig::default(), workers);
            assert_eq!(one.phi, w.phi, "workers={workers} diverged");
        }
    }

    #[test]
    fn parallel_sampling_mode_is_worker_invariant_and_converges() {
        struct Additive;
        impl CooperativeGame for Additive {
            fn n_players(&self) -> usize {
                12
            }
            fn value(&self, coalition: &[bool]) -> f64 {
                coalition.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| (i + 1) as f64).sum()
            }
        }
        let cfg = KernelShapConfig { max_coalitions: 600, ..Default::default() };
        let one = kernel_shap_parallel(&Additive, cfg, 1);
        assert!(!one.exact);
        for workers in [2, 4] {
            let w = kernel_shap_parallel(&Additive, cfg, workers);
            assert_eq!(one.phi, w.phi, "workers={workers} diverged");
        }
        // Additive game: φ_i = i + 1 exactly.
        for (i, p) in one.phi.iter().enumerate() {
            assert!((p - (i + 1) as f64).abs() < 0.2, "phi[{i}] = {p}");
        }
    }

    #[test]
    fn budgeted_prefix_is_bit_identical_to_a_shorter_run() {
        let game = TableGame::glove();
        // Force sampling mode (2^3 - 2 = 6 proper coalitions > cap 4 needs
        // max_coalitions < 6): a 40-coalition run capped at 4 evals must
        // equal an uncapped 4-coalition run draw for draw.
        let long = KernelShapConfig { max_coalitions: 40, seed: 3, ..Default::default() };
        let capped = try_kernel_shap_budgeted(
            &game,
            KernelShapConfig { max_coalitions: 5, seed: 3, ..Default::default() },
            xai_core::SampleBudget::with_max_evals(4),
        )
        .unwrap();
        let short =
            try_kernel_shap(&game, KernelShapConfig { max_coalitions: 4, seed: 3, ..Default::default() })
                .unwrap();
        assert_eq!(capped.phi, short.phi);
        assert_eq!(capped.coalitions_used, 4);
        assert!(!capped.exact);
        // Unlimited budget reproduces the plain run exactly.
        let unlimited =
            try_kernel_shap_budgeted(&game, long, xai_core::SampleBudget::unlimited()).unwrap();
        assert_eq!(unlimited.phi, try_kernel_shap(&game, long).unwrap().phi);
    }

    #[test]
    fn budget_truncates_exact_enumeration_and_clears_the_flag() {
        let game = TableGame::new(
            4,
            (0..16).map(|m: usize| (m.count_ones() as f64).sqrt()).collect(),
        );
        let config = KernelShapConfig::default(); // 14 proper coalitions: exact mode
        let full =
            try_kernel_shap_budgeted(&game, config, xai_core::SampleBudget::unlimited()).unwrap();
        assert!(full.exact);
        assert_eq!(full.phi, try_kernel_shap(&game, config).unwrap().phi);
        let truncated =
            try_kernel_shap_budgeted(&game, config, xai_core::SampleBudget::with_max_evals(9))
                .unwrap();
        assert!(!truncated.exact);
        assert_eq!(truncated.coalitions_used, 9);
        // Zero-eval budgets fail typed: nothing to estimate from.
        let starved =
            try_kernel_shap_budgeted(&game, config, xai_core::SampleBudget::with_max_evals(0));
        assert!(matches!(
            starved,
            Err(XaiError::BudgetExceeded { completed: 0, .. })
        ));
    }

    #[test]
    fn exact_mode_matches_exact_shapley() {
        let game = TableGame::new(4, (0..16).map(|m: usize| (m.count_ones() as f64).sqrt() + f64::from(m & 1 != 0)).collect());
        let exact = exact_shapley(&game);
        let ks = kernel_shap(&game, KernelShapConfig::default());
        assert!(ks.exact);
        for (a, b) in ks.phi.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn efficiency_holds_by_construction() {
        let game = TableGame::glove();
        for max in [4, 6] {
            let ks = kernel_shap(&game, KernelShapConfig { max_coalitions: max, ..Default::default() });
            let total: f64 = ks.phi.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "efficiency violated at budget {max}");
        }
    }

    #[test]
    fn sampling_mode_approximates_exact() {
        // 12 players: 4094 proper coalitions; budget forces sampling.
        struct Additive;
        impl CooperativeGame for Additive {
            fn n_players(&self) -> usize {
                12
            }
            fn value(&self, coalition: &[bool]) -> f64 {
                coalition
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| (i + 1) as f64)
                    .sum()
            }
        }
        let ks = kernel_shap(&Additive, KernelShapConfig { max_coalitions: 1500, seed: 5, ..Default::default() });
        assert!(!ks.exact);
        // Additive game ⇒ φ_i = i + 1 exactly, and the regression recovers it.
        for (i, p) in ks.phi.iter().enumerate() {
            assert!((p - (i + 1) as f64).abs() < 0.25, "phi[{i}] = {p}");
        }
    }

    #[test]
    fn single_player_short_circuit() {
        let game = TableGame::new(1, vec![0.5, 2.0]);
        let ks = kernel_shap(&game, KernelShapConfig::default());
        assert_eq!(ks.phi, vec![1.5]);
        assert_eq!(ks.base_value, 0.5);
        let kb = kernel_shap_batched(&game, KernelShapConfig::default());
        assert_eq!(kb.phi, vec![1.5]);
    }

    #[test]
    fn kernel_weights_symmetric_and_positive() {
        for n in [3usize, 6, 9] {
            for s in 1..n {
                let w = shapley_kernel_weight(n, s);
                assert!(w > 0.0);
                assert!((w - shapley_kernel_weight(n, n - s)).abs() < 1e-12);
            }
        }
        // Extremes get the largest weights (they pin the constraint).
        assert!(shapley_kernel_weight(8, 1) > shapley_kernel_weight(8, 4));
    }

    #[test]
    fn agrees_with_exact_on_prediction_game() {
        let model = |x: &[f64]| x[0] * x[1] + 2.0 * x[2] - x[3];
        let background = Matrix::from_rows(&[
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![0.5, -0.5, 2.0, 0.0],
        ]);
        let instance = [2.0, 1.0, -1.0, 0.5];
        let game = PredictionGame::new(&model, &instance, &background);
        let exact = exact_shapley(&game);
        let ks = kernel_shap(&game, KernelShapConfig::default());
        for (a, b) in ks.phi.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!((ks.base_value - game.empty_value()).abs() < 1e-12);
    }

    #[test]
    fn batched_matches_scalar_bitwise_in_both_modes() {
        // Exact mode (table game through the default batch loop).
        let table = TableGame::new(
            4,
            (0..16).map(|m: usize| (m.count_ones() as f64).powi(2) * 0.31 - 0.4).collect(),
        );
        let cfg = KernelShapConfig::default();
        assert_eq!(kernel_shap(&table, cfg).phi, kernel_shap_batched(&table, cfg).phi);

        // Sampling mode over a prediction game: scalar vs. materialized.
        let model = |x: &[f64]| (x[0] - 0.3 * x[1]).tanh() + 0.25 * x[2] * x[2];
        let batched_model = |m: &Matrix| -> Vec<f64> { m.iter_rows().map(model).collect() };
        let background = Matrix::from_rows(&[
            vec![0.1, -0.2, 0.5],
            vec![1.0, 0.4, -1.1],
            vec![-0.6, 2.0, 0.0],
        ]);
        let instance = [0.9, -1.4, 2.2];
        let scalar_game = PredictionGame::new(&model, &instance, &background);
        let batch_game = BatchPredictionGame::new(&batched_model, &instance, &background);
        let cfg = KernelShapConfig { max_coalitions: 5, seed: 9, ..Default::default() };
        let a = kernel_shap(&scalar_game, cfg);
        let b = kernel_shap_batched(&batch_game, cfg);
        assert!(!a.exact);
        assert_eq!(a.phi, b.phi);
        assert_eq!(a.base_value, b.base_value);

        // ... and through the memo cache, which must not perturb bits. A
        // second identical run replays the same draws entirely from cache.
        let cached = CachedGame::new(&batch_game);
        let c = kernel_shap_batched(&cached, cfg);
        assert_eq!(a.phi, c.phi);
        let (_, misses_first) = cached.stats();
        let c2 = kernel_shap_batched(&cached, cfg);
        assert_eq!(a.phi, c2.phi);
        let (hits, misses) = cached.stats();
        assert_eq!(misses, misses_first, "second run must be served from cache");
        assert!(hits >= 5 + 2, "5 coalitions + 2 endpoints must all hit");
    }

    #[test]
    fn batched_parallel_matches_scalar_parallel_bitwise() {
        let model = |x: &[f64]| (0.7 * x[0] + x[1] * x[2]).sin();
        let batched_model = |m: &Matrix| -> Vec<f64> { m.iter_rows().map(model).collect() };
        let background =
            Matrix::from_rows(&[vec![0.0, 0.3, -0.1], vec![0.8, -0.9, 1.2]]);
        let instance = [1.5, 0.2, -0.7];
        let scalar_game = PredictionGame::new(&model, &instance, &background);
        let batch_game = BatchPredictionGame::new(&batched_model, &instance, &background);
        let cfg = KernelShapConfig { max_coalitions: 5, seed: 4, ..Default::default() };
        let reference = kernel_shap_parallel(&scalar_game, cfg, 1);
        for workers in [1, 2, 4] {
            let b = kernel_shap_batched_parallel(&batch_game, cfg, workers);
            assert_eq!(reference.phi, b.phi, "workers={workers}");
        }
    }
}
