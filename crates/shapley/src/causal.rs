//! Causal Shapley values (Heskes et al., §2.1.3 \[30\]).
//!
//! The marginal-expectation game of Kernel SHAP breaks feature
//! correlations: conditioning on a coalition by *replacement* ignores what
//! setting those features would do to the rest of the world. Causal Shapley
//! values replace the game with the **interventional** value
//! `v(S) = E[f(X) | do(X_S = x_S)]` computed on a structural causal model,
//! so downstream features respond to the intervention while upstream ones
//! do not. All Shapley axioms (including symmetry) are kept; only the game
//! changes.

use crate::game::CooperativeGame;
use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;
use xai_data::scm::{Intervention, LabeledScm};

/// The interventional game over an SCM's feature nodes.
///
/// Uses common random numbers: one pool of exogenous-noise draws is shared
/// by every coalition evaluation, so coalition values are smooth in `S` and
/// the exact-Shapley combination is internally consistent.
pub struct CausalGame<'a> {
    model: &'a dyn Fn(&[f64]) -> f64,
    labeled: &'a LabeledScm,
    instance: &'a [f64],
    noise_pool: Vec<Vec<f64>>,
}

impl<'a> CausalGame<'a> {
    /// Builds the game with `n_samples` Monte-Carlo noise draws.
    pub fn new(
        model: &'a dyn Fn(&[f64]) -> f64,
        labeled: &'a LabeledScm,
        instance: &'a [f64],
        n_samples: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            instance.len(),
            labeled.feature_nodes.len(),
            "instance arity must match the SCM's feature count"
        );
        assert!(n_samples > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let noise_pool = (0..n_samples).map(|_| labeled.scm.sample_noise(&mut rng)).collect();
        Self { model, labeled, instance, noise_pool }
    }
}

impl CooperativeGame for CausalGame<'_> {
    fn n_players(&self) -> usize {
        self.instance.len()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        assert_eq!(coalition.len(), self.n_players());
        let interventions: Vec<Intervention> = coalition
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(f, _)| Intervention {
                node: self.labeled.feature_nodes[f],
                value: self.instance[f],
            })
            .collect();
        let mut total = 0.0;
        let mut features = vec![0.0; self.instance.len()];
        for noise in &self.noise_pool {
            let world = self.labeled.scm.evaluate(noise, &interventions);
            for (slot, &node) in features.iter_mut().zip(&self.labeled.feature_nodes) {
                *slot = world[node];
            }
            total += (self.model)(&features);
        }
        total / self.noise_pool.len() as f64
    }
}

/// Exact causal Shapley values (enumeration over feature coalitions).
pub fn causal_shapley(
    model: &dyn Fn(&[f64]) -> f64,
    labeled: &LabeledScm,
    instance: &[f64],
    n_samples: usize,
    seed: u64,
) -> Vec<f64> {
    let game = CausalGame::new(model, labeled, instance, n_samples, seed);
    crate::exact::exact_shapley(&game)
}

/// Total, direct and (by subtraction) indirect effects per feature.
#[derive(Clone, Debug)]
pub struct EffectDecomposition {
    /// `E[f | do(X_i = x_i)] − E[f]`: the feature's full interventional
    /// effect, mediation included.
    pub total: Vec<f64>,
    /// The effect with mediators frozen at their natural values: the model
    /// input's `i`-th slot is set to `x_i` but the world is *not*
    /// re-propagated.
    pub direct: Vec<f64>,
    /// `total − direct`: what flows through causal descendants.
    pub indirect: Vec<f64>,
}

/// Decomposes each feature's singleton effect into direct and indirect
/// parts (the split causal Shapley values are designed to expose, §2.1.3).
pub fn effect_decomposition(
    model: &dyn Fn(&[f64]) -> f64,
    labeled: &LabeledScm,
    instance: &[f64],
    n_samples: usize,
    seed: u64,
) -> EffectDecomposition {
    let game = CausalGame::new(model, labeled, instance, n_samples, seed);
    let base = game.empty_value();
    let n = instance.len();
    let mut total = Vec::with_capacity(n);
    let mut direct = Vec::with_capacity(n);
    for i in 0..n {
        let mut coalition = vec![false; n];
        coalition[i] = true;
        total.push(game.value(&coalition) - base);

        // Direct effect: worlds evolve naturally (no intervention), but the
        // model sees x_i in slot i — mediation is blocked at the model
        // boundary.
        let mut acc = 0.0;
        let mut features = vec![0.0; n];
        for noise in &game.noise_pool {
            let world = labeled.scm.evaluate(noise, &[]);
            for (slot, &node) in features.iter_mut().zip(&labeled.feature_nodes) {
                *slot = world[node];
            }
            features[i] = instance[i];
            acc += model(&features);
        }
        direct.push(acc / game.noise_pool.len() as f64 - base);
    }
    let indirect = total.iter().zip(&direct).map(|(t, d)| t - d).collect();
    EffectDecomposition { total, direct, indirect }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::PredictionGame;
    use xai_data::synth::credit_scm;
    use xai_linalg::Matrix;

    /// Model that looks only at savings (feature 2 of the credit SCM).
    fn savings_only() -> impl Fn(&[f64]) -> f64 {
        |x: &[f64]| x[2]
    }

    #[test]
    fn efficiency_with_common_random_numbers() {
        let labeled = credit_scm();
        let model = savings_only();
        let instance = [14.0, 6.0, 5.0];
        let phi = causal_shapley(&model, &labeled, &instance, 400, 3);
        let game = CausalGame::new(&model, &labeled, &instance, 400, 3);
        let gap = phi.iter().sum::<f64>() - (game.grand_value() - game.empty_value());
        assert!(gap.abs() < 1e-10, "efficiency gap {gap}");
    }

    #[test]
    fn upstream_feature_gets_causal_credit_marginal_gives_none() {
        // The model reads only savings; education influences savings only
        // through the causal chain. Causal Shapley credits education;
        // the marginal (replacement) game gives it nothing.
        let labeled = credit_scm();
        let model = savings_only();
        let instance = [16.0, 7.5, 7.0]; // high education, high savings
        let causal = causal_shapley(&model, &labeled, &instance, 1500, 5);
        assert!(
            causal[0] > 0.3,
            "education must receive causal credit, got {}",
            causal[0]
        );

        // Marginal game on an SCM-sampled background.
        let mut rng = xai_rand::rngs::StdRng::seed_from_u64(9);
        let (xs, _) = labeled.sample_examples(&mut rng, 300);
        let background = Matrix::from_rows(&xs);
        let mgame = PredictionGame::new(&model, &instance, &background);
        let marginal = exact_shapley(&mgame);
        assert!(
            marginal[0].abs() < 1e-9,
            "marginal Shapley cannot see the indirect path, got {}",
            marginal[0]
        );
    }

    #[test]
    fn effect_decomposition_splits_education() {
        let labeled = credit_scm();
        let model = savings_only();
        let instance = [16.0, 7.5, 7.0];
        let dec = effect_decomposition(&model, &labeled, &instance, 1500, 7);
        // Education's effect on a savings-only model is purely indirect.
        assert!(dec.direct[0].abs() < 0.05, "direct education effect {}", dec.direct[0]);
        assert!(dec.indirect[0] > 0.3, "indirect education effect {}", dec.indirect[0]);
        // Savings' effect is purely direct (it has no descendants among features).
        assert!((dec.total[2] - dec.direct[2]).abs() < 0.05);
        // total = direct + indirect by construction.
        for i in 0..3 {
            assert!((dec.total[i] - dec.direct[i] - dec.indirect[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn intervening_downstream_does_not_move_upstream() {
        let labeled = credit_scm();
        // Model reads education only.
        let model = |x: &[f64]| x[0];
        let instance = [10.0, 2.0, 1.0];
        let game = CausalGame::new(&model, &labeled, &instance, 500, 11);
        // do(savings) cannot change education.
        let v_savings = game.value(&[false, false, true]);
        let v_empty = game.empty_value();
        assert!((v_savings - v_empty).abs() < 1e-9);
        // do(education) pins it exactly.
        let v_edu = game.value(&[true, false, false]);
        assert!((v_edu - 10.0).abs() < 1e-9);
    }
}
