//! Conditional (on-manifold) expectation games: the observational side of
//! the conditioning debate.
//!
//! Kernel SHAP's marginal game `E[f(x_S, X_{\bar S})]` breaks feature
//! correlations — it evaluates the model on Frankenstein rows that never
//! occur (§2.1.2's critique via \[40\], §2.1.3's motivation for causal
//! variants). The *conditional* game `E[f(X) | X_S ≈ x_S]` stays on the
//! data manifold by averaging over the background rows whose coalition
//! features are **close to the instance's** (an empirical k-NN
//! conditional, the standard non-parametric estimator).
//!
//! The signature behaviour — asserted in tests and experiment E33 —
//! is that correlated-but-model-unused features receive credit under
//! conditional semantics (they proxy for their used neighbours) and zero
//! under marginal semantics.

use crate::game::CooperativeGame;
use xai_linalg::Matrix;

/// The empirical-conditional game.
pub struct ConditionalGame<'a> {
    model: &'a dyn Fn(&[f64]) -> f64,
    instance: &'a [f64],
    background: &'a Matrix,
    /// Per-feature scales for the conditioning distance.
    scales: Vec<f64>,
    /// Neighbours averaged per coalition.
    k: usize,
}

impl<'a> ConditionalGame<'a> {
    /// Builds the game; `k` is the number of nearest background rows
    /// averaged per coalition (the conditional sample).
    pub fn new(
        model: &'a dyn Fn(&[f64]) -> f64,
        instance: &'a [f64],
        background: &'a Matrix,
        k: usize,
    ) -> Self {
        assert!(background.rows() >= k && k >= 1);
        assert_eq!(background.cols(), instance.len());
        let scales = (0..background.cols())
            .map(|j| {
                let s = xai_linalg::stats::std_dev(&background.col(j));
                if s > 1e-9 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { model, instance, background, scales, k }
    }
}

impl CooperativeGame for ConditionalGame<'_> {
    fn n_players(&self) -> usize {
        self.instance.len()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        assert_eq!(coalition.len(), self.n_players());
        let members: Vec<usize> = (0..coalition.len()).filter(|&j| coalition[j]).collect();
        if members.is_empty() {
            // E[f(X)] over the full background.
            let total: f64 = (0..self.background.rows())
                .map(|i| (self.model)(self.background.row(i)))
                .sum();
            return total / self.background.rows() as f64;
        }
        // k nearest background rows in the coalition's subspace.
        let mut order: Vec<usize> = (0..self.background.rows()).collect();
        let dist = |i: usize| -> f64 {
            members
                .iter()
                .map(|&j| {
                    let d = (self.background[(i, j)] - self.instance[j]) / self.scales[j];
                    d * d
                })
                .sum()
        };
        order.sort_by(|&a, &b| dist(a).partial_cmp(&dist(b)).expect("NaN distance").then(a.cmp(&b)));
        // Average the model over the conditional neighbours, with the
        // coalition features pinned to the instance (pure conditioning
        // would leave them as-is; pinning removes residual mismatch).
        let mut probe = vec![0.0; self.instance.len()];
        let mut total = 0.0;
        for &i in order.iter().take(self.k) {
            probe.copy_from_slice(self.background.row(i));
            for &j in &members {
                probe[j] = self.instance[j];
            }
            total += (self.model)(&probe);
        }
        total / self.k as f64
    }
}

/// Exact conditional Shapley values (coalition enumeration).
pub fn conditional_shapley(
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    background: &Matrix,
    k: usize,
) -> Vec<f64> {
    crate::exact::exact_shapley(&ConditionalGame::new(model, instance, background, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::PredictionGame;
    use xai_data::synth::correlated_gaussian;

    /// Model reads only x0; x1 is strongly correlated with x0; x2 weakly.
    fn setup() -> (xai_data::Dataset, impl Fn(&[f64]) -> f64) {
        let data = correlated_gaussian(1500, &[2.0, 0.0, 0.0], 0.85, 0.0, 7);
        (data, |x: &[f64]| x[0])
    }

    #[test]
    fn correlated_proxy_gets_credit_conditionally_but_not_marginally() {
        let (data, model) = setup();
        // An instance with clearly positive x0 (and, by correlation, x1).
        let idx = (0..data.n_rows()).find(|&i| data.row(i)[0] > 1.5 && data.row(i)[1] > 1.0).unwrap();
        let instance = data.row(idx);
        let background = data.x().select_rows(&(0..400).collect::<Vec<_>>());

        let marginal = exact_shapley(&PredictionGame::new(&model, instance, &background));
        let conditional = conditional_shapley(&model, instance, &background, 25);

        // Marginal: all credit on x0, none on the proxy.
        assert!(marginal[1].abs() < 1e-9, "marginal proxy credit {}", marginal[1]);
        // Conditional: the proxy earns real credit.
        assert!(
            conditional[1] > 0.1,
            "conditional proxy credit {} (x0 gets {})",
            conditional[1],
            conditional[0]
        );
        // And x0 still earns the most.
        assert!(conditional[0] > conditional[1]);
    }

    #[test]
    fn efficiency_holds_for_the_conditional_game() {
        let (data, model) = setup();
        let instance = data.row(3);
        let background = data.x().select_rows(&(0..300).collect::<Vec<_>>());
        let game = ConditionalGame::new(&model, instance, &background, 20);
        let phi = conditional_shapley(&model, instance, &background, 20);
        let gap = phi.iter().sum::<f64>() - (game.grand_value() - game.empty_value());
        assert!(gap.abs() < 1e-9, "efficiency gap {gap}");
    }

    #[test]
    fn grand_coalition_recovers_the_prediction() {
        let (data, model) = setup();
        let instance = data.row(5);
        let background = data.x().select_rows(&(0..200).collect::<Vec<_>>());
        let game = ConditionalGame::new(&model, instance, &background, 10);
        assert!((game.grand_value() - model(instance)).abs() < 1e-9);
    }

    #[test]
    fn independent_features_make_conditional_equal_marginal() {
        let data = correlated_gaussian(2000, &[1.5, -1.0, 0.5], 0.0, 0.0, 9);
        let model = |x: &[f64]| 1.5 * x[0] - 1.0 * x[1] + 0.5 * x[2];
        let instance = data.row(11);
        let background = data.x().select_rows(&(0..600).collect::<Vec<_>>());
        let marginal = exact_shapley(&PredictionGame::new(&model, instance, &background));
        // Large k washes out neighbour noise under independence.
        let conditional = conditional_shapley(&model, instance, &background, 300);
        for (m, c) in marginal.iter().zip(&conditional) {
            assert!((m - c).abs() < 0.2, "marginal {m} vs conditional {c}");
        }
    }
}
