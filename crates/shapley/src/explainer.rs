//! Unified-layer `Explainer` impls for the Shapley family (DESIGN.md §9):
//! exact enumeration, permutation sampling, Kernel SHAP and TreeSHAP, all
//! driven through `xai_core::Explainer::explain` with one `RunConfig`.
//!
//! Dispatch contract (enforced by `tests/unified_api.rs`): each
//! `(workers, batched)` combination selects exactly the legacy twin that
//! previously served it, so the trait path is bit-identical to the old
//! free functions at the same seed. A `SampleBudget` is honoured by
//! permutation sampling and by Kernel SHAP (each on the sequential
//! scalar path only — budgeted Kernel SHAP at eval cap `k` equals an
//! unbudgeted run with `max_coalitions = k` bit for bit); deterministic
//! enumerators (exact Shapley, TreeSHAP) and budget + parallel/batched
//! combinations report [`XaiError::Unsupported`] rather than silently
//! ignoring the cap.
// This module is the blessed call site of the deprecated legacy twins:
// the unified dispatch below is what replaces them.
#![allow(deprecated)]

use xai_core::shard::{
    chunks_json, flatten_chunks, index_field, num_field, nums_field, wire_error, DrawGrid,
    ShardableExplainer,
};
use xai_core::taxonomy::method_card;
use xai_core::{
    catch_model, validate, DegradationPolicy, ExplainRequest, Explainer, Explanation,
    FeatureAttribution, Json, MethodCard, ModelOracle, XaiError, XaiResult,
};
use xai_linalg::Matrix;
use xai_models::{DecisionTree, Gbdt, RandomForest};
use xai_rand::child_seed;
use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;

use crate::batch::{BatchGame, BatchPredictionGame};
use crate::exact::{exact_shapley, MAX_EXACT_PLAYERS};
use crate::game::PredictionGame;
use crate::masked::{MaskedPredictionGame, MemoGame, MAX_MASKED_PLAYERS};
use crate::kernel::{
    self, try_kernel_shap, try_kernel_shap_batched, try_kernel_shap_batched_parallel,
    try_kernel_shap_budgeted, try_kernel_shap_parallel, KernelShap, KernelShapConfig,
};
use crate::sampling::{
    self, try_permutation_shapley, try_permutation_shapley_batched,
    try_permutation_shapley_batched_parallel, try_permutation_shapley_budgeted,
    try_permutation_shapley_parallel,
};
use crate::tree::{forest_shap, gbdt_shap, tree_expected_value, tree_shap};

/// Feature names from the request schema when the arity matches, else
/// positional `x{j}` names (the request's dataset may describe a
/// different space than a caller-supplied background).
fn names_for(req: &ExplainRequest<'_>, n: usize) -> Vec<String> {
    let names = req.feature_names();
    if names.len() == n {
        names
    } else {
        (0..n).map(|j| format!("x{j}")).collect()
    }
}

/// Baseline (mean background prediction) and instance prediction under
/// panic isolation, with model-fault checks on both.
fn endpoints(
    model: &dyn ModelOracle,
    instance: &[f64],
    background: &Matrix,
) -> XaiResult<(f64, f64)> {
    let (base, pred) = catch_model("Shapley endpoint evaluation", || {
        let preds = model.predict_batch(background);
        let base = preds.iter().sum::<f64>() / preds.len().max(1) as f64;
        (base, model.predict(instance))
    })?;
    if !base.is_finite() || !pred.is_finite() {
        return Err(XaiError::ModelFault {
            context: format!("Shapley endpoints evaluated to base {base}, prediction {pred}"),
        });
    }
    Ok((base, pred))
}

/// Runs `f` over the coalition game a `batched: true` plan selects: the
/// zero-copy [`MaskedPredictionGame`] whenever the arity fits the `u64`
/// coalition bitmask (wrapped in a [`MemoGame`] when the request carries a
/// shared memo handle), and the materializing [`BatchPredictionGame`]
/// above [`MAX_MASKED_PLAYERS`] features, where no bitmask exists. All
/// three games are bit-identical at every seed and worker count, so this
/// choice is pure mechanics — see `crates/shapley/src/batch.rs` docs.
fn with_batched_game<R>(
    model: &dyn ModelOracle,
    instance: &[f64],
    background: &Matrix,
    memo: Option<xai_core::MemoHandle<'_>>,
    f: impl FnOnce(&(dyn BatchGame + Sync)) -> R,
) -> R {
    if instance.len() <= MAX_MASKED_PLAYERS {
        let game = MaskedPredictionGame::new(model, instance, background);
        match memo {
            Some(h) => {
                let key = xai_core::GameKey::derive(h.model_fingerprint, background, instance);
                f(&MemoGame::new(&game, h.memo, key))
            }
            None => f(&game),
        }
    } else {
        let fb = |m: &Matrix| model.predict_batch(m);
        let game = BatchPredictionGame::new(&fb, instance, background);
        f(&game)
    }
}

fn reject_budget(method: &str, req: &ExplainRequest<'_>) -> XaiResult<()> {
    if req.plan.budgeted() {
        return Err(XaiError::Unsupported {
            context: format!("{method} has no budgeted execution path; clear RunConfig::budget"),
        });
    }
    Ok(())
}

/// Serializes a value vector for a shard partial, mapping non-finite
/// entries (the model's fault, not the wire's) to a typed error before
/// they could degrade to JSON `null`s.
fn shard_nums(what: &str, vals: &[f64]) -> XaiResult<Json> {
    if let Some(i) = vals.iter().position(|v| !v.is_finite()) {
        return Err(XaiError::ModelFault { context: format!("{what}: value {i} is {}", vals[i]) });
    }
    Ok(Json::nums(vals))
}

/// Exact Shapley values by coalition enumeration (§2.1.2) through the
/// unified layer. Enumeration is deterministic, so `seed`, `workers` and
/// `batched` do not change the result.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactShapleyMethod;

impl Explainer for ExactShapleyMethod {
    fn card(&self) -> MethodCard {
        method_card("Exact Shapley")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("exact Shapley", req)?;
        let instance = req.need_instance("exact Shapley")?;
        let background = req.background_or_data();
        validate::background("exact Shapley", instance, background)?;
        let n = instance.len();
        if n > MAX_EXACT_PLAYERS {
            return Err(XaiError::Unsupported {
                context: format!(
                    "exact Shapley enumerates 2^n coalitions; {n} features exceeds the cap of {MAX_EXACT_PLAYERS}"
                ),
            });
        }
        let f = |x: &[f64]| model.predict(x);
        let game = PredictionGame::new(&f, instance, background);
        let phi = catch_model("exact Shapley enumeration", || exact_shapley(&game))?;
        validate::finite_slice("exact Shapley attribution", &phi).map_err(|_| {
            XaiError::ModelFault { context: "exact Shapley produced non-finite values".into() }
        })?;
        let (base, pred) = endpoints(model, instance, background)?;
        Ok(Explanation::Attribution(FeatureAttribution::new(
            names_for(req, n),
            phi,
            base,
            pred,
        )))
    }
}

/// Permutation-sampling Monte-Carlo Shapley (§2.1.2) through the unified
/// layer; the one Shapley estimator that honours `RunConfig::budget`
/// (sequential scalar path only, matching the legacy budgeted twin).
#[derive(Clone, Copy, Debug)]
pub struct PermutationShapleyMethod {
    /// Permutation walks to draw.
    pub permutations: usize,
}

impl Default for PermutationShapleyMethod {
    fn default() -> Self {
        Self { permutations: 200 }
    }
}

impl Explainer for PermutationShapleyMethod {
    fn card(&self) -> MethodCard {
        method_card("Permutation sampling Shapley")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        let instance = req.need_instance("permutation Shapley")?;
        let background = req.background_or_data();
        validate::background("permutation Shapley", instance, background)?;
        let plan = req.plan;
        let f = |x: &[f64]| model.predict(x);
        let sampled = if plan.budgeted() {
            if plan.parallel() || plan.batched {
                return Err(XaiError::Unsupported {
                    context: "budgeted permutation Shapley is sequential and scalar; \
                              set workers = 1 and batched = false"
                        .into(),
                });
            }
            let game = PredictionGame::new(&f, instance, background);
            try_permutation_shapley_budgeted(&game, self.permutations, plan.seed, plan.budget)?
        } else {
            match (plan.parallel(), plan.batched) {
                (false, false) => {
                    let game = PredictionGame::new(&f, instance, background);
                    try_permutation_shapley(&game, self.permutations, plan.seed)?
                }
                (false, true) => with_batched_game(model, instance, background, req.memo, |game| {
                    try_permutation_shapley_batched(game, self.permutations, plan.seed)
                })?,
                (true, false) => {
                    let game = PredictionGame::new(&f, instance, background);
                    try_permutation_shapley_parallel(
                        &game,
                        self.permutations,
                        plan.seed,
                        plan.workers,
                    )?
                }
                (true, true) => with_batched_game(model, instance, background, req.memo, |game| {
                    try_permutation_shapley_batched_parallel(
                        game,
                        self.permutations,
                        plan.seed,
                        plan.workers,
                    )
                })?,
            }
        };
        let (base, pred) = endpoints(model, instance, background)?;
        Ok(Explanation::Attribution(FeatureAttribution::new(
            names_for(req, sampled.phi.len()),
            sampled.phi,
            base,
            pred,
        )))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl PermutationShapleyMethod {
    /// Rebuilds the method from its canonical shard-config JSON.
    pub fn from_config_json(config: &Json) -> XaiResult<Self> {
        let permutations = index_field(config, "permutations", "permutation Shapley config")?;
        if permutations == 0 {
            return Err(wire_error("permutation Shapley config: permutations must be >= 1"));
        }
        Ok(Self { permutations })
    }
}

impl ShardableExplainer for PermutationShapleyMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        if req.plan.budgeted() {
            return Err(XaiError::Unsupported {
                context: "budgeted permutation Shapley is sequential and scalar; \
                          sharding covers the unbudgeted parallel path only"
                    .into(),
            });
        }
        req.need_instance("permutation Shapley")?;
        Ok(DrawGrid { total_draws: self.permutations, chunk_size: sampling::PERMS_PER_CHUNK })
    }

    fn explain_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let instance = req.need_instance("permutation Shapley")?;
        let background = req.background_or_data();
        validate::background("permutation Shapley", instance, background)?;
        let grid = self.draw_grid(req)?;
        let f = |x: &[f64]| model.predict(x);
        let game = PredictionGame::new(&f, instance, background);
        let n = instance.len();
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let mut rng = StdRng::seed_from_u64(child_seed(req.plan.seed, c as u64));
            let (sum, sum_sq) =
                sampling::scalar_chunk_sums(&game, n, grid.chunk_range(c).len(), &mut rng);
            out.push(Json::obj(vec![
                ("sum", shard_nums("permutation Shapley chunk sums", &sum)?),
                ("sum_sq", shard_nums("permutation Shapley chunk sums", &sum_sq)?),
            ]));
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "permutation Shapley merge";
        let instance = req.need_instance("permutation Shapley")?;
        let background = req.background_or_data();
        validate::background("permutation Shapley", instance, background)?;
        let grid = self.draw_grid(req)?;
        let flat = flatten_chunks(&partials, WHAT)?;
        if flat.len() != grid.n_chunks() {
            return Err(wire_error(format!(
                "{WHAT}: got {} chunk partials for a {}-chunk grid",
                flat.len(),
                grid.n_chunks()
            )));
        }
        let chunk_sums = flat
            .iter()
            .map(|c| {
                Ok((nums_field(c, "sum", WHAT)?, nums_field(c, "sum_sq", WHAT)?))
            })
            .collect::<XaiResult<Vec<_>>>()?;
        let sampled = sampling::merge_chunk_sums(chunk_sums, self.permutations)?;
        let (base, pred) = endpoints(model, instance, background)?;
        Ok(Explanation::Attribution(FeatureAttribution::new(
            names_for(req, sampled.phi.len()),
            sampled.phi,
            base,
            pred,
        )))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![("permutations", Json::Num(self.permutations as f64))])
    }
}

/// Kernel SHAP weighted regression (§2.1.2) through the unified layer.
/// `RunConfig::degradation == Strict` refuses ridge-escalated solves that
/// the legacy path returned with a `degraded` flag.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelShapMethod {
    /// Coalition budget / ridge / seed defaults; `RunConfig::seed`
    /// overrides the seed at explain time.
    pub config: KernelShapConfig,
}

impl KernelShapMethod {
    /// Runs the configured dispatch and returns the raw estimator output.
    fn run(
        &self,
        model: &dyn ModelOracle,
        instance: &[f64],
        background: &Matrix,
        req: &ExplainRequest<'_>,
    ) -> XaiResult<KernelShap> {
        let plan = &req.plan;
        let config = KernelShapConfig { seed: plan.seed, ..self.config };
        let f = |x: &[f64]| model.predict(x);
        if plan.budgeted() {
            if plan.parallel() || plan.batched {
                return Err(XaiError::Unsupported {
                    context: "budgeted Kernel SHAP is sequential and scalar; \
                              set workers = 1 and batched = false"
                        .into(),
                });
            }
            let game = PredictionGame::new(&f, instance, background);
            return try_kernel_shap_budgeted(&game, config, plan.budget);
        }
        match (plan.parallel(), plan.batched) {
            (false, false) => {
                let game = PredictionGame::new(&f, instance, background);
                try_kernel_shap(&game, config)
            }
            (false, true) => with_batched_game(model, instance, background, req.memo, |game| {
                try_kernel_shap_batched(game, config)
            }),
            (true, false) => {
                let game = PredictionGame::new(&f, instance, background);
                try_kernel_shap_parallel(&game, config, plan.workers)
            }
            (true, true) => with_batched_game(model, instance, background, req.memo, |game| {
                try_kernel_shap_batched_parallel(game, config, plan.workers)
            }),
        }
    }
}

impl Explainer for KernelShapMethod {
    fn card(&self) -> MethodCard {
        method_card("Kernel SHAP")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        let instance = req.need_instance("Kernel SHAP")?;
        let background = req.background_or_data();
        validate::background("kernel SHAP", instance, background)?;
        let ks = self.run(model, instance, background, req)?;
        if ks.degraded && req.plan.degradation == DegradationPolicy::Strict {
            return Err(XaiError::SingularSystem {
                context: "kernel SHAP solve needed ridge escalation; \
                          strict degradation policy refuses the estimate"
                    .into(),
            });
        }
        let pred = catch_model("kernel SHAP instance prediction", || model.predict(instance))?;
        Ok(Explanation::Attribution(FeatureAttribution::new(
            names_for(req, ks.phi.len()),
            ks.phi,
            ks.base_value,
            pred,
        )))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl KernelShapMethod {
    /// Rebuilds the method from its canonical shard-config JSON. The seed
    /// is not part of the config — it always comes from the plan.
    pub fn from_config_json(config: &Json) -> XaiResult<Self> {
        let max_coalitions = index_field(config, "max_coalitions", "Kernel SHAP config")?;
        if max_coalitions == 0 {
            return Err(wire_error("Kernel SHAP config: max_coalitions must be >= 1"));
        }
        let ridge = num_field(config, "ridge", "Kernel SHAP config")?;
        Ok(Self { config: KernelShapConfig { max_coalitions, ridge, seed: 0 } })
    }

    /// Parses one serialized coalition triple `[[0/1...], weight, value]`.
    fn parse_triple(t: &Json, i: usize) -> XaiResult<(Vec<bool>, f64, f64)> {
        let parts = t
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| wire_error(format!("Kernel SHAP merge: triple {i} malformed")))?;
        let mask = parts[0]
            .as_arr()
            .ok_or_else(|| wire_error(format!("Kernel SHAP merge: triple {i} mask malformed")))?
            .iter()
            .map(|b| match b.as_num() {
                Some(v) if v == 0.0 => Ok(false),
                Some(v) if v == 1.0 => Ok(true),
                _ => Err(wire_error(format!("Kernel SHAP merge: triple {i} mask bit invalid"))),
            })
            .collect::<XaiResult<Vec<bool>>>()?;
        let w = parts[1]
            .as_num()
            .ok_or_else(|| wire_error(format!("Kernel SHAP merge: triple {i} weight invalid")))?;
        let v = parts[2]
            .as_num()
            .ok_or_else(|| wire_error(format!("Kernel SHAP merge: triple {i} value invalid")))?;
        Ok((mask, w, v))
    }
}

impl ShardableExplainer for KernelShapMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        let instance = req.need_instance("Kernel SHAP")?;
        let n = instance.len();
        let plan = &req.plan;
        if plan.budget.max_duration.is_some() {
            return Err(XaiError::Unsupported {
                context: "sharded Kernel SHAP honours eval-cap budgets only; \
                          wall-clock deadlines cannot partition deterministically"
                    .into(),
            });
        }
        let exact = kernel::exact_mode(n, self.config.max_coalitions);
        let planned = if exact { (1usize << n) - 2 } else { self.config.max_coalitions };
        let total = match plan.budget.max_evals {
            None => planned,
            Some(_) if exact => {
                return Err(XaiError::Unsupported {
                    context: "budgeted sharding of the exact Kernel SHAP enumeration is not \
                              supported; lower max_coalitions to force sampling mode"
                        .into(),
                })
            }
            Some(0) => {
                return Err(XaiError::BudgetExceeded {
                    context: "kernel SHAP: budget expired before the first coalition evaluation"
                        .into(),
                    completed: 0,
                })
            }
            Some(k) => planned.min(k),
        };
        Ok(DrawGrid { total_draws: total, chunk_size: kernel::COALITIONS_PER_CHUNK })
    }

    fn explain_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let instance = req.need_instance("Kernel SHAP")?;
        let background = req.background_or_data();
        validate::background("kernel SHAP", instance, background)?;
        let grid = self.draw_grid(req)?;
        let n = instance.len();
        let exact = kernel::exact_mode(n, self.config.max_coalitions);
        let size_weights = kernel::size_distribution(n);
        let f = |x: &[f64]| model.predict(x);
        let game = PredictionGame::new(&f, instance, background);
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let range = grid.chunk_range(c);
            let triples = if exact {
                kernel::exact_chunk_triples(&game, n, range)
            } else {
                let mut rng = StdRng::seed_from_u64(child_seed(req.plan.seed, c as u64));
                kernel::sampled_chunk_triples(&game, n, &size_weights, range.len(), &mut rng)
            };
            let mut chunk = Vec::with_capacity(triples.len());
            for (mask, w, v) in triples {
                if !v.is_finite() {
                    return Err(XaiError::ModelFault {
                        context: format!("coalition evaluation returned {v}"),
                    });
                }
                chunk.push(Json::Arr(vec![
                    Json::Arr(
                        mask.iter().map(|&b| Json::Num(if b { 1.0 } else { 0.0 })).collect(),
                    ),
                    Json::Num(w),
                    Json::Num(v),
                ]));
            }
            out.push(Json::Arr(chunk));
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "Kernel SHAP merge";
        let instance = req.need_instance("Kernel SHAP")?;
        let background = req.background_or_data();
        validate::background("kernel SHAP", instance, background)?;
        let n = instance.len();
        let f = |x: &[f64]| model.predict(x);
        let game = PredictionGame::new(&f, instance, background);
        let (ends, short) = kernel::endpoints(&game)?;
        let ks = if let Some(s) = short {
            s
        } else {
            let grid = self.draw_grid(req)?;
            let flat = flatten_chunks(&partials, WHAT)?;
            if flat.len() != grid.n_chunks() {
                return Err(wire_error(format!(
                    "{WHAT}: got {} chunk partials for a {}-chunk grid",
                    flat.len(),
                    grid.n_chunks()
                )));
            }
            let mut triples = Vec::with_capacity(grid.total_draws);
            for chunk in flat {
                let items = chunk
                    .as_arr()
                    .ok_or_else(|| wire_error(format!("{WHAT}: chunk partial is not an array")))?;
                for (i, t) in items.iter().enumerate() {
                    triples.push(Self::parse_triple(t, i)?);
                }
            }
            let exact = kernel::exact_mode(n, self.config.max_coalitions)
                && req.plan.budget.max_evals.is_none();
            kernel::finish_parallel(n, &ends, vec![triples], self.config.ridge, exact)?
        };
        if ks.degraded && req.plan.degradation == DegradationPolicy::Strict {
            return Err(XaiError::SingularSystem {
                context: "kernel SHAP solve needed ridge escalation; \
                          strict degradation policy refuses the estimate"
                    .into(),
            });
        }
        let pred = catch_model("kernel SHAP instance prediction", || model.predict(instance))?;
        Ok(Explanation::Attribution(FeatureAttribution::new(
            names_for(req, ks.phi.len()),
            ks.phi,
            ks.base_value,
            pred,
        )))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![
            ("max_coalitions", Json::Num(self.config.max_coalitions as f64)),
            ("ridge", Json::Num(self.config.ridge)),
        ])
    }
}

/// TreeSHAP (§2.1.2) through the unified layer: downcasts the oracle to a
/// tree-structured model (`Gbdt`, `RandomForest`, `DecisionTree`) and
/// walks its structure. Polynomial and exact, so `seed` / `workers` /
/// `batched` do not change the result; non-tree models report
/// [`XaiError::Unsupported`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeShapMethod;

impl Explainer for TreeShapMethod {
    fn card(&self) -> MethodCard {
        method_card("TreeSHAP")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("TreeSHAP", req)?;
        let instance = req.need_instance("TreeSHAP")?;
        validate::finite_slice("TreeSHAP instance", instance)?;
        let any = model.as_any().ok_or_else(|| XaiError::Unsupported {
            context: "TreeSHAP needs tree internals; the model oracle offers no downcast".into(),
        })?;
        let (phi, base, pred) = if let Some(g) = any.downcast_ref::<Gbdt>() {
            let e = catch_model("TreeSHAP over GBDT", || gbdt_shap(g, instance))?;
            let pred = g.margin(instance);
            (e.phi, e.expected_value, pred)
        } else if let Some(f) = any.downcast_ref::<RandomForest>() {
            let e = catch_model("TreeSHAP over forest", || forest_shap(f, instance))?;
            let pred = f.predict_value(instance);
            (e.phi, e.expected_value, pred)
        } else if let Some(t) = any.downcast_ref::<DecisionTree>() {
            let phi = catch_model("TreeSHAP over tree", || tree_shap(t, instance))?;
            let pred = t.predict_value(instance);
            (phi, tree_expected_value(t), pred)
        } else {
            return Err(XaiError::Unsupported {
                context: "TreeSHAP supports Gbdt, RandomForest and DecisionTree models".into(),
            });
        };
        Ok(Explanation::Attribution(FeatureAttribution::new(
            names_for(req, phi.len()),
            phi,
            base,
            pred,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_core::taxonomy::{Access, Scope};
    use xai_core::RunConfig;
    use xai_data::synth::german_credit;
    use xai_models::{GbdtConfig, LogisticConfig, LogisticRegression};

    #[test]
    fn cards_come_from_the_catalogue() {
        assert_eq!(ExactShapleyMethod.card().name, "Exact Shapley");
        assert_eq!(KernelShapMethod::default().card().access, Access::ModelAgnostic);
        assert_eq!(TreeShapMethod.card().access, Access::ModelSpecific);
        assert_eq!(PermutationShapleyMethod::default().card().scope, Scope::Local);
    }

    #[test]
    fn kernel_shap_trait_path_runs_and_checks_efficiency() {
        let data = german_credit(60, 5);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = data.row(0).to_vec();
        let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(9));
        let e = KernelShapMethod::default().explain(&model, &req).unwrap();
        let attr = e.as_attribution().unwrap();
        assert_eq!(attr.values.len(), data.x().cols());
        assert!(attr.efficiency_gap() < 1e-6, "gap {}", attr.efficiency_gap());
    }

    #[test]
    fn local_methods_demand_an_instance() {
        let data = german_credit(40, 6);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let req = ExplainRequest::new(&data);
        for method in [
            &ExactShapleyMethod as &dyn Explainer,
            &PermutationShapleyMethod::default(),
            &KernelShapMethod::default(),
            &TreeShapMethod,
        ] {
            assert!(matches!(
                method.explain(&model, &req),
                Err(XaiError::Unsupported { .. })
            ));
        }
    }

    #[test]
    fn tree_shap_requires_tree_internals() {
        let data = german_credit(40, 7);
        let row = data.row(1).to_vec();
        let logit = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let req = ExplainRequest::new(&data).instance(&row);
        assert!(matches!(
            TreeShapMethod.explain(&logit, &req),
            Err(XaiError::Unsupported { .. })
        ));
        let gbdt = xai_models::Gbdt::fit(data.x(), data.y(), GbdtConfig::default());
        let e = TreeShapMethod.explain(&gbdt, &req).unwrap();
        assert!(e.as_attribution().unwrap().efficiency_gap() < 1e-8);
    }

    #[test]
    fn budget_on_a_parallel_plan_is_rejected() {
        let data = german_credit(40, 8);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = data.row(0).to_vec();
        let plan = RunConfig::seeded(1)
            .with_workers(2)
            .with_budget(xai_core::SampleBudget::with_max_evals(10));
        let req = ExplainRequest::new(&data).instance(&row).plan(plan);
        assert!(matches!(
            PermutationShapleyMethod::default().explain(&model, &req),
            Err(XaiError::Unsupported { .. })
        ));
        // Kernel SHAP's budget path is likewise sequential-scalar only.
        assert!(matches!(
            KernelShapMethod::default().explain(&model, &req),
            Err(XaiError::Unsupported { .. })
        ));
    }

    #[test]
    fn budgeted_kernel_shap_equals_a_shorter_unbudgeted_run() {
        let data = german_credit(40, 8);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = data.row(0).to_vec();
        // Sampling mode (max_coalitions well under 2^9 - 2): capping the
        // eval budget at 24 must consume exactly the first 24 draws of
        // the seed-11 stream, i.e. equal max_coalitions = 24 bit for bit.
        let capped = KernelShapMethod {
            config: KernelShapConfig { max_coalitions: 200, ..KernelShapConfig::default() },
        };
        let plan = RunConfig::seeded(11).with_budget(xai_core::SampleBudget::with_max_evals(24));
        let req = ExplainRequest::new(&data).instance(&row).plan(plan);
        let budgeted = capped.explain(&model, &req).unwrap();
        let short = KernelShapMethod {
            config: KernelShapConfig { max_coalitions: 24, ..KernelShapConfig::default() },
        };
        let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(11));
        let unbudgeted = short.explain(&model, &req).unwrap();
        assert_eq!(
            budgeted.as_attribution().unwrap().values,
            unbudgeted.as_attribution().unwrap().values
        );

        // A budget that cannot admit even one coalition is typed.
        let plan = RunConfig::seeded(11).with_budget(xai_core::SampleBudget::with_max_evals(0));
        let req = ExplainRequest::new(&data).instance(&row).plan(plan);
        assert!(matches!(
            capped.explain(&model, &req),
            Err(XaiError::BudgetExceeded { completed: 0, .. })
        ));
    }
}
