//! Monte-Carlo Shapley estimation by permutation sampling.
//!
//! The classic unbiased estimator (Castro et al.; the engine behind
//! Quantitative Input Influence's Shapley variant, §2.1.2 \[14\]): draw a
//! random feature ordering, walk it, and record each player's marginal
//! contribution when it joins. Cost per permutation is `n + 1` game
//! evaluations; the estimate converges at the Monte-Carlo `1/√m` rate —
//! experiment E2's subject.

use crate::batch::BatchGame;
use crate::game::{random_permutation, CooperativeGame};
use xai_core::{catch_model, SampleBudget, XaiError, XaiResult};
use xai_rand::parallel::{sum_partials, try_par_map_chunks};
use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;

/// Result of a permutation-sampling run.
#[derive(Clone, Debug)]
pub struct SampledShapley {
    /// The Shapley estimates.
    pub phi: Vec<f64>,
    /// Per-player standard error estimates (σ̂/√m).
    pub std_err: Vec<f64>,
    /// Number of permutations drawn.
    pub permutations: usize,
}

/// Estimates Shapley values from `permutations` random orderings.
///
/// # Panics
/// Panics when the game evaluates to non-finite values or panics itself;
/// use [`try_permutation_shapley`] for typed errors.
pub fn permutation_shapley(
    game: &dyn CooperativeGame,
    permutations: usize,
    seed: u64,
) -> SampledShapley {
    try_permutation_shapley(game, permutations, seed)
        .expect("permutation Shapley failed; try_permutation_shapley recovers this")
}

/// Fallible twin of [`permutation_shapley`]: a game that panics or
/// produces non-finite values yields [`XaiError::ModelFault`] instead of
/// unwinding or leaking NaN into the estimate.
pub fn try_permutation_shapley(
    game: &dyn CooperativeGame,
    permutations: usize,
    seed: u64,
) -> XaiResult<SampledShapley> {
    try_permutation_shapley_budgeted(game, permutations, seed, SampleBudget::unlimited())
}

/// One fallible permutation walk: evaluates the `n + 1` walk coalitions
/// under panic isolation and returns the per-player marginals (each
/// player joins exactly once, so accumulation order within a walk cannot
/// change the sums).
fn try_walk(
    game: &dyn CooperativeGame,
    perm: &[usize],
    coalition: &mut [bool],
) -> XaiResult<Vec<f64>> {
    let n = coalition.len();
    let marginals = catch_model("permutation Shapley walk evaluation", || {
        coalition.iter_mut().for_each(|c| *c = false);
        let mut prev = game.value(coalition);
        let mut marg = vec![0.0; n];
        for &player in perm {
            coalition[player] = true;
            let cur = game.value(coalition);
            marg[player] = cur - prev;
            prev = cur;
        }
        marg
    })?;
    if let Some(p) = marginals.iter().position(|m| !m.is_finite()) {
        return Err(XaiError::ModelFault {
            context: format!("permutation Shapley walk produced marginal {} for player {p}", marginals[p]),
        });
    }
    Ok(marginals)
}

/// Budget-aware fallible permutation sampling: stops drawing walks once
/// `budget` is exhausted (each walk costs `n + 1` evaluations) and
/// returns the **best-effort partial estimate** from the walks that did
/// complete — `result.permutations` reports how many that was. Fails with
/// [`XaiError::BudgetExceeded`] only when the budget expires before the
/// first walk. With an eval cap the truncation point is deterministic;
/// with a wall-clock deadline it is machine-dependent.
pub fn try_permutation_shapley_budgeted(
    game: &dyn CooperativeGame,
    permutations: usize,
    seed: u64,
    budget: SampleBudget,
) -> XaiResult<SampledShapley> {
    assert!(permutations > 0, "need at least one permutation");
    let n = game.n_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = vec![0.0; n];
    let mut sum_sq = vec![0.0; n];
    let mut coalition = vec![false; n];
    let mut meter = budget.start();
    let mut done = 0;
    for _ in 0..permutations {
        if meter.exhausted() {
            break;
        }
        let perm = random_permutation(&mut rng, n);
        let marginals = try_walk(game, &perm, &mut coalition)?;
        for (player, &m) in marginals.iter().enumerate() {
            sum[player] += m;
            sum_sq[player] += m * m;
        }
        meter.record(n + 1);
        done += 1;
    }
    if done == 0 {
        return Err(XaiError::BudgetExceeded {
            context: "permutation Shapley: budget expired before the first walk".into(),
            completed: 0,
        });
    }
    Ok(finish_sampled(sum, sum_sq, done))
}

/// Permutations per executor task in [`permutation_shapley_parallel`],
/// and the materialization round size of the batched estimators. Fixed
/// (never derived from the worker count) so the chunk grid — and hence
/// the floating-point output — is worker-invariant.
pub(crate) const PERMS_PER_CHUNK: usize = 16;

/// One scalar parallel chunk: draws `count` permutations from the chunk's
/// RNG stream, walks them, and returns the chunk-local `(sum, sum_sq)`
/// marginal accumulators. Shared verbatim by the parallel path and the
/// shard executor (DESIGN.md §11) so both produce bit-identical partials
/// for the same chunk.
pub(crate) fn scalar_chunk_sums(
    game: &dyn CooperativeGame,
    n: usize,
    count: usize,
    rng: &mut StdRng,
) -> (Vec<f64>, Vec<f64>) {
    let mut sum = vec![0.0; n];
    let mut sum_sq = vec![0.0; n];
    let mut coalition = vec![false; n];
    for _ in 0..count {
        let perm = random_permutation(rng, n);
        coalition.iter_mut().for_each(|c| *c = false);
        let mut prev = game.value(&coalition);
        for &player in &perm {
            coalition[player] = true;
            let cur = game.value(&coalition);
            let marginal = cur - prev;
            sum[player] += marginal;
            sum_sq[player] += marginal * marginal;
            prev = cur;
        }
    }
    (sum, sum_sq)
}

/// Folds ordered per-chunk `(sum, sum_sq)` partials and finishes the
/// estimate — the shared merge epilogue of the parallel and shard paths.
pub(crate) fn merge_chunk_sums(
    partials: Vec<(Vec<f64>, Vec<f64>)>,
    permutations: usize,
) -> XaiResult<SampledShapley> {
    let (sums, sums_sq): (Vec<_>, Vec<_>) = partials.into_iter().unzip();
    let sum = sum_partials(sums);
    let sum_sq = sum_partials(sums_sq);
    check_sampled_sums(&sum)?;
    Ok(finish_sampled(sum, sum_sq, permutations))
}

/// Materializes the `n + 1` walk coalitions of each permutation in a
/// round — `[∅, {p₀}, {p₀,p₁}, …, N]` — as one coalition list for a
/// single [`BatchGame::values`] call, then replays the walks against the
/// returned values. Accumulation runs perm-by-perm in walk order exactly
/// like the scalar loop, so the partial sums are bit-identical to it.
fn walk_round(
    game: &dyn BatchGame,
    perms: &[Vec<usize>],
    n: usize,
    sum: &mut [f64],
    sum_sq: &mut [f64],
) {
    let mut coalitions: Vec<Vec<bool>> = Vec::with_capacity(perms.len() * (n + 1));
    for perm in perms {
        let mut coalition = vec![false; n];
        coalitions.push(coalition.clone());
        for &player in perm {
            coalition[player] = true;
            coalitions.push(coalition.clone());
        }
    }
    let vals = game.values(&coalitions);
    for (p, perm) in perms.iter().enumerate() {
        let base = p * (n + 1);
        let mut prev = vals[base];
        for (t, &player) in perm.iter().enumerate() {
            let cur = vals[base + t + 1];
            let marginal = cur - prev;
            sum[player] += marginal;
            sum_sq[player] += marginal * marginal;
            prev = cur;
        }
    }
}

/// Rejects partial sums poisoned by non-finite game values. Any ±Inf or
/// NaN game value necessarily leaves at least one non-finite per-player
/// sum (Inf−Inf is NaN and NaN is absorbing), so checking the reduced
/// sums is enough to guarantee no NaN reaches the estimate.
fn check_sampled_sums(sum: &[f64]) -> XaiResult<()> {
    if let Some(p) = sum.iter().position(|s| !s.is_finite()) {
        return Err(XaiError::ModelFault {
            context: format!("permutation Shapley: player {p} accumulated marginal sum {}", sum[p]),
        });
    }
    Ok(())
}

/// Batched permutation sampling: permutations are processed in rounds of
/// [`PERMS_PER_CHUNK`], each round's walk coalitions materialized into a
/// single [`BatchGame::values`] call.
///
/// The walks consume no randomness, so drawing a round's permutations up
/// front leaves the RNG stream identical to the interleaved scalar loop —
/// at the same seed this is bit-identical to [`permutation_shapley`]
/// (given a bit-exact batched game).
#[deprecated(note = "superseded by the unified explainer layer: use PermutationShapleyMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn permutation_shapley_batched(
    game: &dyn BatchGame,
    permutations: usize,
    seed: u64,
) -> SampledShapley {
    try_permutation_shapley_batched(game, permutations, seed)
        .expect("permutation Shapley failed; try_permutation_shapley_batched recovers this")
}

/// Fallible twin of [`permutation_shapley_batched`]; failure semantics as
/// in [`try_permutation_shapley`].
#[deprecated(note = "superseded by the unified explainer layer: use PermutationShapleyMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_permutation_shapley_batched(
    game: &dyn BatchGame,
    permutations: usize,
    seed: u64,
) -> XaiResult<SampledShapley> {
    assert!(permutations > 0, "need at least one permutation");
    let n = game.n_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = vec![0.0; n];
    let mut sum_sq = vec![0.0; n];
    let mut done = 0;
    while done < permutations {
        let round = PERMS_PER_CHUNK.min(permutations - done);
        let perms: Vec<Vec<usize>> =
            (0..round).map(|_| random_permutation(&mut rng, n)).collect();
        catch_model("permutation Shapley batched evaluation", || {
            walk_round(game, &perms, n, &mut sum, &mut sum_sq);
        })?;
        done += round;
    }
    check_sampled_sums(&sum)?;
    Ok(finish_sampled(sum, sum_sq, permutations))
}

/// Parallel batched permutation sampling: same fixed chunk grid and
/// per-chunk PCG64 streams as [`permutation_shapley_parallel`], but each
/// worker materializes its chunk's walk coalitions into one
/// [`BatchGame::values`] call. Bit-identical to the scalar parallel
/// estimator at every worker count.
#[deprecated(note = "superseded by the unified explainer layer: use PermutationShapleyMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn permutation_shapley_batched_parallel(
    game: &(dyn BatchGame + Sync),
    permutations: usize,
    seed: u64,
    workers: usize,
) -> SampledShapley {
    try_permutation_shapley_batched_parallel(game, permutations, seed, workers)
        .expect("permutation Shapley failed; try_permutation_shapley_batched_parallel recovers this")
}

/// Fallible twin of [`permutation_shapley_batched_parallel`]; failure
/// semantics as in [`try_permutation_shapley_parallel`].
#[deprecated(note = "superseded by the unified explainer layer: use PermutationShapleyMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_permutation_shapley_batched_parallel(
    game: &(dyn BatchGame + Sync),
    permutations: usize,
    seed: u64,
    workers: usize,
) -> XaiResult<SampledShapley> {
    assert!(permutations > 0, "need at least one permutation");
    assert!(workers >= 1, "need at least one worker");
    let n = game.n_players();
    let partials = try_par_map_chunks(
        permutations,
        PERMS_PER_CHUNK,
        seed,
        workers,
        |_chunk, range, rng| {
            let mut sum = vec![0.0; n];
            let mut sum_sq = vec![0.0; n];
            let perms: Vec<Vec<usize>> =
                range.map(|_| random_permutation(rng, n)).collect();
            walk_round(game, &perms, n, &mut sum, &mut sum_sq);
            (sum, sum_sq)
        },
    )
    .map_err(XaiError::from)?;
    let (sums, sums_sq): (Vec<_>, Vec<_>) = partials.into_iter().unzip();
    let sum = sum_partials(sums);
    let sum_sq = sum_partials(sums_sq);
    check_sampled_sums(&sum)?;
    Ok(finish_sampled(sum, sum_sq, permutations))
}

/// Shared mean / standard-error epilogue of the permutation estimators.
fn finish_sampled(sum: Vec<f64>, sum_sq: Vec<f64>, permutations: usize) -> SampledShapley {
    let m = permutations as f64;
    let phi: Vec<f64> = sum.iter().map(|s| s / m).collect();
    let std_err = sum_sq
        .iter()
        .zip(&phi)
        .map(|(&sq, &mean)| {
            if permutations < 2 {
                f64::INFINITY
            } else {
                let var = (sq / m - mean * mean).max(0.0) * m / (m - 1.0);
                (var / m).sqrt()
            }
        })
        .collect();
    SampledShapley { phi, std_err, permutations }
}

/// Parallel permutation sampling on the `xai_rand` fork-join executor.
///
/// The permutation budget is split into fixed-size chunks; chunk `c` draws
/// its orderings from the PCG64 stream `child_seed(seed, c)` and partial
/// sums are reduced in chunk order. The estimate is therefore a pure
/// function of `(permutations, seed)` — bit-identical across runs and
/// across worker counts. It is a *different* (equally unbiased) draw from
/// the sequential [`permutation_shapley`], which uses one stream.
#[deprecated(note = "superseded by the unified explainer layer: use PermutationShapleyMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn permutation_shapley_parallel(
    game: &(dyn CooperativeGame + Sync),
    permutations: usize,
    seed: u64,
    workers: usize,
) -> SampledShapley {
    try_permutation_shapley_parallel(game, permutations, seed, workers)
        .expect("permutation Shapley failed; try_permutation_shapley_parallel recovers this")
}

/// Fallible twin of [`permutation_shapley_parallel`]: a panic inside a
/// worker chunk yields [`XaiError::WorkerPanic`] naming the lowest-indexed
/// panicking chunk (worker-count invariant); non-finite game values yield
/// [`XaiError::ModelFault`].
#[deprecated(note = "superseded by the unified explainer layer: use PermutationShapleyMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_permutation_shapley_parallel(
    game: &(dyn CooperativeGame + Sync),
    permutations: usize,
    seed: u64,
    workers: usize,
) -> XaiResult<SampledShapley> {
    assert!(permutations > 0, "need at least one permutation");
    assert!(workers >= 1, "need at least one worker");
    let n = game.n_players();
    let partials = try_par_map_chunks(
        permutations,
        PERMS_PER_CHUNK,
        seed,
        workers,
        |_chunk, range, rng| scalar_chunk_sums(game, n, range.len(), rng),
    )
    .map_err(XaiError::from)?;
    merge_chunk_sums(partials, permutations)
}

/// Antithetic variant: pairs each permutation with its reverse, which
/// cancels first-order noise for near-additive games.
///
/// # Panics
/// Panics when the game panics or produces non-finite values; use
/// [`try_antithetic_permutation_shapley`] for typed errors.
pub fn antithetic_permutation_shapley(
    game: &dyn CooperativeGame,
    pairs: usize,
    seed: u64,
) -> SampledShapley {
    assert!(pairs > 0);
    let n = game.n_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = vec![0.0; n];
    let mut sum_sq = vec![0.0; n];
    let mut coalition = vec![false; n];
    let walk = |perm: &[usize], sum: &mut [f64], sum_sq: &mut [f64], coalition: &mut [bool]| {
        coalition.iter_mut().for_each(|c| *c = false);
        let mut prev = game.value(coalition);
        for &player in perm {
            coalition[player] = true;
            let cur = game.value(coalition);
            let marginal = cur - prev;
            sum[player] += marginal;
            sum_sq[player] += marginal * marginal;
            prev = cur;
        }
    };
    for _ in 0..pairs {
        let perm = random_permutation(&mut rng, n);
        walk(&perm, &mut sum, &mut sum_sq, &mut coalition);
        let rev: Vec<usize> = perm.iter().rev().copied().collect();
        walk(&rev, &mut sum, &mut sum_sq, &mut coalition);
    }
    let m = (2 * pairs) as f64;
    let phi: Vec<f64> = sum.iter().map(|s| s / m).collect();
    let std_err = sum_sq
        .iter()
        .zip(&phi)
        .map(|(&sq, &mean)| (((sq / m - mean * mean).max(0.0)) / m).sqrt())
        .collect();
    SampledShapley { phi, std_err, permutations: 2 * pairs }
}

/// Fallible twin of [`antithetic_permutation_shapley`]; failure semantics
/// as in [`try_permutation_shapley`].
pub fn try_antithetic_permutation_shapley(
    game: &dyn CooperativeGame,
    pairs: usize,
    seed: u64,
) -> XaiResult<SampledShapley> {
    let est = catch_model("antithetic permutation Shapley evaluation", || {
        antithetic_permutation_shapley(game, pairs, seed)
    })?;
    if let Some(p) = est.phi.iter().position(|v| !v.is_finite()) {
        return Err(XaiError::ModelFault {
            context: format!("antithetic permutation Shapley: player {p} estimate is {}", est.phi[p]),
        });
    }
    Ok(est)
}

#[cfg(test)]
#[allow(deprecated)] // the twins stay under test until removal
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::TableGame;
    use xai_linalg::norm2;
    use xai_linalg::vsub;

    #[test]
    fn parallel_estimator_is_worker_invariant_and_converges() {
        let game = TableGame::glove();
        let exact = exact_shapley(&game);
        let one = permutation_shapley_parallel(&game, 2000, 7, 1);
        for workers in [2, 4] {
            let w = permutation_shapley_parallel(&game, 2000, 7, workers);
            assert_eq!(one.phi, w.phi, "workers={workers} diverged");
            assert_eq!(one.std_err, w.std_err);
        }
        for (e, x) in one.phi.iter().zip(&exact) {
            assert!((e - x).abs() < 0.03, "{e} vs {x}");
        }
    }

    #[test]
    fn parallel_estimator_preserves_efficiency() {
        let game = TableGame::new(3, vec![1.0, 2.0, 0.0, 4.0, 3.0, 5.0, 2.0, 9.0]);
        let est = permutation_shapley_parallel(&game, 33, 5, 4);
        let total: f64 = est.phi.iter().sum();
        assert!((total - (game.grand_value() - game.empty_value())).abs() < 1e-9);
    }

    #[test]
    fn converges_to_exact_on_glove() {
        let game = TableGame::glove();
        let exact = exact_shapley(&game);
        let est = permutation_shapley(&game, 4000, 7);
        for (e, x) in est.phi.iter().zip(&exact) {
            assert!((e - x).abs() < 0.03, "{e} vs {x}");
        }
    }

    #[test]
    fn error_shrinks_with_more_permutations() {
        let game = TableGame::new(4, (0..16).map(|m: usize| (m.count_ones() as f64).powi(2)).collect());
        let exact = exact_shapley(&game);
        let small = permutation_shapley(&game, 20, 3);
        let large = permutation_shapley(&game, 2000, 3);
        let err_small = norm2(&vsub(&small.phi, &exact));
        let err_large = norm2(&vsub(&large.phi, &exact));
        assert!(
            err_large <= err_small + 1e-9,
            "error must not grow: {err_small} -> {err_large}"
        );
    }

    #[test]
    fn estimates_preserve_efficiency_exactly() {
        // Every permutation walk telescopes to v(N) − v(∅), so the estimate
        // satisfies efficiency for any sample size.
        let game = TableGame::new(3, vec![1.0, 2.0, 0.0, 4.0, 3.0, 5.0, 2.0, 9.0]);
        let est = permutation_shapley(&game, 13, 5);
        let total: f64 = est.phi.iter().sum();
        assert!((total - (game.grand_value() - game.empty_value())).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let game = TableGame::glove();
        let a = permutation_shapley(&game, 50, 11);
        let b = permutation_shapley(&game, 50, 11);
        assert_eq!(a.phi, b.phi);
        let c = permutation_shapley(&game, 50, 13);
        assert_ne!(a.phi, c.phi);
    }

    #[test]
    fn antithetic_matches_exact_too() {
        let game = TableGame::glove();
        let exact = exact_shapley(&game);
        let est = antithetic_permutation_shapley(&game, 2000, 9);
        for (e, x) in est.phi.iter().zip(&exact) {
            assert!((e - x).abs() < 0.03);
        }
        assert_eq!(est.permutations, 4000);
    }

    #[test]
    fn batched_matches_scalar_bitwise() {
        use crate::batch::{BatchPredictionGame, CachedGame};
        use crate::game::PredictionGame;
        use xai_linalg::Matrix;

        // Table game through the default batch loop, round-boundary sizes.
        let game = TableGame::glove();
        for perms in [1, 15, 16, 17, 40] {
            let a = permutation_shapley(&game, perms, 21);
            let b = permutation_shapley_batched(&game, perms, 21);
            assert_eq!(a.phi, b.phi, "perms={perms}");
            assert_eq!(a.std_err, b.std_err, "perms={perms}");
        }

        // Prediction game: scalar loop vs. materialized probe matrix.
        let model = |x: &[f64]| (x[0] * 0.4 - x[1]).exp() / (1.0 + x[2].abs());
        let batched_model = |m: &Matrix| -> Vec<f64> { m.iter_rows().map(model).collect() };
        let background =
            Matrix::from_rows(&[vec![0.2, -0.1, 1.0], vec![1.3, 0.6, -0.4]]);
        let instance = [0.5, 1.1, -2.0];
        let scalar_game = PredictionGame::new(&model, &instance, &background);
        let batch_game = BatchPredictionGame::new(&batched_model, &instance, &background);
        let a = permutation_shapley(&scalar_game, 25, 3);
        let b = permutation_shapley_batched(&batch_game, 25, 3);
        assert_eq!(a.phi, b.phi);
        assert_eq!(a.std_err, b.std_err);

        // The memo cache must not perturb bits either, and walks repeat
        // the empty/grand coalitions every permutation, so it must hit.
        let cached = CachedGame::new(&batch_game);
        let c = permutation_shapley_batched(&cached, 25, 3);
        assert_eq!(a.phi, c.phi);
        let (hits, misses) = cached.stats();
        assert!(hits > 0 && misses < 25 * 4, "hits={hits} misses={misses}");
    }

    #[test]
    fn batched_parallel_matches_scalar_parallel_bitwise() {
        let game = TableGame::new(
            4,
            (0..16).map(|m: usize| (m.count_ones() as f64).powi(2) * 0.5 - 1.0).collect(),
        );
        let reference = permutation_shapley_parallel(&game, 70, 13, 1);
        for workers in [1, 2, 4] {
            let b = permutation_shapley_batched_parallel(&game, 70, 13, workers);
            assert_eq!(reference.phi, b.phi, "workers={workers}");
            assert_eq!(reference.std_err, b.std_err, "workers={workers}");
        }
    }

    #[test]
    fn std_err_reported_and_finite() {
        let game = TableGame::glove();
        let est = permutation_shapley(&game, 100, 2);
        assert_eq!(est.std_err.len(), 3);
        assert!(est.std_err.iter().all(|s| s.is_finite()));
    }
}
