//! Monte-Carlo Shapley estimation by permutation sampling.
//!
//! The classic unbiased estimator (Castro et al.; the engine behind
//! Quantitative Input Influence's Shapley variant, §2.1.2 \[14\]): draw a
//! random feature ordering, walk it, and record each player's marginal
//! contribution when it joins. Cost per permutation is `n + 1` game
//! evaluations; the estimate converges at the Monte-Carlo `1/√m` rate —
//! experiment E2's subject.

use crate::game::{random_permutation, CooperativeGame};
use xai_rand::parallel::{par_map_chunks, sum_partials};
use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;

/// Result of a permutation-sampling run.
#[derive(Clone, Debug)]
pub struct SampledShapley {
    /// The Shapley estimates.
    pub phi: Vec<f64>,
    /// Per-player standard error estimates (σ̂/√m).
    pub std_err: Vec<f64>,
    /// Number of permutations drawn.
    pub permutations: usize,
}

/// Estimates Shapley values from `permutations` random orderings.
pub fn permutation_shapley(
    game: &dyn CooperativeGame,
    permutations: usize,
    seed: u64,
) -> SampledShapley {
    assert!(permutations > 0, "need at least one permutation");
    let n = game.n_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = vec![0.0; n];
    let mut sum_sq = vec![0.0; n];
    let mut coalition = vec![false; n];
    for _ in 0..permutations {
        let perm = random_permutation(&mut rng, n);
        coalition.iter_mut().for_each(|c| *c = false);
        let mut prev = game.value(&coalition);
        for &player in &perm {
            coalition[player] = true;
            let cur = game.value(&coalition);
            let marginal = cur - prev;
            sum[player] += marginal;
            sum_sq[player] += marginal * marginal;
            prev = cur;
        }
    }
    let m = permutations as f64;
    let phi: Vec<f64> = sum.iter().map(|s| s / m).collect();
    let std_err = sum_sq
        .iter()
        .zip(&phi)
        .map(|(&sq, &mean)| {
            if permutations < 2 {
                f64::INFINITY
            } else {
                let var = (sq / m - mean * mean).max(0.0) * m / (m - 1.0);
                (var / m).sqrt()
            }
        })
        .collect();
    SampledShapley { phi, std_err, permutations }
}

/// Permutations per executor task in [`permutation_shapley_parallel`].
/// Fixed (never derived from the worker count) so the chunk grid — and
/// hence the floating-point output — is worker-invariant.
const PERMS_PER_CHUNK: usize = 16;

/// Parallel permutation sampling on the `xai_rand` fork-join executor.
///
/// The permutation budget is split into fixed-size chunks; chunk `c` draws
/// its orderings from the PCG64 stream `child_seed(seed, c)` and partial
/// sums are reduced in chunk order. The estimate is therefore a pure
/// function of `(permutations, seed)` — bit-identical across runs and
/// across worker counts. It is a *different* (equally unbiased) draw from
/// the sequential [`permutation_shapley`], which uses one stream.
pub fn permutation_shapley_parallel(
    game: &(dyn CooperativeGame + Sync),
    permutations: usize,
    seed: u64,
    workers: usize,
) -> SampledShapley {
    assert!(permutations > 0, "need at least one permutation");
    assert!(workers >= 1, "need at least one worker");
    let n = game.n_players();
    let partials = par_map_chunks(
        permutations,
        PERMS_PER_CHUNK,
        seed,
        workers,
        |_chunk, range, rng| {
            let mut sum = vec![0.0; n];
            let mut sum_sq = vec![0.0; n];
            let mut coalition = vec![false; n];
            for _ in range {
                let perm = random_permutation(rng, n);
                coalition.iter_mut().for_each(|c| *c = false);
                let mut prev = game.value(&coalition);
                for &player in &perm {
                    coalition[player] = true;
                    let cur = game.value(&coalition);
                    let marginal = cur - prev;
                    sum[player] += marginal;
                    sum_sq[player] += marginal * marginal;
                    prev = cur;
                }
            }
            (sum, sum_sq)
        },
    );
    let (sums, sums_sq): (Vec<_>, Vec<_>) = partials.into_iter().unzip();
    let sum = sum_partials(sums);
    let sum_sq = sum_partials(sums_sq);
    let m = permutations as f64;
    let phi: Vec<f64> = sum.iter().map(|s| s / m).collect();
    let std_err = sum_sq
        .iter()
        .zip(&phi)
        .map(|(&sq, &mean)| {
            if permutations < 2 {
                f64::INFINITY
            } else {
                let var = (sq / m - mean * mean).max(0.0) * m / (m - 1.0);
                (var / m).sqrt()
            }
        })
        .collect();
    SampledShapley { phi, std_err, permutations }
}

/// Antithetic variant: pairs each permutation with its reverse, which
/// cancels first-order noise for near-additive games.
pub fn antithetic_permutation_shapley(
    game: &dyn CooperativeGame,
    pairs: usize,
    seed: u64,
) -> SampledShapley {
    assert!(pairs > 0);
    let n = game.n_players();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = vec![0.0; n];
    let mut sum_sq = vec![0.0; n];
    let mut coalition = vec![false; n];
    let walk = |perm: &[usize], sum: &mut [f64], sum_sq: &mut [f64], coalition: &mut [bool]| {
        coalition.iter_mut().for_each(|c| *c = false);
        let mut prev = game.value(coalition);
        for &player in perm {
            coalition[player] = true;
            let cur = game.value(coalition);
            let marginal = cur - prev;
            sum[player] += marginal;
            sum_sq[player] += marginal * marginal;
            prev = cur;
        }
    };
    for _ in 0..pairs {
        let perm = random_permutation(&mut rng, n);
        walk(&perm, &mut sum, &mut sum_sq, &mut coalition);
        let rev: Vec<usize> = perm.iter().rev().copied().collect();
        walk(&rev, &mut sum, &mut sum_sq, &mut coalition);
    }
    let m = (2 * pairs) as f64;
    let phi: Vec<f64> = sum.iter().map(|s| s / m).collect();
    let std_err = sum_sq
        .iter()
        .zip(&phi)
        .map(|(&sq, &mean)| (((sq / m - mean * mean).max(0.0)) / m).sqrt())
        .collect();
    SampledShapley { phi, std_err, permutations: 2 * pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_shapley;
    use crate::game::TableGame;
    use xai_linalg::norm2;
    use xai_linalg::vsub;

    #[test]
    fn parallel_estimator_is_worker_invariant_and_converges() {
        let game = TableGame::glove();
        let exact = exact_shapley(&game);
        let one = permutation_shapley_parallel(&game, 2000, 7, 1);
        for workers in [2, 4] {
            let w = permutation_shapley_parallel(&game, 2000, 7, workers);
            assert_eq!(one.phi, w.phi, "workers={workers} diverged");
            assert_eq!(one.std_err, w.std_err);
        }
        for (e, x) in one.phi.iter().zip(&exact) {
            assert!((e - x).abs() < 0.03, "{e} vs {x}");
        }
    }

    #[test]
    fn parallel_estimator_preserves_efficiency() {
        let game = TableGame::new(3, vec![1.0, 2.0, 0.0, 4.0, 3.0, 5.0, 2.0, 9.0]);
        let est = permutation_shapley_parallel(&game, 33, 5, 4);
        let total: f64 = est.phi.iter().sum();
        assert!((total - (game.grand_value() - game.empty_value())).abs() < 1e-9);
    }

    #[test]
    fn converges_to_exact_on_glove() {
        let game = TableGame::glove();
        let exact = exact_shapley(&game);
        let est = permutation_shapley(&game, 4000, 7);
        for (e, x) in est.phi.iter().zip(&exact) {
            assert!((e - x).abs() < 0.03, "{e} vs {x}");
        }
    }

    #[test]
    fn error_shrinks_with_more_permutations() {
        let game = TableGame::new(4, (0..16).map(|m: usize| (m.count_ones() as f64).powi(2)).collect());
        let exact = exact_shapley(&game);
        let small = permutation_shapley(&game, 20, 3);
        let large = permutation_shapley(&game, 2000, 3);
        let err_small = norm2(&vsub(&small.phi, &exact));
        let err_large = norm2(&vsub(&large.phi, &exact));
        assert!(
            err_large <= err_small + 1e-9,
            "error must not grow: {err_small} -> {err_large}"
        );
    }

    #[test]
    fn estimates_preserve_efficiency_exactly() {
        // Every permutation walk telescopes to v(N) − v(∅), so the estimate
        // satisfies efficiency for any sample size.
        let game = TableGame::new(3, vec![1.0, 2.0, 0.0, 4.0, 3.0, 5.0, 2.0, 9.0]);
        let est = permutation_shapley(&game, 13, 5);
        let total: f64 = est.phi.iter().sum();
        assert!((total - (game.grand_value() - game.empty_value())).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let game = TableGame::glove();
        let a = permutation_shapley(&game, 50, 11);
        let b = permutation_shapley(&game, 50, 11);
        assert_eq!(a.phi, b.phi);
        let c = permutation_shapley(&game, 50, 13);
        assert_ne!(a.phi, c.phi);
    }

    #[test]
    fn antithetic_matches_exact_too() {
        let game = TableGame::glove();
        let exact = exact_shapley(&game);
        let est = antithetic_permutation_shapley(&game, 2000, 9);
        for (e, x) in est.phi.iter().zip(&exact) {
            assert!((e - x).abs() < 0.03);
        }
        assert_eq!(est.permutations, 4000);
    }

    #[test]
    fn std_err_reported_and_finite() {
        let game = TableGame::glove();
        let est = permutation_shapley(&game, 100, 2);
        assert_eq!(est.std_err.len(), 3);
        assert!(est.std_err.iter().all(|s| s.is_finite()));
    }
}
