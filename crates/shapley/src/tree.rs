//! TreeSHAP: polynomial-time exact Shapley values for tree ensembles
//! (Lundberg et al., §2.1.2 \[46\]).
//!
//! Implements the path-dependent algorithm (Algorithm 2 of the TreeSHAP
//! paper): a single depth-first pass per tree maintains, for every feature
//! on the current path, the fraction of "one" (instance follows the split)
//! and "zero" (background cover flows both ways) paths, with the
//! permutation weights updated incrementally by `extend`/`unwind`. Cost is
//! `O(L·D²)` per tree instead of the `O(2^d)` of coalition enumeration —
//! the claim experiment E3 measures.
//!
//! The value being attributed is the tree's raw output and the coalition
//! semantics are the *path-dependent conditional expectation*; the
//! brute-force reference game is provided as
//! [`PathDependentGame`] so the equivalence is testable.

use crate::exact::exact_shapley;
use crate::game::CooperativeGame;
use xai_models::{DecisionTree, Gbdt, RandomForest, TreeNode};

/// One element of the TreeSHAP path.
#[derive(Clone, Copy, Debug)]
struct PathElem {
    /// Feature index; `usize::MAX` for the root sentinel.
    feature: usize,
    /// Fraction of zero (background) paths that flow through.
    zero: f64,
    /// One if the instance's path goes this way, else zero.
    one: f64,
    /// Permutation weight.
    weight: f64,
}

fn extend(path: &mut Vec<PathElem>, pz: f64, po: f64, pi: usize) {
    let l = path.len();
    path.push(PathElem { feature: pi, zero: pz, one: po, weight: if l == 0 { 1.0 } else { 0.0 } });
    for i in (0..l).rev() {
        path[i + 1].weight += po * path[i].weight * (i + 1) as f64 / (l + 1) as f64;
        path[i].weight = pz * path[i].weight * (l - i) as f64 / (l + 1) as f64;
    }
}

fn unwind(path: &mut Vec<PathElem>, i: usize) {
    let depth = path.len() - 1;
    let one = path[i].one;
    let zero = path[i].zero;
    let mut next_one = path[depth].weight;
    for j in (0..depth).rev() {
        if one != 0.0 {
            let tmp = path[j].weight;
            path[j].weight = next_one * (depth + 1) as f64 / ((j + 1) as f64 * one);
            next_one = tmp - path[j].weight * zero * (depth - j) as f64 / (depth + 1) as f64;
        } else {
            path[j].weight = path[j].weight * (depth + 1) as f64 / (zero * (depth - j) as f64);
        }
    }
    for j in i..depth {
        path[j].feature = path[j + 1].feature;
        path[j].zero = path[j + 1].zero;
        path[j].one = path[j + 1].one;
    }
    path.pop();
}

fn unwound_sum(path: &[PathElem], i: usize) -> f64 {
    let depth = path.len() - 1;
    let one = path[i].one;
    let zero = path[i].zero;
    let mut next_one = path[depth].weight;
    let mut total = 0.0;
    for j in (0..depth).rev() {
        if one != 0.0 {
            let tmp = next_one * (depth + 1) as f64 / ((j + 1) as f64 * one);
            total += tmp;
            next_one = path[j].weight - tmp * zero * (depth - j) as f64 / (depth + 1) as f64;
        } else {
            total += path[j].weight / zero * (depth + 1) as f64 / (depth - j) as f64;
        }
    }
    total
}

#[allow(clippy::too_many_arguments)] // mirrors the published algorithm's state
fn recurse(
    nodes: &[TreeNode],
    x: &[f64],
    phi: &mut [f64],
    node_id: usize,
    mut path: Vec<PathElem>,
    pz: f64,
    po: f64,
    pi: usize,
) {
    extend(&mut path, pz, po, pi);
    let node = &nodes[node_id];
    match (node.left, node.right) {
        (None, _) | (_, None) => {
            for i in 1..path.len() {
                let w = unwound_sum(&path, i);
                phi[path[i].feature] += w * (path[i].one - path[i].zero) * node.value;
            }
        }
        (Some(l), Some(r)) => {
            let (hot, cold) = if x[node.feature] <= node.threshold { (l, r) } else { (r, l) };
            let mut iz = 1.0;
            let mut io = 1.0;
            // If this feature already appears on the path, undo its entry
            // and fold its fractions into the incoming ones.
            if let Some(k) = path.iter().skip(1).position(|e| e.feature == node.feature) {
                let k = k + 1;
                iz = path[k].zero;
                io = path[k].one;
                unwind(&mut path, k);
            }
            let cover = node.cover;
            let hot_frac = nodes[hot].cover / cover;
            let cold_frac = nodes[cold].cover / cover;
            recurse(nodes, x, phi, hot, path.clone(), iz * hot_frac, io, node.feature);
            recurse(nodes, x, phi, cold, path, iz * cold_frac, 0.0, node.feature);
        }
    }
}

/// Path-dependent expected value of a tree: cover-weighted mean over leaves.
pub fn tree_expected_value(tree: &DecisionTree) -> f64 {
    fn rec(nodes: &[TreeNode], id: usize) -> f64 {
        let node = &nodes[id];
        match (node.left, node.right) {
            (Some(l), Some(r)) => {
                (nodes[l].cover * rec(nodes, l) + nodes[r].cover * rec(nodes, r)) / node.cover
            }
            _ => node.value,
        }
    }
    rec(tree.nodes(), 0)
}

/// TreeSHAP attributions for a single tree; `phi` sums with the expected
/// value to the tree's prediction for `x`.
pub fn tree_shap(tree: &DecisionTree, x: &[f64]) -> Vec<f64> {
    use xai_models::Model;
    assert_eq!(x.len(), tree.n_features(), "instance arity mismatch");
    let mut phi = vec![0.0; x.len()];
    recurse(tree.nodes(), x, &mut phi, 0, Vec::new(), 1.0, 1.0, usize::MAX);
    phi
}

/// TreeSHAP result for an ensemble.
#[derive(Clone, Debug)]
pub struct TreeShapExplanation {
    /// Per-feature attributions of the ensemble's raw output.
    pub phi: Vec<f64>,
    /// The raw-output baseline (expected value over training cover).
    pub expected_value: f64,
}

/// TreeSHAP for a GBDT: attributes the raw margin
/// `base + lr·Σ treeₖ(x)`, exploiting linearity of Shapley values.
pub fn gbdt_shap(model: &Gbdt, x: &[f64]) -> TreeShapExplanation {
    let mut phi = vec![0.0; x.len()];
    let mut expected = model.base_score();
    for tree in model.trees() {
        let tp = tree_shap(tree, x);
        for (p, t) in phi.iter_mut().zip(&tp) {
            *p += model.learning_rate() * t;
        }
        expected += model.learning_rate() * tree_expected_value(tree);
    }
    TreeShapExplanation { phi, expected_value: expected }
}

/// TreeSHAP for a random forest: the mean of per-tree attributions.
pub fn forest_shap(model: &RandomForest, x: &[f64]) -> TreeShapExplanation {
    let n = model.trees().len() as f64;
    let mut phi = vec![0.0; x.len()];
    let mut expected = 0.0;
    for tree in model.trees() {
        let tp = tree_shap(tree, x);
        for (p, t) in phi.iter_mut().zip(&tp) {
            *p += t / n;
        }
        expected += tree_expected_value(tree) / n;
    }
    TreeShapExplanation { phi, expected_value: expected }
}

/// The brute-force reference: the path-dependent conditional-expectation
/// game `v(S) = E[f(x) | x_S]` where off-coalition splits distribute
/// according to training cover. Exact Shapley values of this game equal
/// TreeSHAP's output — at exponential cost.
pub struct PathDependentGame<'a> {
    tree: &'a DecisionTree,
    instance: &'a [f64],
}

impl<'a> PathDependentGame<'a> {
    /// Builds the game for a single tree and instance.
    pub fn new(tree: &'a DecisionTree, instance: &'a [f64]) -> Self {
        Self { tree, instance }
    }

    fn cond_exp(&self, node_id: usize, coalition: &[bool]) -> f64 {
        let nodes = self.tree.nodes();
        let node = &nodes[node_id];
        match (node.left, node.right) {
            (Some(l), Some(r)) => {
                if coalition[node.feature] {
                    let next = if self.instance[node.feature] <= node.threshold { l } else { r };
                    self.cond_exp(next, coalition)
                } else {
                    (nodes[l].cover * self.cond_exp(l, coalition)
                        + nodes[r].cover * self.cond_exp(r, coalition))
                        / node.cover
                }
            }
            _ => node.value,
        }
    }
}

impl CooperativeGame for PathDependentGame<'_> {
    fn n_players(&self) -> usize {
        self.instance.len()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        self.cond_exp(0, coalition)
    }
}

/// Exact Shapley values for a tree via brute-force enumeration of the
/// path-dependent game — exponential in feature count; the E3 baseline.
pub fn brute_force_tree_shap(tree: &DecisionTree, x: &[f64]) -> Vec<f64> {
    exact_shapley(&PathDependentGame::new(tree, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::{circles, friedman1, german_credit};
    use xai_models::{GbdtConfig, Regressor, SplitCriterion, TreeConfig};

    fn fit_tree(depth: usize) -> (DecisionTree, xai_data::Dataset) {
        let data = friedman1(400, 3, 0.2);
        let tree = DecisionTree::fit(
            data.x(),
            data.y(),
            TreeConfig {
                max_depth: depth,
                criterion: SplitCriterion::Variance,
                min_samples_leaf: 5,
                ..TreeConfig::default()
            },
        );
        (tree, data)
    }

    #[test]
    fn matches_brute_force_on_many_instances() {
        let (tree, data) = fit_tree(4);
        for i in 0..12 {
            let x = data.row(i);
            let fast = tree_shap(&tree, x);
            let slow = brute_force_tree_shap(&tree, x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-8, "instance {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn local_accuracy_single_tree() {
        let (tree, data) = fit_tree(6);
        let expected = tree_expected_value(&tree);
        for i in 0..20 {
            let x = data.row(i);
            let phi = tree_shap(&tree, x);
            let total = expected + phi.iter().sum::<f64>();
            let pred = tree.predict_value(x);
            assert!((total - pred).abs() < 1e-8, "local accuracy: {total} vs {pred}");
        }
    }

    #[test]
    fn expected_value_is_cover_weighted_leaf_mean() {
        let (tree, data) = fit_tree(6);
        // For an unweighted fit this equals the training-target mean over
        // nodes reached, i.e. the root's value.
        let root_value = tree.nodes()[0].value;
        assert!((tree_expected_value(&tree) - root_value).abs() < 1e-9);
        let _ = data;
    }

    #[test]
    fn unused_features_get_zero_attribution() {
        let (tree, data) = fit_tree(3);
        let used: std::collections::HashSet<usize> = tree
            .nodes()
            .iter()
            .filter(|n| !n.is_leaf())
            .map(|n| n.feature)
            .collect();
        let phi = tree_shap(&tree, data.row(0));
        for (j, p) in phi.iter().enumerate() {
            if !used.contains(&j) {
                assert!(p.abs() < 1e-12, "feature {j} unused but got {p}");
            }
        }
    }

    #[test]
    fn gbdt_local_accuracy() {
        let data = german_credit(500, 11);
        let model = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 25, ..GbdtConfig::default() });
        for i in 0..10 {
            let x = data.row(i);
            let exp = gbdt_shap(&model, x);
            let total = exp.expected_value + exp.phi.iter().sum::<f64>();
            assert!(
                (total - model.margin(x)).abs() < 1e-8,
                "gbdt local accuracy: {total} vs {}",
                model.margin(x)
            );
        }
    }

    #[test]
    fn forest_local_accuracy() {
        let data = circles(300, 13, 0.2);
        let model = RandomForest::fit(
            data.x(),
            data.y(),
            xai_models::ForestConfig { n_trees: 12, seed: 2, ..Default::default() },
        );
        for i in 0..8 {
            let x = data.row(i);
            let exp = forest_shap(&model, x);
            let total = exp.expected_value + exp.phi.iter().sum::<f64>();
            let pred = Regressor::predict_one(&model, x);
            assert!((total - pred).abs() < 1e-8);
        }
    }

    #[test]
    fn friedman_relevant_features_dominate() {
        let data = friedman1(1500, 17, 0.2);
        let model = Gbdt::fit(
            data.x(),
            data.y(),
            GbdtConfig {
                n_rounds: 80,
                loss: xai_models::GbdtLoss::Squared,
                ..GbdtConfig::default()
            },
        );
        let mut mean_abs = vec![0.0; data.n_features()];
        for i in 0..150 {
            let exp = gbdt_shap(&model, data.row(i));
            for (m, p) in mean_abs.iter_mut().zip(&exp.phi) {
                *m += p.abs() / 150.0;
            }
        }
        let relevant: f64 = mean_abs[..5].iter().sum();
        let noise: f64 = mean_abs[5..].iter().sum();
        assert!(relevant > 10.0 * noise, "relevant {relevant} vs noise {noise}");
    }
}
