//! Edge-level Shapley credit on a causal graph, in the spirit of Shapley
//! flow (Wang, Wiens & Lundberg, §2.1.3 \[74\]).
//!
//! Instead of attributing to features (a *set*-based view), credit is
//! assigned to the **edges of the causal graph**. We realize this as a
//! cooperative game whose players are the graph's edges plus one virtual
//! *source edge* per node (carrying that node's exogenous noise): an
//! active edge transmits the instance-side message, an inactive edge leaks
//! the baseline-side message. The empty coalition reproduces the baseline
//! output and the grand coalition the instance output, so edge credits sum
//! to `f(x) − f(baseline)` exactly (efficiency at the graph boundary).
//!
//! **Semantics note.** Wang et al.'s original Shapley Flow averages over
//! depth-first *update orderings*, under which edges in series each carry
//! the full flow passing through them (pipe semantics). The edge-coalition
//! game implemented here keeps the classical Shapley axioms at the edge
//! level instead, so edges in series *share* their path's credit (a chain
//! of k edges behaves as a k-player unanimity game). Both views expose the
//! graph structure that set-based Shapley values collapse; the difference
//! is documented in DESIGN.md and asserted by the tests below.

use crate::exact::exact_shapley;
use crate::game::CooperativeGame;
use xai_data::scm::Scm;

/// A player in the flow game.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowEdge {
    /// A real DAG edge `(parent, child)`.
    Causal {
        /// Upstream node.
        parent: usize,
        /// Downstream node.
        child: usize,
    },
    /// The virtual edge feeding node `node` its own exogenous noise.
    Source {
        /// The node whose noise this edge carries.
        node: usize,
    },
}

/// Result of a Shapley-flow computation.
#[derive(Clone, Debug)]
pub struct ShapleyFlow {
    /// The edge players in a fixed order.
    pub edges: Vec<FlowEdge>,
    /// Shapley value of each edge (credit flowing along it).
    pub credit: Vec<f64>,
    /// `f(baseline)`.
    pub baseline_output: f64,
    /// `f(instance)`.
    pub instance_output: f64,
}

impl ShapleyFlow {
    /// Credit of a specific causal edge, if present.
    pub fn edge_credit(&self, parent: usize, child: usize) -> Option<f64> {
        self.edges
            .iter()
            .position(|e| matches!(e, FlowEdge::Causal { parent: p, child: c } if *p == parent && *c == child))
            .map(|i| self.credit[i])
    }

    /// Credit of a node's source (noise) edge, if present.
    pub fn source_credit(&self, node: usize) -> Option<f64> {
        self.edges
            .iter()
            .position(|e| matches!(e, FlowEdge::Source { node: n } if *n == node))
            .map(|i| self.credit[i])
    }
}

struct FlowGame<'a> {
    scm: &'a Scm,
    model: &'a dyn Fn(&[f64]) -> f64,
    feature_nodes: &'a [usize],
    edges: Vec<FlowEdge>,
    instance_noise: Vec<f64>,
    baseline_noise: Vec<f64>,
}

impl FlowGame<'_> {
    fn evaluate(&self, active: &[bool]) -> f64 {
        let n = self.scm.n_nodes();
        // Baseline world, fully propagated (messages an inactive edge leaks).
        let baseline_values = self.scm.evaluate(&self.baseline_noise, &[]);
        let mut values = vec![0.0; n];
        for (node_id, node) in self.scm.nodes().iter().enumerate() {
            // Which noise does this node see?
            let source_active = self
                .edges
                .iter()
                .zip(active)
                .any(|(e, &a)| a && matches!(e, FlowEdge::Source { node } if *node == node_id));
            let noise = if source_active {
                self.instance_noise[node_id]
            } else {
                self.baseline_noise[node_id]
            };
            // Parent messages: computed value when the edge is active,
            // baseline value otherwise.
            let mut mixed = baseline_values.clone();
            for &p in node.mechanism.parents() {
                let edge_active = self.edges.iter().zip(active).any(|(e, &a)| {
                    a && matches!(e, FlowEdge::Causal { parent, child } if *parent == p && *child == node_id)
                });
                mixed[p] = if edge_active { values[p] } else { baseline_values[p] };
            }
            values[node_id] = node.mechanism.evaluate(&mixed, noise);
        }
        let features: Vec<f64> = self.feature_nodes.iter().map(|&i| values[i]).collect();
        (self.model)(&features)
    }
}

impl CooperativeGame for FlowGame<'_> {
    fn n_players(&self) -> usize {
        self.edges.len()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        self.evaluate(coalition)
    }
}

/// Computes exact Shapley flow for a (small) SCM: players are every causal
/// edge plus one source edge per node, enumerated exhaustively.
///
/// `instance` and `baseline` are full node-value observations; the SCM must
/// be continuous (abduction-exact) for both.
///
/// # Panics
/// Panics when the total edge count exceeds 16 (enumeration is `2^E`) or
/// when abduction fails.
pub fn shapley_flow(
    scm: &Scm,
    model: &dyn Fn(&[f64]) -> f64,
    feature_nodes: &[usize],
    instance: &[f64],
    baseline: &[f64],
) -> ShapleyFlow {
    let mut edges: Vec<FlowEdge> = scm
        .edges()
        .into_iter()
        .map(|(parent, child)| FlowEdge::Causal { parent, child })
        .collect();
    for node in 0..scm.n_nodes() {
        edges.push(FlowEdge::Source { node });
    }
    assert!(
        edges.len() <= 16,
        "Shapley flow enumerates 2^E coalitions; {} edges is too many",
        edges.len()
    );
    // Abduction on continuous SCMs is deterministic; the RNG is unused.
    let mut rng = xai_rand::rngs::StdRng::seed_from_u64(0);
    use xai_rand::SeedableRng;
    let instance_noise = scm.abduct(instance, &mut rng).expect("instance abduction");
    let baseline_noise = scm.abduct(baseline, &mut rng).expect("baseline abduction");
    let game = FlowGame {
        scm,
        model,
        feature_nodes,
        edges: edges.clone(),
        instance_noise,
        baseline_noise,
    };
    let credit = exact_shapley(&game);
    let baseline_output = game.empty_value();
    let instance_output = game.grand_value();
    ShapleyFlow { edges, credit, baseline_output, instance_output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::scm::{Mechanism, Node};

    /// x → z → (model reads z); plus an isolated nuisance node w.
    fn chain_scm() -> Scm {
        Scm::new(vec![
            Node { name: "x".into(), mechanism: Mechanism::Exogenous { mean: 0.0, std: 1.0 } },
            Node {
                name: "z".into(),
                mechanism: Mechanism::Linear {
                    parents: vec![0],
                    weights: vec![2.0],
                    bias: 0.0,
                    noise_std: 1.0,
                },
            },
            Node { name: "w".into(), mechanism: Mechanism::Exogenous { mean: 5.0, std: 1.0 } },
        ])
        .unwrap()
    }

    #[test]
    fn efficiency_equals_output_difference() {
        let scm = chain_scm();
        let model = |f: &[f64]| 3.0 * f[1] + f[2]; // reads z and w
        let instance = [1.0, 2.5, 6.0];
        let baseline = [0.0, 0.0, 5.0];
        let flow = shapley_flow(&scm, &model, &[0, 1, 2], &instance, &baseline);
        let total: f64 = flow.credit.iter().sum();
        assert!((flow.instance_output - model(&instance)).abs() < 1e-9);
        assert!((flow.baseline_output - model(&baseline)).abs() < 1e-9);
        assert!((total - (flow.instance_output - flow.baseline_output)).abs() < 1e-9);
    }

    #[test]
    fn credit_flows_along_the_causal_chain() {
        let scm = chain_scm();
        let model = |f: &[f64]| f[1]; // reads z only
        // Instance: x=1 (noise +1), z = 2·1 + 0.5; baseline all-zero noise.
        let instance = [1.0, 2.5, 5.0];
        let baseline = [0.0, 0.0, 5.0];
        let flow = shapley_flow(&scm, &model, &[0, 1, 2], &instance, &baseline);
        // Δz caused by x is 2.0, carried jointly by the series pair
        // {source→x, x→z}: a 2-player unanimity game, 1.0 each. z's own
        // source edge carries the residual 0.5 alone.
        let xz = flow.edge_credit(0, 1).unwrap();
        let x_src = flow.source_credit(0).unwrap();
        let z_src = flow.source_credit(1).unwrap();
        assert!((xz - 1.0).abs() < 1e-9, "x→z credit {xz}");
        assert!((x_src - 1.0).abs() < 1e-9, "x source credit {x_src}");
        assert!((z_src - 0.5).abs() < 1e-9, "z source credit {z_src}");
        // The nuisance node w is identical in both worlds: zero credit.
        assert!(flow.source_credit(2).unwrap().abs() < 1e-12);
    }

    #[test]
    fn all_source_edges_present() {
        let scm = chain_scm();
        let model = |f: &[f64]| f[0];
        let flow = shapley_flow(&scm, &model, &[0, 1, 2], &[0.0, 0.0, 5.0], &[0.0, 0.0, 5.0]);
        assert_eq!(flow.edges.len(), scm.edges().len() + scm.n_nodes());
        // Identical instance/baseline ⇒ all credits zero.
        assert!(flow.credit.iter().all(|c| c.abs() < 1e-12));
    }
}
