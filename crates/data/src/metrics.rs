//! Evaluation metrics for the models and for valuation experiments.
//!
//! Data-valuation methods (§2.3.1) are defined *with respect to a
//! performance metric*; these are the metrics they plug in.

/// Classification accuracy of hard predictions against 0/1 labels.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true
        .iter()
        .zip(y_pred)
        .filter(|(t, p)| (**t >= 0.5) == (**p >= 0.5))
        .count();
    hits as f64 / y_true.len() as f64
}

/// Confusion counts for binary classification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Builds the confusion matrix from labels and hard predictions.
    pub fn from_predictions(y_true: &[f64], y_pred: &[f64]) -> Self {
        assert_eq!(y_true.len(), y_pred.len());
        let mut c = Confusion::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            match (t >= 0.5, p >= 0.5) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision; 0 when no positives are predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall; 0 when there are no positive labels.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score; 0 when precision+recall is 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Area under the ROC curve from scores (probabilities or margins).
///
/// Computed as the Mann–Whitney U statistic with tie correction; 0.5 when
/// either class is absent.
pub fn auc_roc(y_true: &[f64], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len());
    let n_pos = y_true.iter().filter(|&&t| t >= 0.5).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let ranks = xai_linalg::stats::ranks(scores);
    let rank_sum_pos: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t >= 0.5)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Binary cross-entropy of predicted probabilities (clamped for stability).
pub fn log_loss(y_true: &[f64], probs: &[f64]) -> f64 {
    assert_eq!(y_true.len(), probs.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let total: f64 = y_true
        .iter()
        .zip(probs)
        .map(|(&t, &p)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum();
    total / y_true.len() as f64
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Demographic-parity gap: |P(ŷ=1 | g=1) − P(ŷ=1 | g=0)| for a binary
/// protected group column. Used by the audit example and the attack
/// experiment to quantify how biased a model actually is.
pub fn demographic_parity_gap(y_pred: &[f64], group: &[f64]) -> f64 {
    assert_eq!(y_pred.len(), group.len());
    let mut pos = [0.0f64; 2];
    let mut cnt = [0.0f64; 2];
    for (&p, &g) in y_pred.iter().zip(group) {
        let gi = usize::from(g >= 0.5);
        cnt[gi] += 1.0;
        if p >= 0.5 {
            pos[gi] += 1.0;
        }
    }
    if cnt[0] == 0.0 || cnt[1] == 0.0 {
        return 0.0;
    }
    (pos[1] / cnt[1] - pos[0] / cnt[0]).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0, 0.0], &[1.0, 0.0, 0.0, 0.0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_and_f1() {
        let c = Confusion::from_predictions(&[1.0, 1.0, 0.0, 0.0, 1.0], &[1.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_random_inverted() {
        let y = [0.0, 0.0, 1.0, 1.0];
        assert!((auc_roc(&y, &[0.1, 0.2, 0.8, 0.9]) - 1.0).abs() < 1e-12);
        assert!((auc_roc(&y, &[0.9, 0.8, 0.2, 0.1]) - 0.0).abs() < 1e-12);
        assert!((auc_roc(&y, &[0.5, 0.5, 0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert_eq!(auc_roc(&[1.0, 1.0], &[0.3, 0.4]), 0.5); // one class absent
    }

    #[test]
    fn log_loss_behaviour() {
        let y = [1.0, 0.0];
        let good = log_loss(&y, &[0.99, 0.01]);
        let bad = log_loss(&y, &[0.01, 0.99]);
        assert!(good < 0.05);
        assert!(bad > 3.0);
        // Degenerate probabilities do not produce infinities.
        assert!(log_loss(&y, &[1.0, 0.0]).is_finite());
    }

    #[test]
    fn regression_metrics() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((mse(&t, &p) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (4.0_f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parity_gap() {
        // Group 1 always approved, group 0 never.
        let pred = [1.0, 1.0, 0.0, 0.0];
        let grp = [1.0, 1.0, 0.0, 0.0];
        assert!((demographic_parity_gap(&pred, &grp) - 1.0).abs() < 1e-12);
        // Equal rates ⇒ zero gap.
        let pred2 = [1.0, 0.0, 1.0, 0.0];
        assert!(demographic_parity_gap(&pred2, &grp).abs() < 1e-12);
    }
}
