//! Synthetic dataset generators.
//!
//! **Substitution note (see DESIGN.md §2).** The methods surveyed by the
//! tutorial are standardly evaluated on Adult, German Credit and COMPAS.
//! Those exact files are not available offline, so each generator below
//! produces a seeded synthetic population with the same schema shape —
//! mixed numeric/categorical features, realistic correlations, a noisy
//! logistic label mechanism, and (for the audit experiments) an explicit,
//! *known* injected bias. Knowing the true mechanism is what lets the test
//! suite assert that explainers recover it.

use crate::dataset::{Dataset, Task};
use crate::schema::{Feature, Mutability, Schema};
use crate::scm::{sigmoid, LabeledScm, Mechanism, Node, Scm};
use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_linalg::distr::{bernoulli, categorical, normal};
use xai_linalg::Matrix;

/// German-Credit-like loan dataset.
///
/// Features (true label mechanism in parentheses; positive label = "good
/// credit"): higher income/savings and longer employment help; larger
/// loans, longer duration and prior defaults hurt; `sex` is protected and
/// has **zero** true effect — any model that uses it has learned a bias.
pub fn german_credit(n: usize, seed: u64) -> Dataset {
    let schema = Schema::new(
        vec![
            Feature::numeric("age", 18.0, 80.0).with_mutability(Mutability::IncreaseOnly),
            Feature::numeric("income", 0.0, 20_000.0),
            Feature::numeric("savings", 0.0, 100_000.0),
            Feature::numeric("loan_amount", 100.0, 50_000.0),
            Feature::numeric("duration_months", 3.0, 72.0),
            Feature::numeric("employment_years", 0.0, 50.0).with_mutability(Mutability::IncreaseOnly),
            Feature::numeric("n_defaults", 0.0, 10.0).with_mutability(Mutability::DecreaseOnly),
            Feature::categorical("housing", &["own", "rent", "free"]),
            Feature::categorical("sex", &["female", "male"]).protected(),
        ],
        "good_credit",
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, schema.n_features());
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let age = normal(&mut rng, 38.0, 11.0).clamp(18.0, 80.0).round();
        // Income correlates with age (experience premium).
        let income = (normal(&mut rng, 2500.0, 900.0) + (age - 30.0) * 25.0).clamp(0.0, 20_000.0);
        let savings = (income * normal(&mut rng, 4.0, 2.0)).clamp(0.0, 100_000.0);
        let loan = normal(&mut rng, 8000.0, 4000.0).clamp(100.0, 50_000.0);
        let duration = normal(&mut rng, 24.0, 12.0).clamp(3.0, 72.0).round();
        let employment = ((age - 18.0) * rng.gen::<f64>()).clamp(0.0, 50.0).round();
        let defaults = categorical(&mut rng, &[60.0, 25.0, 10.0, 4.0, 1.0]) as f64;
        let housing = categorical(&mut rng, &[50.0, 40.0, 10.0]) as f64;
        let sex = f64::from(bernoulli(&mut rng, 0.5));
        let row = [age, income, savings, loan, duration, employment, defaults, housing, sex];
        x.row_mut(i).copy_from_slice(&row);
        let score = 0.0008 * income + 0.00004 * savings - 0.00012 * loan - 0.03 * duration
            + 0.08 * employment
            - 0.9 * defaults
            + if housing == 0.0 { 0.4 } else { 0.0 }
            - 0.3;
        y.push(f64::from(bernoulli(&mut rng, sigmoid(score))));
    }
    Dataset::new(schema, x, y, Task::BinaryClassification)
}

/// Adult-Census-like income dataset; positive label = "income > 50k".
///
/// True mechanism uses education, hours, age and capital gain;
/// `sex` is protected with zero true effect.
pub fn adult_income(n: usize, seed: u64) -> Dataset {
    let schema = Schema::new(
        vec![
            Feature::numeric("age", 17.0, 90.0).with_mutability(Mutability::IncreaseOnly),
            Feature::numeric("education_years", 1.0, 20.0).with_mutability(Mutability::IncreaseOnly),
            Feature::numeric("hours_per_week", 1.0, 99.0),
            Feature::numeric("capital_gain", 0.0, 99_999.0),
            Feature::categorical("occupation", &["service", "admin", "technical", "professional"]),
            Feature::categorical("marital", &["single", "married", "divorced"]),
            Feature::categorical("sex", &["female", "male"]).protected(),
        ],
        "income_gt_50k",
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, schema.n_features());
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let age = normal(&mut rng, 39.0, 13.0).clamp(17.0, 90.0).round();
        let edu = normal(&mut rng, 10.0, 3.0).clamp(1.0, 20.0).round();
        // Professionals work slightly longer weeks, education drives occupation.
        let occ_weights = [
            (16.0 - edu).max(1.0),
            8.0,
            edu.max(1.0),
            (edu - 8.0).max(0.5) * 2.0,
        ];
        let occupation = categorical(&mut rng, &occ_weights) as f64;
        let hours = (normal(&mut rng, 40.0, 10.0) + occupation * 1.5).clamp(1.0, 99.0).round();
        let gain = if bernoulli(&mut rng, 0.08) {
            normal(&mut rng, 12_000.0, 8_000.0).clamp(0.0, 99_999.0)
        } else {
            0.0
        };
        let marital = categorical(&mut rng, &[40.0, 45.0, 15.0]) as f64;
        let sex = f64::from(bernoulli(&mut rng, 0.5));
        let row = [age, edu, hours, gain, occupation, marital, sex];
        x.row_mut(i).copy_from_slice(&row);
        let score = 0.25 * (edu - 10.0) + 0.03 * (age - 39.0) + 0.04 * (hours - 40.0)
            + 0.00008 * gain
            + 0.5 * occupation
            + if marital == 1.0 { 0.6 } else { 0.0 }
            - 1.4;
        y.push(f64::from(bernoulli(&mut rng, sigmoid(score))));
    }
    Dataset::new(schema, x, y, Task::BinaryClassification)
}

/// COMPAS-like recidivism dataset with a **deliberately injected bias**.
///
/// `bias_strength` adds a direct dependence of the label on the protected
/// `group` attribute. The audit examples/experiments use a non-zero value
/// and then check that data-valuation, attack and fairness tooling surface
/// it; pass `0.0` for an unbiased control population.
pub fn recidivism(n: usize, seed: u64, bias_strength: f64) -> Dataset {
    let schema = Schema::new(
        vec![
            Feature::numeric("age", 18.0, 75.0).with_mutability(Mutability::IncreaseOnly),
            Feature::numeric("priors_count", 0.0, 30.0).with_mutability(Mutability::DecreaseOnly),
            Feature::numeric("days_in_custody", 0.0, 1000.0),
            Feature::categorical("charge_degree", &["misdemeanor", "felony"]),
            Feature::categorical("group", &["group_a", "group_b"]).protected(),
        ],
        "reoffend",
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, schema.n_features());
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let group = f64::from(bernoulli(&mut rng, 0.5));
        let age = normal(&mut rng, 33.0, 9.0).clamp(18.0, 75.0).round();
        let priors = (normal(&mut rng, 2.0, 2.5) + group * 0.5).clamp(0.0, 30.0).round();
        let custody = (priors * 30.0 + normal(&mut rng, 50.0, 60.0)).clamp(0.0, 1000.0).round();
        let felony = f64::from(bernoulli(&mut rng, 0.35 + 0.02 * priors.min(10.0)));
        let row = [age, priors, custody, felony, group];
        x.row_mut(i).copy_from_slice(&row);
        let score = 0.25 * priors - 0.045 * (age - 33.0) + 0.5 * felony + 0.002 * custody
            + bias_strength * group
            - 1.0;
        y.push(f64::from(bernoulli(&mut rng, sigmoid(score))));
    }
    Dataset::new(schema, x, y, Task::BinaryClassification)
}

/// Friedman #1 regression benchmark:
/// `y = 10 sin(π x₁ x₂) + 20 (x₃ − ½)² + 10 x₄ + 5 x₅ + σ ε`,
/// with 5 additional pure-noise features. Features 0–4 matter, 5–9 do not —
/// a built-in ground truth for feature-attribution sanity checks.
pub fn friedman1(n: usize, seed: u64, noise_std: f64) -> Dataset {
    let d = 10;
    let features = (0..d)
        .map(|j| Feature::numeric(&format!("x{j}"), 0.0, 1.0))
        .collect();
    let schema = Schema::new(features, "y");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
        let target = 10.0 * (std::f64::consts::PI * row[0] * row[1]).sin()
            + 20.0 * (row[2] - 0.5).powi(2)
            + 10.0 * row[3]
            + 5.0 * row[4]
            + noise_std * normal(&mut rng, 0.0, 1.0);
        x.row_mut(i).copy_from_slice(&row);
        y.push(target);
    }
    Dataset::new(schema, x, y, Task::Regression)
}

/// Fully-controlled linear-Gaussian classification data:
/// `P(y=1|x) = σ(w·x + b)` with iid standard-normal features.
///
/// The exact-recovery target for logistic regression, influence functions
/// and Shapley efficiency tests.
pub fn linear_gaussian(n: usize, weights: &[f64], bias: f64, seed: u64) -> Dataset {
    let d = weights.len();
    let features = (0..d)
        .map(|j| Feature::numeric(&format!("x{j}"), -6.0, 6.0))
        .collect();
    let schema = Schema::new(features, "y");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<f64> = (0..d).map(|_| normal(&mut rng, 0.0, 1.0).clamp(-6.0, 6.0)).collect();
        let score = xai_linalg::dot(weights, &row) + bias;
        x.row_mut(i).copy_from_slice(&row);
        y.push(f64::from(bernoulli(&mut rng, sigmoid(score))));
    }
    Dataset::new(schema, x, y, Task::BinaryClassification)
}


/// Correlated-Gaussian classification data: features drawn from
/// `N(0, Σ)` with `Σ[i][j] = ρ^{|i−j|}` (AR(1) structure), labels from a
/// logistic mechanism. The testbed for the observational-vs-interventional
/// conditioning debate (conditional SHAP, §2.1.2–2.1.3 critiques).
pub fn correlated_gaussian(n: usize, weights: &[f64], rho: f64, bias: f64, seed: u64) -> Dataset {
    use xai_linalg::distr::MultivariateNormal;
    let d = weights.len();
    assert!(rho.abs() < 1.0, "|rho| must be < 1");
    let cov = xai_linalg::Matrix::from_fn(d, d, |i, j| rho.powi((i as i32 - j as i32).abs()));
    let mvn = MultivariateNormal::new(vec![0.0; d], &cov).expect("AR(1) covariance is PD");
    let features = (0..d)
        .map(|j| Feature::numeric(&format!("x{j}"), -8.0, 8.0))
        .collect();
    let schema = Schema::new(features, "y");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<f64> = mvn.sample(&mut rng).into_iter().map(|v| v.clamp(-8.0, 8.0)).collect();
        let score = xai_linalg::dot(weights, &row) + bias;
        x.row_mut(i).copy_from_slice(&row);
        y.push(f64::from(bernoulli(&mut rng, sigmoid(score))));
    }
    Dataset::new(schema, x, y, Task::BinaryClassification)
}

/// Two concentric rings — a dataset no linear model can fit, used to
/// exercise tree/forest/boosting explainers on a genuinely non-linear
/// decision surface.
pub fn circles(n: usize, seed: u64, noise_std: f64) -> Dataset {
    let schema = Schema::new(
        vec![
            Feature::numeric("x0", -3.0, 3.0),
            Feature::numeric("x1", -3.0, 3.0),
        ],
        "outer_ring",
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, 2);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let outer = bernoulli(&mut rng, 0.5);
        let radius = if outer { 2.0 } else { 0.8 };
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        let px = (radius * theta.cos() + normal(&mut rng, 0.0, noise_std)).clamp(-3.0, 3.0);
        let py = (radius * theta.sin() + normal(&mut rng, 0.0, noise_std)).clamp(-3.0, 3.0);
        x.row_mut(i).copy_from_slice(&[px, py]);
        y.push(f64::from(outer));
    }
    Dataset::new(schema, x, y, Task::BinaryClassification)
}

/// A small credit SCM with a confounded, indirect structure for the causal
/// experiments (E11, E16):
///
/// ```text
/// education ──▶ income ──▶ savings ──▶ approved
///      │                      ▲
///      └──────────────────────┘           (education also → savings)
/// ```
///
/// Direct and indirect effects are both known in closed form, so causal
/// Shapley / Shapley-flow outputs can be checked for direction and split.
pub fn credit_scm() -> LabeledScm {
    let scm = Scm::new(vec![
        Node {
            name: "education".into(),
            mechanism: Mechanism::Exogenous { mean: 12.0, std: 2.5 },
        },
        Node {
            name: "income".into(),
            mechanism: Mechanism::Linear {
                parents: vec![0],
                weights: vec![0.4],
                bias: 0.0,
                noise_std: 0.8,
            },
        },
        Node {
            name: "savings".into(),
            mechanism: Mechanism::Linear {
                parents: vec![0, 1],
                weights: vec![0.2, 0.9],
                bias: -1.0,
                noise_std: 0.6,
            },
        },
        Node {
            name: "approved".into(),
            mechanism: Mechanism::Bernoulli {
                parents: vec![1, 2],
                weights: vec![0.6, 0.8],
                bias: -7.5,
            },
        },
    ])
    .expect("valid SCM");
    LabeledScm { scm, feature_nodes: vec![0, 1, 2], label_node: 3 }
}

/// Samples a [`Dataset`] from the credit SCM.
pub fn credit_scm_dataset(n: usize, seed: u64) -> Dataset {
    let labeled = credit_scm();
    let mut rng = StdRng::seed_from_u64(seed);
    let (xs, ys) = labeled.sample_examples(&mut rng, n);
    let schema = Schema::new(
        vec![
            Feature::numeric("education", 0.0, 25.0).with_mutability(Mutability::IncreaseOnly),
            Feature::numeric("income", -10.0, 30.0),
            Feature::numeric("savings", -10.0, 40.0),
        ],
        "approved",
    );
    let d = schema.n_features();
    let mut x = Matrix::zeros(n, d);
    for (i, row) in xs.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            // Clamp into schema bounds (tails are astronomically rare).
            let (min, max) = match schema.feature(j).kind {
                crate::schema::FeatureKind::Numeric { min, max } => (min, max),
                _ => unreachable!(),
            };
            x[(i, j)] = v.clamp(min, max);
        }
    }
    Dataset::new(schema, x, ys, Task::BinaryClassification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use xai_linalg::stats::pearson;

    #[test]
    fn german_credit_shape_and_determinism() {
        let d1 = german_credit(500, 42);
        let d2 = german_credit(500, 42);
        assert_eq!(d1.n_rows(), 500);
        assert_eq!(d1.n_features(), 9);
        assert_eq!(d1.x().as_slice(), d2.x().as_slice());
        assert_eq!(d1.y(), d2.y());
        let d3 = german_credit(500, 43);
        assert_ne!(d1.x().as_slice(), d3.x().as_slice());
        // Label balance is sane.
        assert!(d1.positive_rate() > 0.15 && d1.positive_rate() < 0.85);
        // Every row satisfies its schema.
        for i in 0..d1.n_rows() {
            d1.schema().validate_row(d1.row(i)).unwrap();
        }
    }

    #[test]
    fn german_credit_correlations() {
        let d = german_credit(4000, 1);
        let age = d.x().col(0);
        let income = d.x().col(1);
        assert!(pearson(&age, &income) > 0.1, "income should grow with age");
        // Defaults hurt the label.
        let defaults = d.x().col(6);
        assert!(pearson(&defaults, &d.y().to_vec()) < -0.1);
        // Sex has no true effect.
        let sex = d.x().col(8);
        assert!(pearson(&sex, &d.y().to_vec()).abs() < 0.06);
    }

    #[test]
    fn adult_income_valid() {
        let d = adult_income(800, 7);
        assert_eq!(d.n_features(), 7);
        for i in 0..d.n_rows() {
            d.schema().validate_row(d.row(i)).unwrap();
        }
        let edu = d.x().col(1);
        assert!(pearson(&edu, &d.y().to_vec()) > 0.15, "education drives income");
    }

    #[test]
    fn recidivism_bias_knob() {
        let biased = recidivism(4000, 3, 1.5);
        let fair = recidivism(4000, 3, 0.0);
        let gap = |d: &Dataset| {
            crate::metrics::demographic_parity_gap(d.y(), &d.x().col(4))
        };
        assert!(gap(&biased) > gap(&fair) + 0.1, "bias knob must move the parity gap");
    }

    #[test]
    fn friedman_relevant_features_correlate() {
        let d = friedman1(3000, 11, 0.1);
        let y: Vec<f64> = d.y().to_vec();
        // x3 enters linearly with weight 10 — strongest marginal signal.
        assert!(pearson(&d.x().col(3), &y) > 0.4);
        // Noise features are uncorrelated.
        for j in 5..10 {
            assert!(pearson(&d.x().col(j), &y).abs() < 0.08, "x{j} should be noise");
        }
    }

    #[test]
    fn linear_gaussian_is_learnable_by_its_own_mechanism() {
        let w = [2.0, -1.0, 0.0];
        let d = linear_gaussian(2000, &w, 0.3, 5);
        // Bayes predictions from the true mechanism beat chance comfortably.
        let preds: Vec<f64> = (0..d.n_rows())
            .map(|i| f64::from(sigmoid(xai_linalg::dot(&w, d.row(i)) + 0.3) >= 0.5))
            .collect();
        assert!(accuracy(d.y(), &preds) > 0.75);
    }

    #[test]
    fn circles_not_linearly_separable() {
        let d = circles(1000, 2, 0.1);
        // Each single coordinate is uninformative...
        assert!(pearson(&d.x().col(0), &d.y().to_vec()).abs() < 0.1);
        // ...but radius separates the classes perfectly (modulo noise).
        let radius: Vec<f64> = (0..d.n_rows())
            .map(|i| (d.row(i)[0].powi(2) + d.row(i)[1].powi(2)).sqrt())
            .collect();
        assert!(pearson(&radius, &d.y().to_vec()) > 0.9);
    }

    #[test]
    fn correlated_gaussian_has_ar1_structure() {
        let d = correlated_gaussian(6000, &[1.0, 0.0, 0.0], 0.8, 0.0, 3);
        let c01 = pearson(&d.x().col(0), &d.x().col(1));
        let c02 = pearson(&d.x().col(0), &d.x().col(2));
        assert!((c01 - 0.8).abs() < 0.05, "lag-1 correlation {c01}");
        assert!((c02 - 0.64).abs() < 0.06, "lag-2 correlation {c02}");
    }

    #[test]
    fn credit_scm_dataset_valid() {
        let d = credit_scm_dataset(1500, 21);
        assert_eq!(d.n_features(), 3);
        let income = d.x().col(1);
        let savings = d.x().col(2);
        assert!(pearson(&income, &savings) > 0.5, "mechanism couples income and savings");
        assert!(d.positive_rate() > 0.05 && d.positive_rate() < 0.95);
        let order = credit_scm().causal_feature_order();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
