//! Structural causal models (SCMs).
//!
//! The causal explanation methods of §2.1.3 and §2.1.4 (asymmetric Shapley
//! values, causal Shapley values, Shapley flow, LEWIS-style probabilistic
//! contrastive counterfactuals) all need a causal substrate supporting
//! three queries:
//!
//! 1. **observational** sampling from the joint distribution,
//! 2. **interventional** sampling under `do(X_S = x_S)`,
//! 3. **counterfactual** inference by abduction–action–prediction
//!    (Pearl's three-step recipe), which requires recoverable exogenous
//!    noise.
//!
//! Mechanisms are additive-noise linear functions or Bernoulli
//! (logistic-CDF) nodes, which keeps abduction exact for continuous nodes
//! and posterior-consistent for binary nodes.

use xai_rand::Rng;
use xai_linalg::distr::standard_normal;
use xai_linalg::dot;

/// The structural equation attached to one node.
#[derive(Clone, Debug)]
pub enum Mechanism {
    /// Root node: `x = mean + std · u`, `u ~ N(0,1)`.
    Exogenous {
        /// Mean of the node.
        mean: f64,
        /// Standard deviation of the node.
        std: f64,
    },
    /// Additive-noise linear node: `x = bias + w·parents + noise_std · u`.
    Linear {
        /// Parent node indices (must precede this node).
        parents: Vec<usize>,
        /// Coefficients, one per parent.
        weights: Vec<f64>,
        /// Intercept.
        bias: f64,
        /// Noise scale; 0 makes the node deterministic.
        noise_std: f64,
    },
    /// Binary node: `x = 1 if u < σ(bias + w·parents)`, `u ~ U(0,1)`.
    Bernoulli {
        /// Parent node indices (must precede this node).
        parents: Vec<usize>,
        /// Coefficients, one per parent.
        weights: Vec<f64>,
        /// Intercept in logit space.
        bias: f64,
    },
}

impl Mechanism {
    /// Parent indices of this mechanism.
    pub fn parents(&self) -> &[usize] {
        match self {
            Mechanism::Exogenous { .. } => &[],
            Mechanism::Linear { parents, .. } => parents,
            Mechanism::Bernoulli { parents, .. } => parents,
        }
    }

    fn gather(parents: &[usize], values: &[f64]) -> Vec<f64> {
        parents.iter().map(|&p| values[p]).collect()
    }

    /// Evaluates the mechanism given upstream values and this node's noise.
    pub fn evaluate(&self, values: &[f64], noise: f64) -> f64 {
        match self {
            Mechanism::Exogenous { mean, std } => mean + std * noise,
            Mechanism::Linear { parents, weights, bias, noise_std } => {
                let pv = Self::gather(parents, values);
                bias + dot(weights, &pv) + noise_std * noise
            }
            Mechanism::Bernoulli { parents, weights, bias } => {
                let pv = Self::gather(parents, values);
                let p = sigmoid(bias + dot(weights, &pv));
                f64::from(noise < p)
            }
        }
    }

    /// Probability of the positive class for Bernoulli nodes.
    pub fn bernoulli_prob(&self, values: &[f64]) -> Option<f64> {
        match self {
            Mechanism::Bernoulli { parents, weights, bias } => {
                let pv = Self::gather(parents, values);
                Some(sigmoid(bias + dot(weights, &pv)))
            }
            _ => None,
        }
    }
}

/// Numerically-stable logistic function.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A named node in the SCM.
#[derive(Clone, Debug)]
pub struct Node {
    /// Variable name.
    pub name: String,
    /// Its structural equation.
    pub mechanism: Mechanism,
}

/// An intervention `do(node = value)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Intervention {
    /// Target node index.
    pub node: usize,
    /// Forced value.
    pub value: f64,
}

/// A structural causal model over nodes in topological order.
#[derive(Clone, Debug)]
pub struct Scm {
    nodes: Vec<Node>,
}

impl Scm {
    /// Builds an SCM, validating that parents always precede children
    /// (i.e. the node list is a topological order of the DAG).
    pub fn new(nodes: Vec<Node>) -> Result<Self, String> {
        for (i, node) in nodes.iter().enumerate() {
            for &p in node.mechanism.parents() {
                if p >= i {
                    return Err(format!(
                        "node {i} ('{}') has parent {p} that does not precede it",
                        node.name
                    ));
                }
            }
            if let Mechanism::Linear { parents, weights, .. }
            | Mechanism::Bernoulli { parents, weights, .. } = &node.mechanism
            {
                if parents.len() != weights.len() {
                    return Err(format!(
                        "node {i} ('{}') has {} parents but {} weights",
                        node.name,
                        parents.len(),
                        weights.len()
                    ));
                }
            }
        }
        Ok(Self { nodes })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Draws one exogenous-noise vector (standard normal for continuous
    /// nodes, uniform for Bernoulli nodes).
    pub fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.nodes
            .iter()
            .map(|n| match n.mechanism {
                Mechanism::Bernoulli { .. } => rng.gen::<f64>(),
                _ => standard_normal(rng),
            })
            .collect()
    }

    /// Deterministically evaluates all nodes given a noise vector and an
    /// optional set of interventions.
    pub fn evaluate(&self, noise: &[f64], interventions: &[Intervention]) -> Vec<f64> {
        assert_eq!(noise.len(), self.nodes.len(), "noise arity mismatch");
        let mut values = vec![0.0; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(iv) = interventions.iter().find(|iv| iv.node == i) {
                values[i] = iv.value;
            } else {
                values[i] = node.mechanism.evaluate(&values, noise[i]);
            }
        }
        values
    }

    /// Samples the observational distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let noise = self.sample_noise(rng);
        self.evaluate(&noise, &[])
    }

    /// Samples under `do(interventions)`.
    pub fn sample_do<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        interventions: &[Intervention],
    ) -> Vec<f64> {
        let noise = self.sample_noise(rng);
        self.evaluate(&noise, interventions)
    }

    /// Abduction: recovers an exogenous-noise vector consistent with a full
    /// observation. Exact for continuous nodes; for Bernoulli nodes the
    /// noise posterior is an interval, from which one value is drawn with
    /// `rng` (call repeatedly for Monte-Carlo counterfactuals).
    ///
    /// Returns an error when a deterministic node (noise scale 0) is
    /// observed at a value its mechanism cannot produce.
    pub fn abduct<R: Rng + ?Sized>(
        &self,
        observed: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, String> {
        assert_eq!(observed.len(), self.nodes.len(), "observation arity mismatch");
        let mut noise = vec![0.0; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            match &node.mechanism {
                Mechanism::Exogenous { mean, std } => {
                    noise[i] = if *std > 0.0 { (observed[i] - mean) / std } else { 0.0 };
                }
                Mechanism::Linear { parents, weights, bias, noise_std } => {
                    let pv: Vec<f64> = parents.iter().map(|&p| observed[p]).collect();
                    let det = bias + dot(weights, &pv);
                    if *noise_std > 0.0 {
                        noise[i] = (observed[i] - det) / noise_std;
                    } else if (observed[i] - det).abs() > 1e-9 {
                        return Err(format!(
                            "deterministic node '{}' observed at {} but mechanism yields {}",
                            node.name, observed[i], det
                        ));
                    }
                }
                Mechanism::Bernoulli { .. } => {
                    let p = node
                        .mechanism
                        .bernoulli_prob(observed)
                        .expect("bernoulli node");
                    // u < p produces 1; u >= p produces 0.
                    noise[i] = if observed[i] >= 0.5 {
                        rng.gen::<f64>() * p
                    } else {
                        p + rng.gen::<f64>() * (1.0 - p)
                    };
                }
            }
        }
        Ok(noise)
    }

    /// Full counterfactual query: given an observation, what would the world
    /// have looked like under `do(interventions)`? One Monte-Carlo draw; the
    /// continuous part is exact, Bernoulli noise is sampled from its
    /// posterior.
    pub fn counterfactual<R: Rng + ?Sized>(
        &self,
        observed: &[f64],
        interventions: &[Intervention],
        rng: &mut R,
    ) -> Result<Vec<f64>, String> {
        let noise = self.abduct(observed, rng)?;
        Ok(self.evaluate(&noise, interventions))
    }

    /// Direct children of each node (adjacency derived from mechanisms).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &p in node.mechanism.parents() {
                ch[p].push(i);
            }
        }
        ch
    }

    /// All descendants of `node` (excluding itself).
    pub fn descendants(&self, node: usize) -> Vec<usize> {
        let ch = self.children();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![node];
        while let Some(cur) = stack.pop() {
            for &c in &ch[cur] {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        (0..self.nodes.len()).filter(|&i| seen[i]).collect()
    }

    /// Edge list `(parent, child)` of the DAG.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut es = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for &p in node.mechanism.parents() {
                es.push((p, i));
            }
        }
        es
    }
}

/// Builder for the common "features + binary label" SCM layout used by the
/// experiments: designates which nodes are model features and which node is
/// the outcome.
#[derive(Clone, Debug)]
pub struct LabeledScm {
    /// The underlying SCM.
    pub scm: Scm,
    /// Indices of feature nodes, in feature order.
    pub feature_nodes: Vec<usize>,
    /// Index of the outcome node.
    pub label_node: usize,
}

impl LabeledScm {
    /// Samples `(features, label)` pairs.
    pub fn sample_examples<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let v = self.scm.sample(rng);
            xs.push(self.feature_nodes.iter().map(|&i| v[i]).collect());
            ys.push(v[self.label_node]);
        }
        (xs, ys)
    }

    /// Causal topological order restricted to the feature nodes, as feature
    /// positions. This is the ordering asymmetric Shapley values condition on.
    pub fn causal_feature_order(&self) -> Vec<usize> {
        // feature_nodes is already in node order iff sorted; map node order → feature position.
        let mut order: Vec<usize> = (0..self.feature_nodes.len()).collect();
        order.sort_by_key(|&fpos| self.feature_nodes[fpos]);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_rand::rngs::StdRng;
    use xai_rand::SeedableRng;
    use xai_linalg::stats::{mean, pearson, std_dev};

    /// X -> Z -> Y with X -> Y direct edge as well.
    fn chain() -> Scm {
        Scm::new(vec![
            Node {
                name: "x".into(),
                mechanism: Mechanism::Exogenous { mean: 0.0, std: 1.0 },
            },
            Node {
                name: "z".into(),
                mechanism: Mechanism::Linear {
                    parents: vec![0],
                    weights: vec![2.0],
                    bias: 0.0,
                    noise_std: 0.5,
                },
            },
            Node {
                name: "y".into(),
                mechanism: Mechanism::Linear {
                    parents: vec![0, 1],
                    weights: vec![1.0, 1.0],
                    bias: 0.0,
                    noise_std: 0.1,
                },
            },
        ])
        .unwrap()
    }

    #[test]
    fn rejects_bad_topology() {
        let bad = Scm::new(vec![Node {
            name: "a".into(),
            mechanism: Mechanism::Linear {
                parents: vec![0],
                weights: vec![1.0],
                bias: 0.0,
                noise_std: 1.0,
            },
        }]);
        assert!(bad.is_err());
    }

    #[test]
    fn observational_moments() {
        let scm = chain();
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<Vec<f64>> = (0..20_000).map(|_| scm.sample(&mut rng)).collect();
        let z: Vec<f64> = samples.iter().map(|s| s[1]).collect();
        // Var(z) = 4 Var(x) + 0.25 = 4.25
        assert!((std_dev(&z) - 4.25_f64.sqrt()).abs() < 0.05);
        let x: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        assert!(pearson(&x, &z) > 0.9);
    }

    #[test]
    fn intervention_breaks_dependence() {
        let scm = chain();
        let mut rng = StdRng::seed_from_u64(6);
        let iv = [Intervention { node: 1, value: 3.0 }];
        let samples: Vec<Vec<f64>> = (0..10_000).map(|_| scm.sample_do(&mut rng, &iv)).collect();
        let x: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        let z: Vec<f64> = samples.iter().map(|s| s[1]).collect();
        assert!(z.iter().all(|&v| v == 3.0));
        // y = x + 3 + noise ⇒ mean(y) ≈ 3
        let y: Vec<f64> = samples.iter().map(|s| s[2]).collect();
        assert!((mean(&y) - 3.0).abs() < 0.05);
        assert_eq!(pearson(&x, &z), 0.0);
    }

    #[test]
    fn abduction_recovers_continuous_noise_exactly() {
        let scm = chain();
        let mut rng = StdRng::seed_from_u64(7);
        let noise = scm.sample_noise(&mut rng);
        let obs = scm.evaluate(&noise, &[]);
        let rec = scm.abduct(&obs, &mut rng).unwrap();
        for (a, b) in noise.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn counterfactual_is_deterministic_for_continuous_scm() {
        let scm = chain();
        let mut rng = StdRng::seed_from_u64(8);
        let obs = scm.sample(&mut rng);
        let iv = [Intervention { node: 0, value: obs[0] + 1.0 }];
        let cf1 = scm.counterfactual(&obs, &iv, &mut rng).unwrap();
        let cf2 = scm.counterfactual(&obs, &iv, &mut rng).unwrap();
        assert_eq!(cf1, cf2);
        // dz/dx = 2, dy/dx = 1 + 1*2 = 3 in the counterfactual world.
        assert!((cf1[1] - (obs[1] + 2.0)).abs() < 1e-10);
        assert!((cf1[2] - (obs[2] + 3.0)).abs() < 1e-10);
    }

    #[test]
    fn bernoulli_abduction_consistent() {
        let scm = Scm::new(vec![
            Node { name: "x".into(), mechanism: Mechanism::Exogenous { mean: 0.0, std: 1.0 } },
            Node {
                name: "y".into(),
                mechanism: Mechanism::Bernoulli { parents: vec![0], weights: vec![3.0], bias: 0.0 },
            },
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let obs = scm.sample(&mut rng);
            let noise = scm.abduct(&obs, &mut rng).unwrap();
            let replay = scm.evaluate(&noise, &[]);
            assert_eq!(replay[1], obs[1], "abducted noise must reproduce the observation");
        }
    }

    #[test]
    fn graph_queries() {
        let scm = chain();
        assert_eq!(scm.edges(), vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(scm.descendants(0), vec![1, 2]);
        assert_eq!(scm.descendants(2), Vec::<usize>::new());
        assert_eq!(scm.index_of("z"), Some(1));
    }

    #[test]
    fn labeled_scm_sampling() {
        let scm = Scm::new(vec![
            Node { name: "a".into(), mechanism: Mechanism::Exogenous { mean: 1.0, std: 0.1 } },
            Node {
                name: "label".into(),
                mechanism: Mechanism::Bernoulli { parents: vec![0], weights: vec![10.0], bias: -10.0 },
            },
        ])
        .unwrap();
        let labeled = LabeledScm { scm, feature_nodes: vec![0], label_node: 1 };
        let mut rng = StdRng::seed_from_u64(10);
        let (xs, ys) = labeled.sample_examples(&mut rng, 100);
        assert_eq!(xs.len(), 100);
        assert!(ys.iter().all(|&y| y == 0.0 || y == 1.0));
        assert_eq!(labeled.causal_feature_order(), vec![0]);
    }
}
