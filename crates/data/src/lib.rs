//! # xai-data
//!
//! Tabular-data substrate for the `xai` workspace:
//!
//! - [`schema`] — named, typed features with recourse metadata
//!   (mutability, protected attributes);
//! - [`dataset`] — the dense [`dataset::Dataset`] shared by every model and
//!   explainer, plus deterministic splits and label-noise injection;
//! - [`encode`] — one-hot and z-score encoders that map between raw and
//!   model space;
//! - [`metrics`] — classification/regression metrics and fairness gaps;
//! - [`synth`] — seeded synthetic populations standing in for Adult /
//!   German Credit / COMPAS (see DESIGN.md for the substitution argument);
//! - [`scm`] — structural causal models with observational, interventional
//!   and counterfactual (abduction) queries.

pub mod csv;
pub mod dataset;
pub mod encode;
pub mod metrics;
pub mod schema;
pub mod scm;
pub mod synth;

pub use csv::{load_csv, load_csv_file, parse_csv, save_csv_file, to_csv, CsvError};
pub use dataset::{inject_label_noise, Dataset, Task};
pub use encode::{OneHotEncoder, Standardizer};
pub use schema::{Feature, FeatureKind, Mutability, Schema};
pub use scm::{sigmoid, Intervention, LabeledScm, Mechanism, Node, Scm};
