//! The central tabular dataset type shared by every model and explainer.

use crate::schema::Schema;
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;
use xai_linalg::Matrix;

/// The learning task a dataset is labeled for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Real-valued targets.
    Regression,
    /// Targets in `{0.0, 1.0}`.
    BinaryClassification,
}

/// A tabular dataset: feature matrix + targets + schema.
///
/// Categorical features are stored as category indices (`f64`), which keeps
/// the matrix dense and lets tree models split on them natively; linear
/// models one-hot encode via [`crate::encode::OneHotEncoder`].
#[derive(Clone, Debug)]
pub struct Dataset {
    schema: Schema,
    x: Matrix,
    y: Vec<f64>,
    task: Task,
}

impl Dataset {
    /// Builds a dataset, validating shapes (rows vs targets, cols vs schema).
    pub fn new(schema: Schema, x: Matrix, y: Vec<f64>, task: Task) -> Self {
        assert_eq!(x.rows(), y.len(), "feature rows must match target count");
        assert_eq!(
            x.cols(),
            schema.n_features(),
            "feature columns must match schema"
        );
        if task == Task::BinaryClassification {
            debug_assert!(
                y.iter().all(|&v| v == 0.0 || v == 1.0),
                "binary targets must be 0/1"
            );
        }
        Self { schema, x, y, task }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The feature matrix (rows = examples).
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The target vector.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// The task kind.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Number of examples.
    pub fn n_rows(&self) -> usize {
        self.x.rows()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// `(row, target)` pair.
    pub fn example(&self, i: usize) -> (&[f64], f64) {
        (self.x.row(i), self.y[i])
    }

    /// New dataset containing only the listed rows (in the given order).
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let x = self.x.select_rows(idx);
        let y = idx.iter().map(|&i| self.y[i]).collect();
        Dataset::new(self.schema.clone(), x, y, self.task)
    }

    /// New dataset with the listed rows removed.
    pub fn without(&self, remove: &[usize]) -> Dataset {
        let mut removed = vec![false; self.n_rows()];
        for &i in remove {
            removed[i] = true;
        }
        let keep: Vec<usize> = (0..self.n_rows()).filter(|&i| !removed[i]).collect();
        self.subset(&keep)
    }

    /// Deterministic shuffled train/test split.
    ///
    /// `test_fraction` in `(0, 1)`; at least one example lands on each side
    /// when `n_rows >= 2`.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1)"
        );
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let mut n_test = ((self.n_rows() as f64) * test_fraction).round() as usize;
        n_test = n_test.clamp(1, self.n_rows().saturating_sub(1).max(1));
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Deterministic k-fold partition; returns `(train, validation)` pairs.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "need at least two folds");
        assert!(k <= self.n_rows(), "more folds than rows");
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let val: Vec<usize> = idx.iter().copied().skip(f).step_by(k).collect();
            let val_set: std::collections::HashSet<usize> = val.iter().copied().collect();
            let train: Vec<usize> = idx.iter().copied().filter(|i| !val_set.contains(i)).collect();
            folds.push((self.subset(&train), self.subset(&val)));
        }
        folds
    }

    /// Fraction of positive labels (binary tasks).
    pub fn positive_rate(&self) -> f64 {
        if self.y.is_empty() {
            return 0.0;
        }
        self.y.iter().sum::<f64>() / self.y.len() as f64
    }

    /// Replaces the target of row `i` (used by label-noise injection).
    pub fn set_label(&mut self, i: usize, y: f64) {
        self.y[i] = y;
    }

    /// Renders example `i` using the schema, for reports.
    pub fn render_row(&self, i: usize) -> String {
        let parts: Vec<String> = self
            .schema
            .features()
            .iter()
            .zip(self.row(i))
            .map(|(f, &v)| format!("{}={}", f.name, f.render(v)))
            .collect();
        parts.join(", ")
    }
}

/// Flips a fraction of binary labels, returning the corrupted row indices.
///
/// This simulates the dirty training data that §2.3/§3 debugging methods
/// (Data Shapley, influence functions, Rain-style complaints) must find.
pub fn inject_label_noise(data: &mut Dataset, fraction: f64, seed: u64) -> Vec<usize> {
    assert_eq!(data.task(), Task::BinaryClassification, "label noise is for binary tasks");
    assert!((0.0..=1.0).contains(&fraction));
    let n = data.n_rows();
    let n_flip = ((n as f64) * fraction).round() as usize;
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(n_flip);
    for &i in &idx {
        let old = data.y[i];
        data.set_label(i, 1.0 - old);
    }
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Feature;

    fn toy(n: usize) -> Dataset {
        let schema = Schema::new(
            vec![Feature::numeric("a", -100.0, 100.0), Feature::numeric("b", -100.0, 100.0)],
            "y",
        );
        let x = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64);
        let y = (0..n).map(|i| (i % 2) as f64).collect();
        Dataset::new(schema, x, y, Task::BinaryClassification)
    }

    #[test]
    fn subset_and_without() {
        let d = toy(6);
        let s = d.subset(&[4, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), &[8.0, 9.0]);
        assert_eq!(s.y(), &[0.0, 0.0]);
        let w = d.without(&[0, 1, 2]);
        assert_eq!(w.n_rows(), 3);
        assert_eq!(w.row(0), &[6.0, 7.0]);
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let d = toy(20);
        let (tr1, te1) = d.train_test_split(0.25, 9);
        let (tr2, te2) = d.train_test_split(0.25, 9);
        assert_eq!(tr1.x().as_slice(), tr2.x().as_slice());
        assert_eq!(te1.x().as_slice(), te2.x().as_slice());
        assert_eq!(tr1.n_rows(), 15);
        assert_eq!(te1.n_rows(), 5);
        // Disjointness: row signatures must not overlap.
        let sig = |d: &Dataset| -> std::collections::HashSet<String> {
            (0..d.n_rows()).map(|i| format!("{:?}", d.row(i))).collect()
        };
        assert!(sig(&tr1).is_disjoint(&sig(&te1)));
    }

    #[test]
    fn k_folds_cover_everything_once() {
        let d = toy(10);
        let folds = d.k_folds(5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = 0;
        for (tr, va) in &folds {
            assert_eq!(tr.n_rows() + va.n_rows(), 10);
            seen += va.n_rows();
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn label_noise_flips_exactly() {
        let mut d = toy(10);
        let before = d.y().to_vec();
        let flipped = inject_label_noise(&mut d, 0.3, 7);
        assert_eq!(flipped.len(), 3);
        for i in 0..10 {
            if flipped.contains(&i) {
                assert_eq!(d.y()[i], 1.0 - before[i]);
            } else {
                assert_eq!(d.y()[i], before[i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "feature rows must match")]
    fn shape_mismatch_panics() {
        let schema = Schema::new(vec![Feature::numeric("a", 0.0, 1.0)], "y");
        let _ = Dataset::new(schema, Matrix::zeros(3, 1), vec![0.0; 2], Task::Regression);
    }

    #[test]
    fn positive_rate() {
        let d = toy(4);
        assert!((d.positive_rate() - 0.5).abs() < 1e-12);
    }
}
