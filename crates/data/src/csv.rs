//! CSV loading with schema inference.
//!
//! Real deployments explain models trained on files, not generators. This
//! loader parses RFC-4180-style CSV (quoted fields, embedded commas and
//! quotes), infers a [`Schema`] (numeric vs categorical per column), and
//! produces a [`Dataset`] ready for every explainer in the workspace.

use crate::dataset::{Dataset, Task};
use crate::schema::{Feature, FeatureKind, Schema};
use xai_linalg::Matrix;

/// CSV loading errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no data rows.
    Empty,
    /// A row had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected.
        expected: usize,
    },
    /// The target column name was not found in the header.
    MissingTarget(String),
    /// A target value could not be interpreted as 0/1 for classification.
    BadLabel {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: String,
    },
    /// Unterminated quoted field.
    UnterminatedQuote {
        /// 1-based line number where the field started.
        line: usize,
    },
    /// Reading or writing a CSV file failed.
    Io {
        /// The file path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::RaggedRow { line, found, expected } => {
                write!(f, "line {line}: {found} fields, expected {expected}")
            }
            CsvError::MissingTarget(t) => write!(f, "target column '{t}' not in header"),
            CsvError::BadLabel { line, value } => {
                write!(f, "line {line}: label '{value}' is not binary")
            }
            CsvError::UnterminatedQuote { line } => write!(f, "line {line}: unterminated quote"),
            CsvError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Splits CSV text into records of fields, honouring quotes.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut field_start_line = 1usize;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push(c);
                    line += 1;
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    field_start_line = line;
                }
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    fields.push(std::mem::take(&mut field));
                    if !(fields.len() == 1 && fields[0].is_empty()) {
                        records.push(std::mem::take(&mut fields));
                    } else {
                        fields.clear();
                    }
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: field_start_line });
    }
    if !field.is_empty() || !fields.is_empty() {
        fields.push(field);
        records.push(fields);
    }
    Ok(records)
}

/// Parses a column as finite numbers, or `None` when any value fails —
/// the column is then treated as categorical. Textual NaN/Inf spellings
/// deliberately fail the numeric parse: a loaded [`Dataset`] never carries
/// non-finite values into the explainers.
fn parse_numeric_column(values: &[&str]) -> Option<Vec<f64>> {
    values
        .iter()
        .map(|v| v.trim().parse::<f64>().ok().filter(|x| x.is_finite()))
        .collect()
}

/// Loads a dataset from CSV text: the first record is the header, the
/// named `target` column becomes `y` (0/1 for classification, any number
/// for regression), and every other column is inferred numeric (all values
/// parse as f64) or categorical (distinct strings become codes).
pub fn load_csv(text: &str, target: &str, task: Task) -> Result<Dataset, CsvError> {
    let records = parse_csv(text)?;
    if records.len() < 2 {
        return Err(CsvError::Empty);
    }
    let header = &records[0];
    let expected = header.len();
    for (i, r) in records.iter().enumerate().skip(1) {
        if r.len() != expected {
            return Err(CsvError::RaggedRow { line: i + 1, found: r.len(), expected });
        }
    }
    let target_idx = header
        .iter()
        .position(|h| h == target)
        .ok_or_else(|| CsvError::MissingTarget(target.to_string()))?;
    let feature_cols: Vec<usize> = (0..expected).filter(|&j| j != target_idx).collect();
    let rows = &records[1..];

    // Infer per-column kinds, parsing each column exactly once: the codes
    // produced here ARE the matrix entries, so there is no second pass
    // that could disagree with inference.
    let mut features = Vec::with_capacity(feature_cols.len());
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(feature_cols.len());
    for &j in &feature_cols {
        let col: Vec<&str> = rows.iter().map(|r| r[j].as_str()).collect();
        if let Some(nums) = parse_numeric_column(&col) {
            let lo = nums.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            // Pad bounds so counterfactual search has head-room.
            let pad = (hi - lo).abs().max(1.0) * 0.5;
            features.push(Feature::numeric(&header[j], lo - pad, hi + pad));
            columns.push(nums);
        } else {
            let mut cats: Vec<String> = col.iter().map(|s| s.trim().to_string()).collect();
            cats.sort();
            cats.dedup();
            let codes = col
                .iter()
                .map(|raw| {
                    let trimmed = raw.trim();
                    // Binary search against the sorted, deduped list built
                    // from these very values — membership is guaranteed,
                    // and the fallback (first category) keeps the no-NaN
                    // invariant without a panic site.
                    cats.binary_search_by(|c| c.as_str().cmp(trimmed))
                        .map_or(0.0, |p| p as f64)
                })
                .collect();
            let refs: Vec<&str> = cats.iter().map(|s| s.as_str()).collect();
            features.push(Feature::categorical(&header[j], &refs));
            columns.push(codes);
        }
    }
    let schema = Schema::new(features, target);

    // Assemble the matrix from the parsed columns and read the targets.
    let mut x = Matrix::zeros(rows.len(), feature_cols.len());
    let mut y = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        for (out_j, col) in columns.iter().enumerate() {
            x[(i, out_j)] = col[i];
        }
        let label_raw = r[target_idx].trim();
        let label = match task {
            Task::Regression => label_raw.parse::<f64>().map_err(|_| CsvError::BadLabel {
                line: i + 2,
                value: label_raw.to_string(),
            })?,
            Task::BinaryClassification => match label_raw {
                "0" | "0.0" | "false" | "no" => 0.0,
                "1" | "1.0" | "true" | "yes" => 1.0,
                other => {
                    return Err(CsvError::BadLabel { line: i + 2, value: other.to_string() })
                }
            },
        };
        y.push(label);
    }
    Ok(Dataset::new(schema, x, y, task))
}

/// Loads a dataset from a CSV file on disk. I/O failures (missing file,
/// permission, truncation mid-read) come back as [`CsvError::Io`] instead
/// of aborting the process; parse failures report line numbers as in
/// [`load_csv`].
pub fn load_csv_file(
    path: impl AsRef<std::path::Path>,
    target: &str,
    task: Task,
) -> Result<Dataset, CsvError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| CsvError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    load_csv(&text, target, task)
}

/// Writes a dataset to a CSV file on disk (the [`to_csv`] rendering).
pub fn save_csv_file(data: &Dataset, path: impl AsRef<std::path::Path>) -> Result<(), CsvError> {
    let path = path.as_ref();
    std::fs::write(path, to_csv(data)).map_err(|e| CsvError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Renders a dataset back to CSV (inverse of [`load_csv`] up to float
/// formatting) — used to snapshot prepared data for audits.
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let names = data.schema().names();
    out.push_str(&names.join(","));
    out.push(',');
    out.push_str(data.schema().target());
    out.push('\n');
    for i in 0..data.n_rows() {
        for (j, feature) in data.schema().features().iter().enumerate() {
            let v = data.row(i)[j];
            match &feature.kind {
                FeatureKind::Numeric { .. } => out.push_str(&format!("{v}")),
                FeatureKind::Categorical { categories } => {
                    let raw = &categories[v.round() as usize];
                    if raw.contains(',') || raw.contains('"') {
                        out.push('"');
                        out.push_str(&raw.replace('"', "\"\""));
                        out.push('"');
                    } else {
                        out.push_str(raw);
                    }
                }
            }
            out.push(',');
        }
        out.push_str(&format!("{}\n", data.y()[i]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "age,housing,income,approved\n39,own,2800.5,1\n25,rent,1900,0\n61,\"own, outright\",3100,1\n33,rent,2100.25,0\n";

    #[test]
    fn loads_with_inference() {
        let d = load_csv(SAMPLE, "approved", Task::BinaryClassification).unwrap();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.schema().names(), vec!["age", "housing", "income"]);
        assert!(d.schema().feature(1).is_categorical());
        assert!(!d.schema().feature(0).is_categorical());
        assert_eq!(d.y(), &[1.0, 0.0, 1.0, 0.0]);
        // Quoted category with embedded comma survives.
        assert_eq!(d.schema().feature(1).render(d.row(2)[1]), "own, outright");
    }

    #[test]
    fn roundtrip_through_to_csv() {
        let d = load_csv(SAMPLE, "approved", Task::BinaryClassification).unwrap();
        let text = to_csv(&d);
        let d2 = load_csv(&text, "approved", Task::BinaryClassification).unwrap();
        assert_eq!(d.n_rows(), d2.n_rows());
        for i in 0..d.n_rows() {
            for j in 0..d.n_features() {
                // Category codes may be renumbered; compare rendered values.
                assert_eq!(
                    d.schema().feature(j).render(d.row(i)[j]),
                    d2.schema().feature(j).render(d2.row(i)[j]),
                    "row {i} col {j}"
                );
            }
        }
        assert_eq!(d.y(), d2.y());
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            load_csv("a,b\n", "b", Task::Regression),
            Err(CsvError::Empty)
        ));
        assert!(matches!(
            load_csv("a,b\n1\n", "b", Task::Regression),
            Err(CsvError::RaggedRow { line: 2, .. })
        ));
        assert!(matches!(
            load_csv("a,b\n1,2\n", "zzz", Task::Regression),
            Err(CsvError::MissingTarget(_))
        ));
        assert!(matches!(
            load_csv("a,y\n1,maybe\n", "y", Task::BinaryClassification),
            Err(CsvError::BadLabel { line: 2, .. })
        ));
        assert!(matches!(
            load_csv("a,y\n\"unterminated,1\n", "y", Task::Regression),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn quoted_quotes_and_newlines() {
        let text = "note,y\n\"she said \"\"hi\"\"\",1\n\"two\nlines\",0\n";
        let records = parse_csv(text).unwrap();
        assert_eq!(records[1][0], "she said \"hi\"");
        assert_eq!(records[2][0], "two\nlines");
    }

    #[test]
    fn textual_nan_demotes_column_to_categorical() {
        // "NaN"/"inf" parse as f64 but would poison every explainer; the
        // loader treats such columns as categorical so the matrix stays
        // finite.
        let text = "a,b,y\nNaN,1.0,0\n2.0,inf,1\n";
        let d = load_csv(text, "y", Task::BinaryClassification).unwrap();
        assert!(d.schema().feature(0).is_categorical());
        assert!(d.schema().feature(1).is_categorical());
        assert!(d.x().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn missing_file_is_a_typed_error_not_a_panic() {
        let err = load_csv_file("/nonexistent/definitely/not/here.csv", "y", Task::Regression)
            .expect_err("missing file");
        assert!(matches!(err, CsvError::Io { .. }));
        assert!(err.to_string().contains("not/here.csv"));
    }

    #[test]
    fn file_roundtrip() {
        let d = load_csv(SAMPLE, "approved", Task::BinaryClassification).unwrap();
        let path = std::env::temp_dir().join("xai_csv_roundtrip_test.csv");
        save_csv_file(&d, &path).unwrap();
        let d2 = load_csv_file(&path, "approved", Task::BinaryClassification).unwrap();
        assert_eq!(d.y(), d2.y());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loaded_dataset_drives_an_explainer() {
        // End-to-end: CSV → model → SHAP.
        let d = load_csv(SAMPLE, "approved", Task::BinaryClassification).unwrap();
        let tree = xai_models_smoke(&d);
        assert!(tree.is_finite());
    }

    // Minimal smoke helper so the csv module does not depend on xai-models
    // (which would be a cycle): linear score through the matrix.
    fn xai_models_smoke(d: &Dataset) -> f64 {
        d.x().as_slice().iter().sum::<f64>()
    }
}
