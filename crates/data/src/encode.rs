//! Feature encoders: one-hot expansion and z-score standardization.
//!
//! Linear models, LIME's interpretable representation, and distance
//! computations in counterfactual search all need encoded/standardized
//! views of the raw dataset matrix. Encoders are *fitted* on training data
//! and then applied to any row, so explanations can map back and forth
//! between raw and encoded spaces.

use crate::schema::{FeatureKind, Schema};
use xai_linalg::stats::{mean, std_dev};
use xai_linalg::Matrix;

/// One-hot encoder driven by the schema.
///
/// Numeric columns pass through; each categorical column with `k` categories
/// expands into `k` indicator columns.
#[derive(Clone, Debug)]
pub struct OneHotEncoder {
    /// For each raw column: (output offset, cardinality or 1 for numeric).
    layout: Vec<(usize, usize)>,
    /// Whether each raw column is categorical.
    is_cat: Vec<bool>,
    width: usize,
}

impl OneHotEncoder {
    /// Builds the encoder from a schema.
    pub fn fit(schema: &Schema) -> Self {
        let mut layout = Vec::with_capacity(schema.n_features());
        let mut is_cat = Vec::with_capacity(schema.n_features());
        let mut offset = 0;
        for f in schema.features() {
            match &f.kind {
                FeatureKind::Numeric { .. } => {
                    layout.push((offset, 1));
                    is_cat.push(false);
                    offset += 1;
                }
                FeatureKind::Categorical { categories } => {
                    layout.push((offset, categories.len()));
                    is_cat.push(true);
                    offset += categories.len();
                }
            }
        }
        Self { layout, is_cat, width: offset }
    }

    /// Width of the encoded representation.
    pub fn encoded_width(&self) -> usize {
        self.width
    }

    /// Output column range for raw feature `j`.
    pub fn columns_of(&self, j: usize) -> std::ops::Range<usize> {
        let (off, k) = self.layout[j];
        off..off + k
    }

    /// Maps an encoded column back to its raw feature index.
    pub fn raw_feature_of(&self, encoded_col: usize) -> usize {
        self.layout
            .iter()
            .position(|&(off, k)| encoded_col >= off && encoded_col < off + k)
            .expect("encoded column out of range")
    }

    /// Encodes a single row.
    pub fn encode_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.layout.len(), "row arity mismatch");
        let mut out = vec![0.0; self.width];
        for (j, &v) in row.iter().enumerate() {
            let (off, k) = self.layout[j];
            if self.is_cat[j] {
                let idx = v.round() as usize;
                assert!(idx < k, "category index {idx} out of range for feature {j}");
                out[off + idx] = 1.0;
            } else {
                out[off] = v;
            }
        }
        out
    }

    /// Encodes a whole matrix.
    pub fn encode_matrix(&self, m: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(m.rows(), self.width);
        for i in 0..m.rows() {
            let enc = self.encode_row(m.row(i));
            out.row_mut(i).copy_from_slice(&enc);
        }
        out
    }

    /// Decodes an encoded row back to raw space (argmax per categorical block).
    pub fn decode_row(&self, enc: &[f64]) -> Vec<f64> {
        assert_eq!(enc.len(), self.width, "encoded arity mismatch");
        let mut out = Vec::with_capacity(self.layout.len());
        for (j, &(off, k)) in self.layout.iter().enumerate() {
            if self.is_cat[j] {
                let block = &enc[off..off + k];
                let argmax = block
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in one-hot block"))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                out.push(argmax as f64);
            } else {
                out.push(enc[off]);
            }
        }
        out
    }
}

/// Per-column z-score standardizer fitted on a matrix.
///
/// Constant columns get unit scale so transformation stays invertible.
#[derive(Clone, Debug)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits means/stds on the columns of `m`.
    pub fn fit(m: &Matrix) -> Self {
        let means = (0..m.cols()).map(|j| mean(&m.col(j))).collect();
        let stds = (0..m.cols())
            .map(|j| {
                let s = std_dev(&m.col(j));
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column scales.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardizes one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len());
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Standardizes a matrix.
    pub fn transform_matrix(&self, m: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(m.rows(), m.cols());
        for i in 0..m.rows() {
            let t = self.transform_row(m.row(i));
            out.row_mut(i).copy_from_slice(&t);
        }
        out
    }

    /// Inverse transform of one row.
    pub fn inverse_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len());
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| v * s + m)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Feature, Schema};

    fn schema() -> Schema {
        Schema::new(
            vec![
                Feature::numeric("age", 0.0, 100.0),
                Feature::categorical("color", &["red", "green", "blue"]),
                Feature::numeric("income", 0.0, 1e6),
            ],
            "y",
        )
    }

    #[test]
    fn one_hot_layout() {
        let enc = OneHotEncoder::fit(&schema());
        assert_eq!(enc.encoded_width(), 5);
        assert_eq!(enc.columns_of(0), 0..1);
        assert_eq!(enc.columns_of(1), 1..4);
        assert_eq!(enc.columns_of(2), 4..5);
        assert_eq!(enc.raw_feature_of(0), 0);
        assert_eq!(enc.raw_feature_of(2), 1);
        assert_eq!(enc.raw_feature_of(4), 2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let enc = OneHotEncoder::fit(&schema());
        let row = vec![42.0, 2.0, 1234.5];
        let e = enc.encode_row(&row);
        assert_eq!(e, vec![42.0, 0.0, 0.0, 1.0, 1234.5]);
        assert_eq!(enc.decode_row(&e), row);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_invalid_category_panics() {
        let enc = OneHotEncoder::fit(&schema());
        enc.encode_row(&[1.0, 9.0, 0.0]);
    }

    #[test]
    fn standardizer_roundtrip_and_moments() {
        let m = Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ]);
        let st = Standardizer::fit(&m);
        let t = st.transform_matrix(&m);
        for j in 0..2 {
            assert!(mean(&t.col(j)).abs() < 1e-12);
            assert!((std_dev(&t.col(j)) - 1.0).abs() < 1e-12);
        }
        let orig = m.row(2).to_vec();
        let back = st.inverse_row(&st.transform_row(&orig));
        for (a, b) in back.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn standardizer_constant_column_safe() {
        let m = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]);
        let st = Standardizer::fit(&m);
        let t = st.transform_row(&[5.0]);
        assert_eq!(t, vec![0.0]);
        assert_eq!(st.inverse_row(&t), vec![5.0]);
    }

    #[test]
    fn encode_matrix_shapes() {
        let enc = OneHotEncoder::fit(&schema());
        let m = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![2.0, 1.0, 3.0]]);
        let e = enc.encode_matrix(&m);
        assert_eq!(e.shape(), (2, 5));
        assert_eq!(e.row(0), &[1.0, 1.0, 0.0, 0.0, 2.0]);
    }
}
