//! Feature schemas for tabular datasets.
//!
//! Explanations must speak the language of the data ("age", "income",
//! "housing = rent"), not raw column indices, so every dataset carries a
//! schema describing each feature: its name, whether it is numeric or
//! categorical, and — for recourse — whether it is actionable and in which
//! direction it may move.

/// How a feature may be changed when searching for recourse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutability {
    /// Feature can move freely (e.g. savings amount).
    Free,
    /// Feature can only increase (e.g. age, education years).
    IncreaseOnly,
    /// Feature can only decrease (e.g. number of open defaults).
    DecreaseOnly,
    /// Feature can never be changed by the individual (e.g. race, sex).
    Immutable,
}

/// The type of a single feature.
#[derive(Clone, Debug, PartialEq)]
pub enum FeatureKind {
    /// Real-valued feature with optional bounds used by perturbation-based
    /// explainers and counterfactual search.
    Numeric {
        /// Inclusive lower bound of plausible values.
        min: f64,
        /// Inclusive upper bound of plausible values.
        max: f64,
    },
    /// Categorical feature; values are stored as category indices (as `f64`)
    /// in the dataset matrix.
    Categorical {
        /// Human-readable category names; index in this list is the stored code.
        categories: Vec<String>,
    },
}

/// A named feature with its kind and recourse metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Feature {
    /// Column name.
    pub name: String,
    /// Numeric or categorical.
    pub kind: FeatureKind,
    /// Whether/how the feature may be changed for recourse.
    pub mutability: Mutability,
    /// Marks legally protected attributes (sex, race, …) for audit tooling.
    pub protected: bool,
}

impl Feature {
    /// A freely mutable numeric feature.
    pub fn numeric(name: &str, min: f64, max: f64) -> Self {
        Self {
            name: name.to_string(),
            kind: FeatureKind::Numeric { min, max },
            mutability: Mutability::Free,
            protected: false,
        }
    }

    /// A freely mutable categorical feature.
    pub fn categorical(name: &str, categories: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            kind: FeatureKind::Categorical {
                categories: categories.iter().map(|s| s.to_string()).collect(),
            },
            mutability: Mutability::Free,
            protected: false,
        }
    }

    /// Builder: set mutability.
    pub fn with_mutability(mut self, m: Mutability) -> Self {
        self.mutability = m;
        self
    }

    /// Builder: mark as a protected attribute (also makes it immutable).
    pub fn protected(mut self) -> Self {
        self.protected = true;
        self.mutability = Mutability::Immutable;
        self
    }

    /// Number of categories (1 for numeric features).
    pub fn cardinality(&self) -> usize {
        match &self.kind {
            FeatureKind::Numeric { .. } => 1,
            FeatureKind::Categorical { categories } => categories.len(),
        }
    }

    /// True for categorical features.
    pub fn is_categorical(&self) -> bool {
        matches!(self.kind, FeatureKind::Categorical { .. })
    }

    /// Renders a raw stored value using the schema ("34.5" or "housing=rent").
    pub fn render(&self, value: f64) -> String {
        match &self.kind {
            FeatureKind::Numeric { .. } => format!("{value:.4}"),
            FeatureKind::Categorical { categories } => {
                let idx = value.round() as usize;
                categories
                    .get(idx)
                    .cloned()
                    .unwrap_or_else(|| format!("<invalid:{value}>"))
            }
        }
    }

    /// Validates that a raw value is legal for this feature.
    pub fn is_valid(&self, value: f64) -> bool {
        match &self.kind {
            FeatureKind::Numeric { min, max } => value.is_finite() && value >= *min && value <= *max,
            FeatureKind::Categorical { categories } => {
                let idx = value.round();
                idx == value && idx >= 0.0 && (idx as usize) < categories.len()
            }
        }
    }
}

/// An ordered collection of features plus the prediction target's name.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    features: Vec<Feature>,
    target: String,
}

impl Schema {
    /// Builds a schema.
    pub fn new(features: Vec<Feature>, target: &str) -> Self {
        Self { features, target: target.to_string() }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// The features in column order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Feature at column `j`.
    pub fn feature(&self, j: usize) -> &Feature {
        &self.features[j]
    }

    /// Target column name.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Column index of a feature by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// All feature names in order.
    pub fn names(&self) -> Vec<&str> {
        self.features.iter().map(|f| f.name.as_str()).collect()
    }

    /// Indices of protected features.
    pub fn protected_indices(&self) -> Vec<usize> {
        self.features
            .iter()
            .enumerate()
            .filter(|(_, f)| f.protected)
            .map(|(i, _)| i)
            .collect()
    }

    /// Validates a full row against every feature.
    pub fn validate_row(&self, row: &[f64]) -> Result<(), String> {
        if row.len() != self.features.len() {
            return Err(format!(
                "row has {} values, schema has {} features",
                row.len(),
                self.features.len()
            ));
        }
        for (f, &v) in self.features.iter().zip(row) {
            if !f.is_valid(v) {
                return Err(format!("value {v} is invalid for feature '{}'", f.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Feature::numeric("age", 18.0, 90.0).with_mutability(Mutability::IncreaseOnly),
                Feature::categorical("housing", &["own", "rent", "free"]),
                Feature::categorical("sex", &["female", "male"]).protected(),
            ],
            "credit_risk",
        )
    }

    #[test]
    fn lookup_and_names() {
        let s = schema();
        assert_eq!(s.n_features(), 3);
        assert_eq!(s.index_of("housing"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.names(), vec!["age", "housing", "sex"]);
        assert_eq!(s.target(), "credit_risk");
    }

    #[test]
    fn protected_implies_immutable() {
        let s = schema();
        assert_eq!(s.protected_indices(), vec![2]);
        assert_eq!(s.feature(2).mutability, Mutability::Immutable);
    }

    #[test]
    fn render_values() {
        let s = schema();
        assert_eq!(s.feature(1).render(1.0), "rent");
        assert_eq!(s.feature(1).render(7.0), "<invalid:7>");
        assert!(s.feature(0).render(33.25).starts_with("33.25"));
    }

    #[test]
    fn validation() {
        let s = schema();
        assert!(s.validate_row(&[30.0, 2.0, 1.0]).is_ok());
        assert!(s.validate_row(&[17.0, 2.0, 1.0]).is_err()); // age below min
        assert!(s.validate_row(&[30.0, 1.5, 1.0]).is_err()); // non-integral category
        assert!(s.validate_row(&[30.0, 2.0]).is_err()); // wrong arity
    }

    #[test]
    fn cardinality() {
        let s = schema();
        assert_eq!(s.feature(0).cardinality(), 1);
        assert_eq!(s.feature(1).cardinality(), 3);
        assert!(s.feature(1).is_categorical());
    }
}
