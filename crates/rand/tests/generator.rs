//! Integration tests for the in-tree PRNG: known-answer snapshots, range
//! correctness, uniformity, permutation validity, and stream independence.

use xai_rand::parallel::par_map_seeded;
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::{child_seed, Rng, RngCore, SeedableRng};

/// Snapshot of the PCG64 output stream for two fixed seeds. These values
/// pin the generator: any change to the seeding scheme, the LCG constants,
/// or the XSL-RR output function fails this test, which would silently
/// invalidate every seeded test and experiment in the workspace.
#[test]
fn known_answer_pcg64_streams() {
    let mut r = StdRng::seed_from_u64(42);
    let got: Vec<u64> = (0..6).map(|_| r.next_u64()).collect();
    assert_eq!(
        got,
        [
            12224675290135233790,
            9860423973401327721,
            4778247438621736158,
            9359529024939162348,
            5773768942572903939,
            14756301573821094206,
        ]
    );
    let mut r = StdRng::seed_from_u64(0);
    let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    assert_eq!(
        got,
        [
            5751847760125744135,
            11407444520975392719,
            4260351627862701322,
            3881254725000550827,
        ]
    );
}

#[test]
fn known_answer_f64_stream() {
    let mut r = StdRng::seed_from_u64(42);
    let got: Vec<f64> = (0..4).map(|_| r.gen::<f64>()).collect();
    let want = [0.6627009753747242, 0.5345346546794935, 0.2590293126813491, 0.5073810851140087];
    assert_eq!(got, want, "f64 conversion must stay bit-stable");
}

#[test]
fn known_answer_child_seeds() {
    assert_eq!(child_seed(42, 0), 13679457532755275413);
    assert_eq!(child_seed(42, 1), 2949826092126892291);
}

#[test]
fn gen_range_respects_bounds_for_every_range_shape() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..2000 {
        let a: usize = rng.gen_range(3..17);
        assert!((3..17).contains(&a));
        let b: usize = rng.gen_range(5..=5);
        assert_eq!(b, 5);
        let c: i64 = rng.gen_range(-20..-10);
        assert!((-20..-10).contains(&c));
        let d: f64 = rng.gen_range(-1.5..2.5);
        assert!((-1.5..2.5).contains(&d));
        let e: u64 = rng.gen_range(0..2);
        assert!(e < 2);
    }
}

/// Chi-squared uniformity smoke test: 16 buckets, 16k draws. The 99.9%
/// critical value for 15 degrees of freedom is ≈ 37.7; a healthy uniform
/// generator sits far below it.
#[test]
fn gen_range_is_uniform_chi_squared() {
    let mut rng = StdRng::seed_from_u64(99);
    const BUCKETS: usize = 16;
    const DRAWS: usize = 16_384;
    let mut counts = [0usize; BUCKETS];
    for _ in 0..DRAWS {
        counts[rng.gen_range(0..BUCKETS)] += 1;
    }
    let expected = DRAWS as f64 / BUCKETS as f64;
    let chi2: f64 =
        counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
    assert!(chi2 < 37.7, "chi-squared statistic too large: {chi2} (counts {counts:?})");
}

#[test]
fn f64_draws_live_in_unit_interval_with_sane_mean() {
    let mut rng = StdRng::seed_from_u64(4);
    let n = 8192;
    let mut sum = 0.0;
    for _ in 0..n {
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        sum += x;
    }
    let mean = sum / n as f64;
    assert!((mean - 0.5).abs() < 0.02, "mean suspiciously far from 1/2: {mean}");
}

#[test]
fn shuffle_produces_valid_permutations_and_mixes() {
    let mut rng = StdRng::seed_from_u64(21);
    let identity: Vec<usize> = (0..50).collect();
    let mut moved = 0;
    for _ in 0..50 {
        let mut v = identity.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity, "shuffle must be a permutation");
        if v != identity {
            moved += 1;
        }
    }
    assert_eq!(moved, 50, "a 50-element shuffle virtually never returns identity");
}

#[test]
fn shuffle_visits_every_position_uniformly_enough() {
    // Track where element 0 lands across many shuffles of a 8-vector; each
    // slot should be hit roughly n/8 times.
    let mut rng = StdRng::seed_from_u64(22);
    let mut landings = [0usize; 8];
    let n = 8000;
    for _ in 0..n {
        let mut v: Vec<usize> = (0..8).collect();
        v.shuffle(&mut rng);
        let pos = v.iter().position(|&x| x == 0).unwrap();
        landings[pos] += 1;
    }
    let expected = n as f64 / 8.0;
    for (slot, &c) in landings.iter().enumerate() {
        assert!(
            (c as f64 - expected).abs() < expected * 0.15,
            "slot {slot} hit {c} times (expected ≈ {expected})"
        );
    }
}

#[test]
fn child_seed_streams_are_pairwise_distinct_and_uncorrelated() {
    // 64 child streams: no collisions in their first draws, and no child
    // reproduces the parent's stream.
    let base = 1234;
    let mut firsts = std::collections::HashSet::new();
    let mut parent = StdRng::seed_from_u64(base);
    let parent_first = parent.next_u64();
    for i in 0..64 {
        let mut child = StdRng::seed_from_u64(child_seed(base, i));
        let first = child.next_u64();
        assert_ne!(first, parent_first, "child {i} reproduced the parent stream");
        assert!(firsts.insert(first), "child {i} collided with an earlier child");
    }
}

#[test]
fn executor_child_streams_match_direct_child_seeding() {
    // The executor must seed task t with child_seed(seed, t) — nothing
    // else. This pins the contract that makes parallel results independent
    // of worker count.
    let direct: Vec<u64> = (0..5)
        .map(|t| StdRng::seed_from_u64(child_seed(77, t)).next_u64())
        .collect();
    let from_executor = par_map_seeded(5, 77, 3, |_, rng| rng.next_u64());
    assert_eq!(direct, from_executor);
}
