//! Slice-level randomness: Fisher–Yates shuffling and uniform choice,
//! mirroring `rand::seq::SliceRandom`.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates; every permutation is
    /// equally likely).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `amount` distinct elements in random order (all of them, in
    /// random order, when `amount >= len`).
    fn choose_multiple<R: Rng + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let take = amount.min(self.len());
        for i in 0..take {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..take].iter().map(|&i| &self[i]).collect()
    }
}
