//! A tiny seeded-loop property-test harness.
//!
//! Replaces the external `proptest` dependency: a property is an ordinary
//! closure executed over many independently seeded RNG streams, so every
//! "random" case is reproducible from the failure message alone.

use crate::rngs::StdRng;
use crate::{child_seed, Rng, SeedableRng};

/// Runs `f` for `cases` deterministic pseudo-random cases.
///
/// Case `i` receives an RNG seeded with [`child_seed`]`(base_seed, i)`.
/// On panic, the case index and its seed are reported so a failing case
/// can be replayed in isolation with `StdRng::seed_from_u64(seed)`.
pub fn cases<F>(cases: usize, base_seed: u64, mut f: F)
where
    F: FnMut(&mut StdRng),
{
    assert!(cases >= 1);
    for i in 0..cases {
        let seed = child_seed(base_seed, i as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("property failed at case {i}/{cases} (replay seed: {seed})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Draws a `Vec<f64>` with entries uniform in `[lo, hi)` — the workhorse
/// generator of the rewritten property suites.
pub fn vec_in(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    #[test]
    fn runs_every_case_with_distinct_streams() {
        let mut seen = Vec::new();
        cases(16, 3, |rng| seen.push(rng.next_u64()));
        assert_eq!(seen.len(), 16);
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16, "case streams must be independent");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        cases(4, 1, |_| panic!("boom"));
    }

    #[test]
    fn vec_in_respects_bounds() {
        cases(8, 5, |rng| {
            let v = vec_in(rng, 32, -2.0, 3.0);
            assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
        });
    }
}
