//! The [`Distribution`] trait, the [`Standard`] distribution behind
//! [`Rng::gen`], and uniform range sampling for [`Rng::gen_range`].

use crate::Rng;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`, sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Draws `n` values into a vector.
    fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The "natural" distribution per type: `[0, 1)` uniforms for floats, fair
/// coin for `bool`, full-range uniform for integers.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random bits scaled into [0, 1): every representable multiple
        // of 2^-53 is equally likely.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Use the high bit; PCG's low bits are fine too, but this matches
        // the float path in using the most-mixed bits.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u64, u32, u16, u8, i64, i32, usize);

/// A range that [`Rng::gen_range`] can sample a single value from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by Lemire's nearly-divisionless method —
/// unbiased for every span, one multiply in the common case.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        // Rejection zone: the bottom `2^64 mod span` values of each bucket.
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called on empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
sample_range_int!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called on empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range called on empty range");
        let u: f32 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Uniform distribution over a half-open or inclusive range, for reuse via
/// [`Distribution::sample`].
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl Uniform<f64> {
    /// Uniform over `[low, high)`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "Uniform requires low < high");
        Self { low, high }
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.low..self.high).sample_single(rng)
    }
}

impl Uniform<usize> {
    /// Uniform over `[low, high)`.
    pub fn new(low: usize, high: usize) -> Self {
        assert!(low < high, "Uniform requires low < high");
        Self { low, high }
    }
}

impl Distribution<usize> for Uniform<usize> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        (self.low..self.high).sample_single(rng)
    }
}
