//! Deterministic fork-join parallelism for Monte-Carlo loops.
//!
//! The sampling-based explainers in this workspace (permutation Shapley,
//! Kernel SHAP, TMC data Shapley, Banzhaf, GeCo/DiCE search) are
//! embarrassingly parallel: many independent random walks whose results
//! are reduced at the end. The executors here parallelize exactly that
//! shape while keeping a hard reproducibility guarantee:
//!
//! **Determinism invariant.** Task `t` always draws from a fresh PCG64
//! seeded with [`child_seed`]`(seed, t)`, and results are reduced in task
//! order — never in completion order. The output is therefore a pure
//! function of `(seed, n_tasks)`: bit-identical across runs *and across
//! worker counts* (`workers = 1` and `workers = 64` agree exactly).
//!
//! Scheduling is static and strided (worker `w` takes tasks `w`,
//! `w + workers`, …), which needs no atomics and balances well for the
//! uniform task sizes Monte-Carlo chunks have.

use crate::rngs::StdRng;
use crate::{child_seed, SeedableRng};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Number of workers the machine supports (`1` when it cannot be probed).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A panic captured from one task of a `try_par_map_*` run.
///
/// The lowest-indexed panicking task is reported, regardless of which
/// worker hit it first on the wall clock — fault reporting obeys the same
/// task-order determinism as the results themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the panicking task.
    pub task: usize,
    /// The panic payload, when it was a string (the common case); a
    /// placeholder otherwise.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parallel task {} panicked: {}", self.task, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Extracts a human-readable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `n_tasks` independent closures across `workers` scoped threads.
///
/// Each task receives its index and a PCG64 seeded with
/// [`child_seed`]`(seed, index)`; outputs come back in task order. See the
/// module docs for the determinism invariant.
///
/// # Panics
/// Panics when `workers == 0`, or propagates a worker panic.
pub fn par_map_seeded<U, F>(n_tasks: usize, seed: u64, workers: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, &mut StdRng) -> U + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    let run_task = |t: usize| {
        let mut rng = StdRng::seed_from_u64(child_seed(seed, t as u64));
        f(t, &mut rng)
    };
    if workers == 1 || n_tasks <= 1 {
        return (0..n_tasks).map(run_task).collect();
    }
    let workers = workers.min(n_tasks);
    let mut out: Vec<Option<U>> = (0..n_tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let run_task = &run_task;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    (w..n_tasks)
                        .step_by(workers)
                        .map(|t| (t, run_task(t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (t, value) in handle.join().expect("parallel worker panicked") {
                out[t] = Some(value);
            }
        }
    });
    out.into_iter().map(|v| v.expect("every task runs exactly once")).collect()
}

/// [`par_map_seeded`] with per-task panic isolation.
///
/// Each task body runs under `catch_unwind`, so a panicking task aborts
/// only itself — the other tasks (including ones scheduled on the same
/// worker thread) still run to completion. On success the output is
/// **bit-identical** to [`par_map_seeded`] for every worker count: the
/// seeding, the strided schedule, and the task-order reduction are all
/// unchanged. On failure the error names the lowest-indexed panicking
/// task, again independent of worker count and thread timing.
///
/// # Panics
/// Panics when `workers == 0`. Task panics are returned, not propagated.
pub fn try_par_map_seeded<U, F>(
    n_tasks: usize,
    seed: u64,
    workers: usize,
    f: F,
) -> Result<Vec<U>, TaskPanic>
where
    U: Send,
    F: Fn(usize, &mut StdRng) -> U + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    let run_task = |t: usize| -> Result<U, TaskPanic> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut rng = StdRng::seed_from_u64(child_seed(seed, t as u64));
            f(t, &mut rng)
        }))
        .map_err(|payload| TaskPanic { task: t, message: panic_message(payload) })
    };
    if workers == 1 || n_tasks <= 1 {
        return (0..n_tasks).map(run_task).collect();
    }
    let workers = workers.min(n_tasks);
    let mut out: Vec<Option<Result<U, TaskPanic>>> = (0..n_tasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let run_task = &run_task;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    (w..n_tasks)
                        .step_by(workers)
                        .map(|t| (t, run_task(t)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            // Worker threads never panic themselves — every task body is
            // caught — so this join only fails on executor bugs.
            for (t, value) in handle.join().expect("worker bodies are panic-free") {
                out[t] = Some(value);
            }
        }
    });
    out.into_iter().map(|v| v.expect("every task runs exactly once")).collect()
}

/// Splits `0..total` into chunks of at most `chunk_size` iterations and
/// runs each chunk as one [`par_map_seeded`] task.
///
/// `f` receives `(chunk_index, iteration_range, rng)`. Because the chunk
/// grid depends only on `(total, chunk_size)` — not on `workers` — the
/// result keeps the worker-count-invariance guarantee.
///
/// # Panics
/// Panics when `chunk_size == 0` or `workers == 0`.
pub fn par_map_chunks<U, F>(
    total: usize,
    chunk_size: usize,
    seed: u64,
    workers: usize,
    f: F,
) -> Vec<U>
where
    U: Send,
    F: Fn(usize, Range<usize>, &mut StdRng) -> U + Sync,
{
    assert!(chunk_size >= 1, "chunk size must be positive");
    let n_chunks = total.div_ceil(chunk_size);
    par_map_seeded(n_chunks, seed, workers, |c, rng| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(total);
        f(c, start..end, rng)
    })
}

/// [`par_map_chunks`] with per-task panic isolation; see
/// [`try_par_map_seeded`] for the fault-reporting contract.
///
/// # Panics
/// Panics when `chunk_size == 0` or `workers == 0`. Chunk panics are
/// returned, not propagated.
pub fn try_par_map_chunks<U, F>(
    total: usize,
    chunk_size: usize,
    seed: u64,
    workers: usize,
    f: F,
) -> Result<Vec<U>, TaskPanic>
where
    U: Send,
    F: Fn(usize, Range<usize>, &mut StdRng) -> U + Sync,
{
    assert!(chunk_size >= 1, "chunk size must be positive");
    let n_chunks = total.div_ceil(chunk_size);
    try_par_map_seeded(n_chunks, seed, workers, |c, rng| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(total);
        f(c, start..end, rng)
    })
}

/// Element-wise sum reduction for the common "each chunk returns partial
/// sums" pattern. Summation runs in chunk order, preserving bit-exact
/// determinism.
pub fn sum_partials(partials: Vec<Vec<f64>>) -> Vec<f64> {
    let mut iter = partials.into_iter();
    let Some(mut acc) = iter.next() else {
        return Vec::new();
    };
    for partial in iter {
        assert_eq!(partial.len(), acc.len(), "partial length mismatch");
        for (a, p) in acc.iter_mut().zip(&partial) {
            *a += p;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;
    use crate::Rng;

    #[test]
    fn worker_count_invariance() {
        let run = |workers| {
            par_map_seeded(13, 42, workers, |t, rng| (t, rng.gen::<f64>(), rng.next_u64()))
        };
        let one = run(1);
        for workers in [2, 3, 4, 16] {
            assert_eq!(one, run(workers), "workers={workers} diverged");
        }
    }

    #[test]
    fn chunk_grid_covers_total_exactly_once() {
        let ranges = par_map_chunks(10, 3, 7, 2, |_, r, _| r);
        let flat: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_get_independent_streams() {
        let draws = par_map_seeded(4, 9, 2, |_, rng| rng.next_u64());
        for i in 0..draws.len() {
            for j in i + 1..draws.len() {
                assert_ne!(draws[i], draws[j]);
            }
        }
    }

    #[test]
    fn sum_partials_is_ordered_and_exact() {
        assert_eq!(sum_partials(vec![]), Vec::<f64>::new());
        let s = sum_partials(vec![vec![1.0, 2.0], vec![0.5, -2.0]]);
        assert_eq!(s, vec![1.5, 0.0]);
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = par_map_seeded(2, 1, 8, |t, _| t);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn try_variant_is_bit_identical_when_fault_free() {
        for workers in [1, 2, 4] {
            let plain =
                par_map_seeded(13, 42, workers, |t, rng| (t, rng.gen::<f64>(), rng.next_u64()));
            let tried =
                try_par_map_seeded(13, 42, workers, |t, rng| (t, rng.gen::<f64>(), rng.next_u64()))
                    .expect("fault-free run");
            assert_eq!(plain, tried, "workers={workers} diverged");
        }
    }

    #[test]
    fn try_variant_reports_lowest_panicking_task() {
        for workers in [1, 2, 4] {
            let err = try_par_map_seeded(9, 3, workers, |t, _| {
                if t == 5 || t == 7 {
                    panic!("task {t} exploded");
                }
                t
            })
            .expect_err("tasks 5 and 7 panic");
            assert_eq!(err.task, 5, "workers={workers}: lowest task wins");
            assert_eq!(err.message, "task 5 exploded");
        }
    }

    #[test]
    fn try_chunks_match_plain_chunks() {
        let plain = par_map_chunks(10, 3, 7, 2, |_, r, rng| (r, rng.next_u64()));
        let tried = try_par_map_chunks(10, 3, 7, 2, |_, r, rng| (r, rng.next_u64()))
            .expect("fault-free run");
        assert_eq!(plain, tried);
    }

    #[test]
    fn panicking_task_does_not_poison_its_worker_siblings() {
        // With 2 workers, tasks 0, 2, 4 share a thread; task 0's panic
        // must not take tasks 2 and 4 down with it.
        let err = try_par_map_seeded(5, 1, 2, |t, _| {
            assert!(t != 0, "task 0 exploded");
            t
        })
        .expect_err("task 0 panics");
        assert_eq!(err.task, 0);
        assert!(err.message.contains("task 0 exploded"));
    }
}
