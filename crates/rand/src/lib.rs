//! # xai-rand
//!
//! The workspace's only source of randomness: a from-scratch, seedable
//! PCG64 generator with the exact API surface the `xai` crates use, plus a
//! deterministic fork-join parallel executor. Nothing here touches the OS
//! entropy pool — every stream is derived from a caller-supplied `u64`
//! seed, so every Monte-Carlo explainer in the workspace is reproducible
//! bit-for-bit.
//!
//! - [`rngs::StdRng`] — PCG XSL RR 128/64 ("PCG64"), seeded through a
//!   SplitMix64 expansion of a single `u64`;
//! - [`Rng`] / [`SeedableRng`] / [`RngCore`] — the trait surface
//!   (`gen`, `gen_range`, `gen_bool`) mirroring the subset of `rand 0.8`
//!   the workspace was written against;
//! - [`distributions`] — the [`distributions::Distribution`] trait and the
//!   [`distributions::Standard`] distribution backing [`Rng::gen`];
//! - [`seq::SliceRandom`] — Fisher–Yates `shuffle` and uniform `choose`;
//! - [`child_seed`] — SplitMix64-derived independent sub-streams, the
//!   basis of the determinism guarantee: *fixed seed ⇒ bit-identical
//!   results at any worker count* (see [`parallel`]);
//! - [`parallel`] — scoped-thread fork-join executors
//!   ([`parallel::par_map_seeded`], [`parallel::par_map_chunks`]) that
//!   hand every task its own child-seeded RNG and reduce in task order;
//! - [`property`] — the seeded-loop property-test harness that replaced
//!   the external `proptest` dependency.

pub mod distributions;
pub mod parallel;
pub mod property;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the [`Standard`] distribution:
    /// `f64`/`f32` uniform in `[0, 1)`, `bool` fair, integers uniform over
    /// their full range.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// PCG XSL RR 128/64 (O'Neill 2014): a 128-bit LCG state advanced by a
/// fixed multiplier, output-mixed by xor-shift-low + random rotation.
/// Period 2^128; passes BigCrush; 16 bytes of state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    /// Stream selector; always odd.
    increment: u128,
}

/// The default PCG64 multiplier.
const PCG_MULT: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Builds a generator from raw state and stream values (the increment
    /// is forced odd, as the LCG requires).
    pub fn from_state(state: u128, stream: u128) -> Self {
        let mut rng = Self { state, increment: stream | 1 };
        // Discard the first output so nearby raw states decorrelate.
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.increment);
        rng
    }
}

impl SeedableRng for Pcg64 {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into 256 bits of state + stream with
        // SplitMix64 — the standard seeding recipe for large-state PRNGs.
        let mut sm = SplitMix64::new(seed);
        let state = (sm.next() as u128) << 64 | sm.next() as u128;
        let stream = (sm.next() as u128) << 64 | sm.next() as u128;
        Self::from_state(state, stream)
    }
}

impl RngCore for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.increment);
        // XSL-RR output function: xor the halves, rotate by the top bits.
        let rot = (old >> 122) as u32;
        let xored = ((old >> 64) as u64) ^ (old as u64);
        xored.rotate_right(rot)
    }
}

/// SplitMix64 (Steele, Lea & Flood 2014): a tiny splittable generator used
/// here for seed expansion and for deriving independent child streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// The SplitMix64 increment (the 64-bit golden ratio).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Builds the generator at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next output.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        split_mix_finalize(self.state)
    }
}

/// The SplitMix64 finalizer: a strong bijective bit-mixer.
fn split_mix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of independent sub-stream `index` from `base`.
///
/// This is the workspace's stream-splitting scheme: child `i` seeds a
/// fresh PCG64 via `seed_from_u64(child_seed(base, i))`. Because
/// `seed_from_u64` expands the seed into both the 128-bit state *and* the
/// 128-bit stream selector, distinct child seeds give LCG sequences on
/// different orbits — not merely different offsets of one sequence — so
/// worker streams never overlap in practice.
pub fn child_seed(base: u64, index: u64) -> u64 {
    // One SplitMix64 step per index, offset so child 0 differs from the
    // parent's own seed expansion.
    split_mix_finalize(
        base.wrapping_add(GOLDEN_GAMMA.wrapping_mul(index.wrapping_add(1))),
    )
}

/// Namespaced generators, mirroring the layout of `rand 0.8`'s `rngs`.
pub mod rngs {
    /// The workspace's standard generator (PCG64).
    pub use crate::Pcg64 as StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanket_rng_works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = Pcg64::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-answer vectors for SplitMix64 with seed 1234567
        // (cross-checked against the published Java reference).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next(), 6457827717110365317);
        assert_eq!(sm.next(), 3203168211198807973);
    }
}
