//! Partial dependence and individual conditional expectation (ICE)
//! curves.
//!
//! The tutorial opens §2 with methods that "provide a comprehensive
//! summary of features representing the data used to train a model"
//! (\[50\]); PDP/ICE are the canonical global summaries of that kind. The
//! PDP of feature `j` is `g(v) = E_X[f(X with X_j := v)]`; ICE keeps the
//! per-instance curves that the expectation averages (and can hide —
//! heterogeneous ICE curves with a flat PDP signal interactions).

use xai_core::{catch_model, validate, XaiError, XaiResult};
use xai_data::Dataset;
use xai_linalg::stats::quantile;

/// A partial-dependence result.
#[derive(Clone, Debug)]
pub struct PartialDependence {
    /// The evaluation grid for the feature.
    pub grid: Vec<f64>,
    /// PDP values, one per grid point.
    pub pdp: Vec<f64>,
    /// ICE curves: `ice[i][g]` is instance `i`'s output at grid point `g`
    /// (present only when requested).
    pub ice: Option<Vec<Vec<f64>>>,
    /// The feature index.
    pub feature: usize,
}

impl PartialDependence {
    /// Range of the PDP (a scalar global-importance proxy).
    pub fn range(&self) -> f64 {
        let lo = self.pdp.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self.pdp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    /// Mean standard deviation of *centered* ICE curves (each shifted to
    /// start at 0, the "c-ICE" convention) at each grid point. Additive
    /// features give parallel curves ⇒ ~0; interactions give diverging
    /// curve shapes ⇒ large values.
    pub fn ice_heterogeneity(&self) -> Option<f64> {
        let ice = self.ice.as_ref()?;
        if ice.is_empty() {
            return Some(0.0);
        }
        let g = self.grid.len();
        let mut total = 0.0;
        for gi in 0..g {
            let col: Vec<f64> = ice.iter().map(|curve| curve[gi] - curve[0]).collect();
            total += xai_linalg::stats::std_dev(&col);
        }
        Some(total / g as f64)
    }
}

/// Builds an evaluation grid between the feature's 5th and 95th
/// percentiles.
pub fn feature_grid(data: &Dataset, feature: usize, points: usize) -> Vec<f64> {
    assert!(points >= 2);
    let col = data.x().col(feature);
    let lo = quantile(&col, 0.05);
    let hi = quantile(&col, 0.95);
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

/// Computes PDP (and optionally ICE) for one feature over (a subsample
/// of) the dataset.
///
/// # Panics
/// Panics when the model misbehaves; use [`try_partial_dependence`] for
/// typed errors.
pub fn partial_dependence(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    feature: usize,
    grid: &[f64],
    max_rows: usize,
    keep_ice: bool,
) -> PartialDependence {
    assert!(feature < data.n_features());
    assert!(!grid.is_empty());
    let rows = data.n_rows().min(max_rows.max(1));
    let mut pdp = vec![0.0; grid.len()];
    let mut ice = if keep_ice { Some(Vec::with_capacity(rows)) } else { None };
    let mut probe = vec![0.0; data.n_features()];
    for i in 0..rows {
        probe.copy_from_slice(data.row(i));
        let mut curve = keep_ice.then(|| Vec::with_capacity(grid.len()));
        for (g, &v) in grid.iter().enumerate() {
            probe[feature] = v;
            let out = model(&probe);
            pdp[g] += out / rows as f64;
            if let Some(c) = curve.as_mut() {
                c.push(out);
            }
        }
        if let (Some(ice), Some(curve)) = (ice.as_mut(), curve) {
            ice.push(curve);
        }
    }
    PartialDependence { grid: grid.to_vec(), pdp, ice, feature }
}

/// Fallible twin of [`partial_dependence`]: a non-finite grid yields
/// [`XaiError::NonFiniteInput`]; a model that panics or produces
/// non-finite outputs yields [`XaiError::ModelFault`]. The returned
/// curves are guaranteed finite.
pub fn try_partial_dependence(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    feature: usize,
    grid: &[f64],
    max_rows: usize,
    keep_ice: bool,
) -> XaiResult<PartialDependence> {
    validate::finite_slice("PDP grid", grid)?;
    validate::finite_matrix("PDP dataset", data.x())?;
    let pd = catch_model("PDP model evaluation", || {
        partial_dependence(model, data, feature, grid, max_rows, keep_ice)
    })?;
    check_curves(&pd)?;
    Ok(pd)
}

/// Fallible twin of [`partial_dependence_batched`]; failure semantics as
/// in [`try_partial_dependence`].
#[deprecated(note = "superseded by the unified explainer layer: use PdpMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_partial_dependence_batched(
    model: &dyn Fn(&xai_linalg::Matrix) -> Vec<f64>,
    data: &Dataset,
    feature: usize,
    grid: &[f64],
    max_rows: usize,
    keep_ice: bool,
) -> XaiResult<PartialDependence> {
    validate::finite_slice("PDP grid", grid)?;
    validate::finite_matrix("PDP dataset", data.x())?;
    let pd = catch_model("PDP batched model evaluation", || {
        partial_dependence_batched(model, data, feature, grid, max_rows, keep_ice)
    })?;
    check_curves(&pd)?;
    Ok(pd)
}

/// Rejects non-finite PDP/ICE points — the model produced them, so they
/// map to [`XaiError::ModelFault`].
fn check_curves(pd: &PartialDependence) -> XaiResult<()> {
    if let Some(g) = pd.pdp.iter().position(|v| !v.is_finite()) {
        return Err(XaiError::ModelFault {
            context: format!("PDP grid point {g} averaged to {}", pd.pdp[g]),
        });
    }
    if let Some(ice) = pd.ice.as_ref() {
        for (i, curve) in ice.iter().enumerate() {
            if let Some(g) = curve.iter().position(|v| !v.is_finite()) {
                return Err(XaiError::ModelFault {
                    context: format!("ICE curve {i} is {} at grid point {g}", curve[g]),
                });
            }
        }
    }
    Ok(())
}

/// PDP/ICE through a *batched* model surface: all `rows × grid` probe rows
/// are materialized as one matrix (row-major in `(instance, grid-point)`
/// order) and evaluated in a single model call. The accumulation loops run
/// in the same order as [`partial_dependence`], so the result is
/// bit-identical to it when the batched model matches the scalar one
/// row-for-row.
#[deprecated(note = "superseded by the unified explainer layer: use PdpMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn partial_dependence_batched(
    model: &dyn Fn(&xai_linalg::Matrix) -> Vec<f64>,
    data: &Dataset,
    feature: usize,
    grid: &[f64],
    max_rows: usize,
    keep_ice: bool,
) -> PartialDependence {
    assert!(feature < data.n_features());
    assert!(!grid.is_empty());
    let rows = data.n_rows().min(max_rows.max(1));
    let d = data.n_features();
    let mut probes = xai_linalg::Matrix::zeros(rows * grid.len(), d);
    for i in 0..rows {
        for (g, &v) in grid.iter().enumerate() {
            let row = probes.row_mut(i * grid.len() + g);
            row.copy_from_slice(data.row(i));
            row[feature] = v;
        }
    }
    let outs = model(&probes);
    assert_eq!(outs.len(), rows * grid.len(), "batched model returned wrong arity");
    let mut pdp = vec![0.0; grid.len()];
    let mut ice = if keep_ice { Some(Vec::with_capacity(rows)) } else { None };
    for i in 0..rows {
        let block = &outs[i * grid.len()..(i + 1) * grid.len()];
        for (g, &out) in block.iter().enumerate() {
            pdp[g] += out / rows as f64;
        }
        if let Some(ice) = ice.as_mut() {
            ice.push(block.to_vec());
        }
    }
    PartialDependence { grid: grid.to_vec(), pdp, ice, feature }
}

#[cfg(test)]
#[allow(deprecated)] // the twins stay under test until removal
mod tests {
    use super::*;
    use xai_data::synth::friedman1;
    use xai_models::{Gbdt, GbdtConfig, GbdtLoss, Regressor};

    #[test]
    fn linear_model_has_linear_pdp() {
        let data = friedman1(300, 5, 0.1);
        let model = |x: &[f64]| 10.0 * x[3] + 1.0;
        let grid = feature_grid(&data, 3, 5);
        let pd = partial_dependence(&model, &data, 3, &grid, 200, false);
        // PDP of a linear model is the line itself (offset by the average
        // of the other terms = the constant 1).
        for (g, &v) in grid.iter().enumerate() {
            assert!((pd.pdp[g] - (10.0 * v + 1.0)).abs() < 1e-9);
        }
        assert!(pd.range() > 0.0);
    }

    #[test]
    fn irrelevant_feature_has_flat_pdp() {
        let data = friedman1(600, 7, 0.2);
        let gbdt = Gbdt::fit(
            data.x(),
            data.y(),
            GbdtConfig { n_rounds: 60, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let f = |x: &[f64]| Regressor::predict_one(&gbdt, x);
        let relevant = partial_dependence(&f, &data, 3, &feature_grid(&data, 3, 8), 150, false);
        let noise = partial_dependence(&f, &data, 7, &feature_grid(&data, 7, 8), 150, false);
        assert!(
            relevant.range() > 4.0 * noise.range(),
            "x3 range {} vs x7 range {}",
            relevant.range(),
            noise.range()
        );
    }

    #[test]
    fn ice_heterogeneity_detects_interactions() {
        let data = friedman1(400, 9, 0.1);
        // x0·x1 interaction vs purely additive x3.
        let model = |x: &[f64]| 10.0 * (std::f64::consts::PI * x[0] * x[1]).sin() + 10.0 * x[3];
        let pd_interacting =
            partial_dependence(&model, &data, 0, &feature_grid(&data, 0, 8), 150, true);
        let pd_additive =
            partial_dependence(&model, &data, 3, &feature_grid(&data, 3, 8), 150, true);
        let h_int = pd_interacting.ice_heterogeneity().unwrap();
        let h_add = pd_additive.ice_heterogeneity().unwrap();
        assert!(
            h_int > 3.0 * h_add,
            "interacting {h_int} vs additive {h_add}"
        );
    }

    #[test]
    fn ice_curves_average_to_pdp() {
        let data = friedman1(200, 11, 0.1);
        let model = |x: &[f64]| x[0] * x[4] + x[2];
        let grid = feature_grid(&data, 4, 6);
        let pd = partial_dependence(&model, &data, 4, &grid, 100, true);
        let ice = pd.ice.as_ref().unwrap();
        for g in 0..grid.len() {
            let mean: f64 = ice.iter().map(|c| c[g]).sum::<f64>() / ice.len() as f64;
            assert!((mean - pd.pdp[g]).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_pdp_matches_scalar_bitwise() {
        let data = friedman1(120, 21, 0.1);
        let gbdt = Gbdt::fit(
            data.x(),
            data.y(),
            GbdtConfig { n_rounds: 25, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let f = |x: &[f64]| Regressor::predict_one(&gbdt, x);
        let bf = xai_models::batch_regress_fn(&gbdt);
        for keep_ice in [false, true] {
            for feature in [0, 3] {
                let grid = feature_grid(&data, feature, 7);
                let scalar = partial_dependence(&f, &data, feature, &grid, 80, keep_ice);
                let batched = partial_dependence_batched(&bf, &data, feature, &grid, 80, keep_ice);
                assert_eq!(scalar.pdp, batched.pdp);
                assert_eq!(scalar.ice, batched.ice);
                assert_eq!(scalar.grid, batched.grid);
            }
        }
    }

    #[test]
    fn grid_spans_the_central_mass() {
        let data = friedman1(500, 13, 0.1);
        let grid = feature_grid(&data, 0, 10);
        assert_eq!(grid.len(), 10);
        assert!(grid.windows(2).all(|w| w[1] > w[0]));
        assert!(grid[0] >= 0.0 && *grid.last().unwrap() <= 1.0);
    }
}
