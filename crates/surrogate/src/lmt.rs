//! Linear model trees (Lahiri & Edakunni, §2.1.1 \[42\]): a shallow
//! partitioning tree whose leaves hold *linear* models fitted to the black
//! box.
//!
//! This addresses the "one linear model can't be faithful everywhere"
//! problem of plain LIME by giving each region of the input space its own
//! contextual linear explanation, while staying globally consistent
//! (every instance maps to exactly one leaf model).

use xai_core::FeatureAttribution;
use xai_data::Dataset;
use xai_linalg::r_squared;
use xai_models::{
    DecisionTree, LinearConfig, LinearRegression, Regressor, SplitCriterion, TreeConfig,
};

/// A linear model tree distilled from a black box.
#[derive(Clone, Debug)]
pub struct LinearModelTree {
    tree: DecisionTree,
    /// One linear model per tree node id (only leaf entries are used).
    leaf_models: Vec<Option<LinearRegression>>,
    feature_names: Vec<String>,
    /// R² against the black box on the training probes.
    pub train_fidelity: f64,
}

/// Configuration for [`LinearModelTree::distill`].
#[derive(Clone, Copy, Debug)]
pub struct LmtConfig {
    /// Depth of the partitioning tree.
    pub max_depth: usize,
    /// Minimum probes per leaf — keeps leaf regressions well-posed.
    pub min_samples_leaf: usize,
    /// Ridge penalty of the leaf models.
    pub ridge: f64,
}

impl Default for LmtConfig {
    fn default() -> Self {
        Self { max_depth: 3, min_samples_leaf: 20, ridge: 1e-3 }
    }
}

impl LinearModelTree {
    /// Distills `model` over the probe dataset.
    pub fn distill(model: &dyn Fn(&[f64]) -> f64, data: &Dataset, config: LmtConfig) -> Self {
        let outputs: Vec<f64> = (0..data.n_rows()).map(|i| model(data.row(i))).collect();
        let tree = DecisionTree::fit(
            data.x(),
            &outputs,
            TreeConfig {
                max_depth: config.max_depth,
                criterion: SplitCriterion::Variance,
                min_samples_leaf: config.min_samples_leaf,
                min_samples_split: config.min_samples_leaf * 2,
                ..TreeConfig::default()
            },
        );
        // Group training rows by leaf, fit a ridge regression per leaf.
        let n_nodes = tree.nodes().len();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
        for i in 0..data.n_rows() {
            members[tree.leaf_of(data.row(i))].push(i);
        }
        let mut leaf_models: Vec<Option<LinearRegression>> = vec![None; n_nodes];
        for (node_id, idx) in members.iter().enumerate() {
            if idx.is_empty() {
                continue;
            }
            let x = data.x().select_rows(idx);
            let y: Vec<f64> = idx.iter().map(|&i| outputs[i]).collect();
            let lin = LinearRegression::fit(&x, &y, LinearConfig { ridge: config.ridge, intercept: true })
                .expect("leaf ridge regression is well-posed");
            leaf_models[node_id] = Some(lin);
        }
        let mut lmt = Self {
            tree,
            leaf_models,
            feature_names: data.schema().names().iter().map(|s| s.to_string()).collect(),
            train_fidelity: 0.0,
        };
        let preds: Vec<f64> = (0..data.n_rows()).map(|i| lmt.predict_one(data.row(i))).collect();
        lmt.train_fidelity = r_squared(&outputs, &preds);
        lmt
    }

    /// Leaf-model prediction for one row.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        let leaf = self.tree.leaf_of(x);
        match &self.leaf_models[leaf] {
            Some(m) => m.predict_one(x),
            // Leaves that received no probes fall back to the tree value.
            None => self.tree.nodes()[leaf].value,
        }
    }

    /// The contextual linear explanation at `x`: the leaf model's
    /// coefficients as a feature attribution.
    pub fn explain(&self, x: &[f64]) -> FeatureAttribution {
        let leaf = self.tree.leaf_of(x);
        let (intercept, coef) = match &self.leaf_models[leaf] {
            Some(m) => (m.intercept(), m.coef().to_vec()),
            None => (self.tree.nodes()[leaf].value, vec![0.0; self.feature_names.len()]),
        };
        FeatureAttribution::new(
            self.feature_names.clone(),
            coef,
            intercept,
            self.predict_one(x),
        )
    }

    /// Number of leaf regions (distinct local explanations).
    pub fn n_regions(&self) -> usize {
        self.tree.n_leaves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::{circles, friedman1};
    use xai_models::{proba_fn, ForestConfig, Gbdt, GbdtConfig, GbdtLoss, RandomForest};

    #[test]
    fn beats_single_linear_surrogate_on_nonlinear_model() {
        let data = circles(800, 13, 0.15);
        let forest = RandomForest::fit(
            data.x(),
            data.y(),
            ForestConfig { n_trees: 30, seed: 4, ..Default::default() },
        );
        let f = proba_fn(&forest);
        let lmt = LinearModelTree::distill(&f, &data, LmtConfig::default());
        let single = crate::global::linear_surrogate(&f, &data);
        assert!(
            lmt.train_fidelity > single.train_fidelity + 0.2,
            "LMT {} vs single linear {}",
            lmt.train_fidelity,
            single.train_fidelity
        );
        assert!(lmt.n_regions() > 1);
    }

    #[test]
    fn explanations_vary_across_regions() {
        let data = friedman1(900, 15, 0.1);
        let gbdt = Gbdt::fit(
            data.x(),
            data.y(),
            GbdtConfig { n_rounds: 40, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let f = |x: &[f64]| xai_models::Regressor::predict_one(&gbdt, x);
        let lmt = LinearModelTree::distill(&f, &data, LmtConfig::default());
        // Find two rows in different leaves; their explanations differ.
        let e0 = lmt.explain(data.row(0));
        let mut found_different = false;
        for i in 1..data.n_rows() {
            let e = lmt.explain(data.row(i));
            if e.values != e0.values {
                found_different = true;
                break;
            }
        }
        assert!(found_different, "contextual explanations must differ between regions");
    }

    #[test]
    fn prediction_matches_leaf_model() {
        let data = friedman1(400, 21, 0.1);
        let f = |x: &[f64]| 3.0 * x[3] + x[4];
        let lmt = LinearModelTree::distill(&f, &data, LmtConfig::default());
        // The target is globally linear: fidelity should be ~1 and each
        // leaf model should recover the function.
        assert!(lmt.train_fidelity > 0.99, "fidelity {}", lmt.train_fidelity);
        let e = lmt.explain(data.row(0));
        assert!((e.value_of("x3").unwrap() - 3.0).abs() < 0.1);
        assert!((e.value_of("x4").unwrap() - 1.0).abs() < 0.1);
    }
}
