//! SP-LIME: submodular pick of representative explanations
//! (Ribeiro et al., §2.1.1 \[53\], Section 4 of the LIME paper).
//!
//! A human can inspect only a budget `B` of explanations; SP-LIME picks
//! the `B` instances whose LIME explanations together *cover* the model's
//! globally important features. Coverage is
//! `c(V) = Σⱼ Iⱼ · 1[∃ i∈V : |Wᵢⱼ| > 0]` with `Iⱼ = √(Σᵢ |Wᵢⱼ|)`; the
//! function is monotone submodular, so greedy selection is within
//! `(1 − 1/e)` of optimal.

use crate::lime::{LimeConfig, LimeExplainer};
use xai_core::XaiResult;
use xai_data::Dataset;
use xai_linalg::Matrix;

/// The SP-LIME result.
#[derive(Clone, Debug)]
pub struct SubmodularPick {
    /// Chosen instance indices (into the explained row set), in pick order.
    pub selected: Vec<usize>,
    /// Coverage value achieved by the selection.
    pub coverage: f64,
    /// Upper bound: coverage of the full candidate set.
    pub max_coverage: f64,
    /// The explanation matrix `W` (rows = instances, cols = features).
    pub explanations: Matrix,
    /// Global per-feature importance `I`.
    pub feature_importance: Vec<f64>,
}

fn coverage_of(selected: &[usize], w: &Matrix, importance: &[f64], threshold: f64) -> f64 {
    (0..w.cols())
        .map(|j| {
            let covered = selected.iter().any(|&i| w[(i, j)].abs() > threshold);
            if covered {
                importance[j]
            } else {
                0.0
            }
        })
        .sum()
}

/// Rows of `data` that enter the candidate pool for a given cap.
pub(crate) fn candidate_count(data: &Dataset, n_candidates: usize) -> usize {
    data.n_rows().min(n_candidates.max(1))
}

/// One row of the explanation matrix `W`: candidate `i` is explained at
/// seed `seed.wrapping_add(i)` — a per-candidate stream, so candidates
/// can be computed in any order (sequentially, fork-join, or in shards)
/// and still assemble into the same matrix.
pub(crate) fn candidate_row(
    explainer: &LimeExplainer,
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    i: usize,
    config: LimeConfig,
    seed: u64,
) -> XaiResult<Vec<f64>> {
    let exp = explainer.try_explain(model, data.row(i), config, seed.wrapping_add(i as u64))?;
    Ok(exp.attribution.values)
}

/// The deterministic tail of SP-LIME once `W` is assembled: importance,
/// coverage threshold, greedy submodular pick.
pub(crate) fn pick_from_w(w: Matrix, budget: usize) -> SubmodularPick {
    let (n, d) = (w.rows(), w.cols());
    assert!(budget >= 1);
    // Global importance I_j = sqrt(Σ_i |W_ij|).
    let importance: Vec<f64> = (0..d)
        .map(|j| (0..n).map(|i| w[(i, j)].abs()).sum::<f64>().sqrt())
        .collect();
    // Coverage threshold: a feature counts as "explained by i" when its
    // weight is non-negligible relative to the instance's strongest.
    let threshold = {
        let max_abs = w.max_abs();
        max_abs * 0.1
    };

    // Greedy submodular maximization.
    let mut selected: Vec<usize> = Vec::with_capacity(budget);
    for _ in 0..budget.min(n) {
        let current = coverage_of(&selected, &w, &importance, threshold);
        let mut best: Option<(usize, f64)> = None;
        for cand in 0..n {
            if selected.contains(&cand) {
                continue;
            }
            let mut trial = selected.clone();
            trial.push(cand);
            let gain = coverage_of(&trial, &w, &importance, threshold) - current;
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((cand, gain));
            }
        }
        match best {
            Some((cand, gain)) if gain > 0.0 => selected.push(cand),
            // No remaining instance adds coverage: stop early.
            _ => break,
        }
    }
    let coverage = coverage_of(&selected, &w, &importance, threshold);
    let all: Vec<usize> = (0..n).collect();
    let max_coverage = coverage_of(&all, &w, &importance, threshold);
    SubmodularPick {
        selected,
        coverage,
        max_coverage,
        explanations: w,
        feature_importance: importance,
    }
}

/// Runs SP-LIME over the first `n_candidates` rows of `data`.
pub fn sp_lime(
    explainer: &LimeExplainer,
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    n_candidates: usize,
    budget: usize,
    config: LimeConfig,
    seed: u64,
) -> SubmodularPick {
    let n = candidate_count(data, n_candidates);
    let mut w = Matrix::zeros(n, data.n_features());
    for i in 0..n {
        let row = candidate_row(explainer, model, data, i, config, seed)
            .expect("LIME failed; try_explain recovers this");
        w.row_mut(i).copy_from_slice(&row);
    }
    pick_from_w(w, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::german_credit;
    use xai_models::{proba_fn, LogisticConfig, LogisticRegression};

    fn setup() -> (Dataset, LogisticRegression, LimeExplainer) {
        let data = german_credit(400, 3);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let lime = LimeExplainer::fit(&data);
        (data, model, lime)
    }

    #[test]
    fn greedy_selection_is_monotone_in_budget() {
        let (data, model, lime) = setup();
        let f = proba_fn(&model);
        let cfg = LimeConfig { n_samples: 300, ..LimeConfig::default() };
        let pick2 = sp_lime(&lime, &f, &data, 30, 2, cfg, 7);
        let pick5 = sp_lime(&lime, &f, &data, 30, 5, cfg, 7);
        assert!(pick5.coverage >= pick2.coverage - 1e-12);
        assert!(pick2.selected.len() <= 2 && pick5.selected.len() <= 5);
        // Greedy prefix property: the first picks coincide.
        assert_eq!(pick2.selected[0], pick5.selected[0]);
        // Coverage never exceeds the all-instances bound.
        assert!(pick5.coverage <= pick5.max_coverage + 1e-12);
    }

    #[test]
    fn few_instances_cover_most_features_on_a_linear_model() {
        // A linear model's explanations are similar everywhere, so a tiny
        // budget should already reach near-full coverage.
        let (data, model, lime) = setup();
        let f = proba_fn(&model);
        let cfg = LimeConfig { n_samples: 300, ..LimeConfig::default() };
        let pick = sp_lime(&lime, &f, &data, 25, 3, cfg, 5);
        assert!(
            pick.coverage > 0.8 * pick.max_coverage,
            "coverage {} of max {}",
            pick.coverage,
            pick.max_coverage
        );
    }

    #[test]
    fn no_duplicate_selections() {
        let (data, model, lime) = setup();
        let f = proba_fn(&model);
        let cfg = LimeConfig { n_samples: 200, ..LimeConfig::default() };
        let pick = sp_lime(&lime, &f, &data, 20, 8, cfg, 9);
        let mut sorted = pick.selected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pick.selected.len());
    }

    #[test]
    fn importance_vector_matches_matrix() {
        let (data, model, lime) = setup();
        let f = proba_fn(&model);
        let cfg = LimeConfig { n_samples: 200, ..LimeConfig::default() };
        let pick = sp_lime(&lime, &f, &data, 15, 3, cfg, 11);
        for j in 0..data.n_features() {
            let expected: f64 = (0..15).map(|i| pick.explanations[(i, j)].abs()).sum::<f64>().sqrt();
            assert!((pick.feature_importance[j] - expected).abs() < 1e-12);
        }
    }
}
