//! The scaffolding attack on perturbation-based explainers
//! (Slack et al., "Fooling LIME and SHAP", §2.1.1 \[66\]).
//!
//! The tutorial's warning — *"These components can be exploited to perform
//! adversarial attacks that render the explanations futile"* — exploits a
//! simple observation: LIME's perturbations are off the data manifold. An
//! adversary wraps a discriminatory model in a scaffold that behaves
//! discriminatorily **on real inputs** but switches to an innocuous model
//! **on anything that looks like a perturbation**, as judged by an
//! out-of-distribution detector trained on (real, perturbed) pairs. The
//! explainer only ever sees the innocuous behaviour.

use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;
use xai_data::{Dataset, FeatureKind};
use xai_linalg::distr::{categorical, normal};
use xai_linalg::stats::median;
use xai_linalg::Matrix;
use xai_models::{Classifier, ForestConfig, RandomForest};

/// An adversarially scaffolded classifier.
#[derive(Clone, Debug)]
pub struct ScaffoldedModel {
    detector: RandomForest,
    protected_idx: usize,
    innocuous_idx: usize,
    innocuous_cut: f64,
    /// Detector probability above which an input counts as "real data".
    pub in_dist_threshold: f64,
}

/// Configuration for [`ScaffoldedModel::train`].
#[derive(Clone, Copy, Debug)]
pub struct AttackConfig {
    /// Perturbed copies generated per real row for the detector.
    pub perturbations_per_row: usize,
    /// Trees in the OOD detector.
    pub detector_trees: usize,
    /// Detector decision threshold.
    pub in_dist_threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self { perturbations_per_row: 2, detector_trees: 40, in_dist_threshold: 0.5, seed: 0 }
    }
}

impl ScaffoldedModel {
    /// Trains the scaffold: an OOD detector that separates the real data
    /// from LIME-style perturbations of it.
    ///
    /// `protected_idx` is the feature the hidden model discriminates on;
    /// `innocuous_idx` is the feature the decoy model uses.
    pub fn train(data: &Dataset, protected_idx: usize, innocuous_idx: usize, config: AttackConfig) -> Self {
        assert!(protected_idx < data.n_features() && innocuous_idx < data.n_features());
        let n = data.n_rows();
        let k = config.perturbations_per_row.max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Column statistics for LIME-style perturbation.
        let d = data.n_features();
        let mut stds = Vec::with_capacity(d);
        let mut freqs: Vec<Option<Vec<f64>>> = Vec::with_capacity(d);
        for j in 0..d {
            let col = data.x().col(j);
            match &data.schema().feature(j).kind {
                FeatureKind::Numeric { .. } => {
                    stds.push(xai_linalg::stats::std_dev(&col).max(1e-9));
                    freqs.push(None);
                }
                FeatureKind::Categorical { categories } => {
                    let mut f = vec![0.0; categories.len()];
                    for &v in &col {
                        f[v.round() as usize] += 1.0;
                    }
                    stds.push(0.0);
                    freqs.push(Some(f));
                }
            }
        }

        // Detector training set: real rows (label 1) + perturbed (label 0).
        let total = n + n * k;
        let mut x = Matrix::zeros(total, d);
        let mut y = Vec::with_capacity(total);
        for i in 0..n {
            x.row_mut(i).copy_from_slice(data.row(i));
            y.push(1.0);
        }
        let mut row_buf = vec![0.0; d];
        for i in 0..n {
            for c in 0..k {
                let base = data.row(i);
                for j in 0..d {
                    row_buf[j] = match &freqs[j] {
                        None => base[j] + normal(&mut rng, 0.0, stds[j]),
                        Some(f) => categorical(&mut rng, f) as f64,
                    };
                }
                let out = n + i * k + c;
                x.row_mut(out).copy_from_slice(&row_buf);
                y.push(0.0);
            }
        }
        let detector = RandomForest::fit(
            &x,
            &y,
            ForestConfig { n_trees: config.detector_trees, seed: config.seed, ..Default::default() },
        );

        let innocuous_cut = median(&data.x().col(innocuous_idx));
        // Calibrate the decision threshold on the real rows: accept the
        // bottom decile of real-row scores so ~90% of genuine inputs hit
        // the biased branch regardless of detector class imbalance.
        let real_scores: Vec<f64> = (0..n).map(|i| detector.proba_one(data.row(i))).collect();
        let calibrated = xai_linalg::stats::quantile(&real_scores, 0.1).clamp(0.05, 0.95);
        Self {
            detector,
            protected_idx,
            innocuous_idx,
            innocuous_cut,
            in_dist_threshold: calibrated.min(config.in_dist_threshold),
        }
    }

    /// The hidden discriminatory model: decides purely on the protected
    /// attribute.
    pub fn biased_prediction(&self, x: &[f64]) -> f64 {
        if x[self.protected_idx] >= 0.5 {
            0.1
        } else {
            0.9
        }
    }

    /// The decoy model shown to explainers: decides on an innocuous
    /// feature.
    pub fn innocuous_prediction(&self, x: &[f64]) -> f64 {
        if x[self.innocuous_idx] > self.innocuous_cut {
            0.9
        } else {
            0.1
        }
    }

    /// Detector's belief that `x` is real data.
    pub fn in_distribution_score(&self, x: &[f64]) -> f64 {
        self.detector.proba_one(x)
    }

    /// The scaffolded prediction: biased on-manifold, innocuous off it.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.in_distribution_score(x) >= self.in_dist_threshold {
            self.biased_prediction(x)
        } else {
            self.innocuous_prediction(x)
        }
    }
}

/// Outcome of auditing a model with LIME: how often the protected feature
/// tops the explanation.
#[derive(Clone, Debug)]
pub struct AuditResult {
    /// Fraction of audited instances whose top-1 LIME feature is the
    /// protected one.
    pub protected_top1_rate: f64,
    /// Fraction where it appears in the top-3.
    pub protected_top3_rate: f64,
    /// Instances audited.
    pub instances: usize,
}

/// Audits a model with LIME over the first `instances` rows.
pub fn lime_audit(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    protected_idx: usize,
    instances: usize,
    seed: u64,
) -> AuditResult {
    let lime = crate::lime::LimeExplainer::fit(data);
    let m = instances.min(data.n_rows());
    let mut top1 = 0usize;
    let mut top3 = 0usize;
    for i in 0..m {
        let exp = lime.explain(
            model,
            data.row(i),
            crate::lime::LimeConfig { n_samples: 400, ..Default::default() },
            seed.wrapping_add(i as u64),
        );
        let ranking = exp.attribution.ranking();
        if ranking[0] == protected_idx {
            top1 += 1;
        }
        if ranking.iter().take(3).any(|&r| r == protected_idx) {
            top3 += 1;
        }
    }
    AuditResult {
        protected_top1_rate: top1 as f64 / m as f64,
        protected_top3_rate: top3 as f64 / m as f64,
        instances: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::demographic_parity_gap;
    use xai_data::synth::recidivism;

    fn setup() -> (Dataset, ScaffoldedModel) {
        let data = recidivism(500, 31, 0.0);
        let scaffold = ScaffoldedModel::train(&data, 4, 1, AttackConfig::default());
        (data, scaffold)
    }

    #[test]
    fn scaffold_is_fully_biased_on_real_data() {
        let (data, scaffold) = setup();
        let preds: Vec<f64> = (0..data.n_rows()).map(|i| f64::from(scaffold.predict(data.row(i)) >= 0.5)).collect();
        let agree = preds
            .iter()
            .enumerate()
            .filter(|(i, &p)| p == f64::from(scaffold.biased_prediction(data.row(*i)) >= 0.5))
            .count();
        assert!(
            agree as f64 / data.n_rows() as f64 > 0.9,
            "scaffold must behave like the biased model on real rows ({agree}/{})",
            data.n_rows()
        );
        let gap = demographic_parity_gap(&preds, &data.x().col(4));
        assert!(gap > 0.8, "real-data parity gap {gap}");
    }

    #[test]
    fn detector_separates_real_from_perturbed() {
        let (data, scaffold) = setup();
        let mut rng = StdRng::seed_from_u64(99);
        let mut real_scores = 0.0;
        let mut fake_scores = 0.0;
        let m = 100;
        for i in 0..m {
            real_scores += scaffold.in_distribution_score(data.row(i));
            // A LIME-style perturbation: jitter all numeric features hard.
            let mut p = data.row(i).to_vec();
            for v in p.iter_mut().take(3) {
                *v += normal(&mut rng, 0.0, 30.0);
            }
            fake_scores += scaffold.in_distribution_score(&p);
        }
        assert!(
            real_scores / m as f64 > fake_scores / m as f64 + 0.3,
            "detector must separate: real {} vs fake {}",
            real_scores / m as f64,
            fake_scores / m as f64
        );
    }

    #[test]
    fn attack_hides_the_protected_feature_from_lime() {
        let (data, scaffold) = setup();
        // Honest biased model: LIME sees the protected feature every time.
        let honest = |x: &[f64]| scaffold.biased_prediction(x);
        let honest_audit = lime_audit(&honest, &data, 4, 15, 7);
        assert!(
            honest_audit.protected_top1_rate > 0.9,
            "honest audit must flag the bias, rate {}",
            honest_audit.protected_top1_rate
        );
        // Attacked model: the protected feature (mostly) disappears.
        let attacked = |x: &[f64]| scaffold.predict(x);
        let attacked_audit = lime_audit(&attacked, &data, 4, 15, 7);
        assert!(
            attacked_audit.protected_top1_rate < honest_audit.protected_top1_rate - 0.4,
            "attack must hide the bias: honest {} vs attacked {}",
            honest_audit.protected_top1_rate,
            attacked_audit.protected_top1_rate
        );
    }
}
