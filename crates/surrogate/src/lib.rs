//! # xai-surrogate
//!
//! Surrogate explainability (tutorial §2.1.1): approximate a black box
//! with an interpretable proxy, locally or globally — plus the published
//! critiques of that idea, implemented and measurable.
//!
//! - [`lime`] — LIME for tabular data (local weighted ridge surrogate);
//! - [`stability`] — Visani-style VSI/CSI indices quantifying the
//!   "unreliable sampling" critique;
//! - [`global`] — whole-model tree and linear surrogates with fidelity
//!   scores;
//! - [`lmt`] — linear model trees: one contextual linear explanation per
//!   input region;
//! - [`attack`] — the Slack et al. scaffolding attack that hides a biased
//!   model from perturbation-based explainers.

pub mod attack;
pub mod cxplain;
pub mod explainer;
pub mod global;
pub mod importance;
pub mod pdp;
pub mod roar;
pub mod lime;
pub mod saliency;
pub mod lmt;
pub mod sp_lime;
pub mod stability;

pub use cxplain::{CxPlain, CxPlainConfig};
pub use explainer::{IntegratedGradientsMethod, LimeMethod, PdpMethod, SpLimeMethod};
pub use saliency::{
    gradient_times_input, integrated_gradients, saliency, smooth_grad, Differentiable,
};
pub use attack::{lime_audit, AttackConfig, AuditResult, ScaffoldedModel};
pub use importance::{permutation_importance, PermutationImportance};
#[allow(deprecated)] // re-export keeps the legacy twins reachable during migration
pub use pdp::{
    feature_grid, partial_dependence, partial_dependence_batched, try_partial_dependence,
    try_partial_dependence_batched, PartialDependence,
};
pub use global::{holdout_fidelity, linear_surrogate, tree_surrogate, GlobalSurrogate};
pub use lime::{LimeConfig, LimeExplainer, LimeExplanation};
pub use lmt::{LinearModelTree, LmtConfig};
pub use roar::{random_ranking, roar_curve, RoarCurve};
pub use sp_lime::{sp_lime, SubmodularPick};
pub use stability::{lime_stability, LimeStability};
