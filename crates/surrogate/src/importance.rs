//! Permutation feature importance (Breiman/Fisher-style; the classical
//! global baseline the §2.1.2 local→global aggregation is compared to).
//!
//! The importance of feature `j` is the drop in a performance score when
//! column `j` is randomly permuted (breaking its relationship with the
//! target while preserving its marginal). Model-agnostic, global, and —
//! unlike Shapley aggregation — blind to which *direction* a feature
//! pushes and prone to extrapolation under correlated features (both
//! facts are asserted as tests).

use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;
use xai_data::Dataset;

/// Permutation-importance report.
#[derive(Clone, Debug)]
pub struct PermutationImportance {
    /// Mean score drop per feature (higher = more important).
    pub importances: Vec<f64>,
    /// The unpermuted baseline score.
    pub baseline_score: f64,
    /// Number of permutation repeats averaged.
    pub repeats: usize,
}

impl PermutationImportance {
    /// Features sorted by importance descending.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.importances.len()).collect();
        idx.sort_by(|&a, &b| {
            self.importances[b]
                .partial_cmp(&self.importances[a])
                .expect("NaN importance")
                .then(a.cmp(&b))
        });
        idx
    }
}

/// Computes permutation importance.
///
/// `score` maps (predictions, targets) to a higher-is-better score (e.g.
/// accuracy or negative MSE); `model` maps a row to a prediction.
pub fn permutation_importance(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    score: &dyn Fn(&[f64], &[f64]) -> f64,
    repeats: usize,
    seed: u64,
) -> PermutationImportance {
    assert!(repeats >= 1);
    let n = data.n_rows();
    let d = data.n_features();
    let preds: Vec<f64> = (0..n).map(|i| model(data.row(i))).collect();
    let baseline_score = score(&preds, data.y());

    let mut rng = StdRng::seed_from_u64(seed);
    let mut importances = vec![0.0; d];
    let mut perm: Vec<usize> = (0..n).collect();
    let mut probe = vec![0.0; d];
    for (j, importance) in importances.iter_mut().enumerate() {
        for _ in 0..repeats {
            perm.shuffle(&mut rng);
            let permuted_preds: Vec<f64> = (0..n)
                .map(|i| {
                    probe.copy_from_slice(data.row(i));
                    probe[j] = data.x()[(perm[i], j)];
                    model(&probe)
                })
                .collect();
            let s = score(&permuted_preds, data.y());
            *importance += (baseline_score - s) / repeats as f64;
        }
    }
    PermutationImportance { importances, baseline_score, repeats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::accuracy;
    use xai_data::synth::{friedman1, linear_gaussian};
    use xai_models::{proba_fn, Gbdt, GbdtConfig, GbdtLoss, LogisticConfig, LogisticRegression, Regressor};

    #[test]
    fn recovers_relevant_features_on_friedman() {
        let data = friedman1(800, 3, 0.2);
        let gbdt = Gbdt::fit(
            data.x(),
            data.y(),
            GbdtConfig { n_rounds: 60, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let f = |x: &[f64]| Regressor::predict_one(&gbdt, x);
        let neg_mse = |p: &[f64], y: &[f64]| -xai_data::metrics::mse(y, p);
        let pi = permutation_importance(&f, &data, &neg_mse, 3, 7);
        let top5: std::collections::HashSet<usize> = pi.ranking().into_iter().take(5).collect();
        let hits = (0..5).filter(|i| top5.contains(i)).count();
        assert!(hits >= 4, "top-5 should be the true features: {top5:?}");
    }

    #[test]
    fn unused_features_score_zero() {
        let data = linear_gaussian(500, &[2.0, 0.0], 0.0, 5);
        let model = |x: &[f64]| x[0];
        let neg_mse = |p: &[f64], y: &[f64]| -xai_data::metrics::mse(y, p);
        let pi = permutation_importance(&model, &data, &neg_mse, 2, 3);
        assert_eq!(pi.importances[1], 0.0, "permuting an unused column changes nothing");
        assert!(pi.importances[0] > 0.0);
    }

    #[test]
    fn works_with_classification_accuracy() {
        let data = linear_gaussian(800, &[3.0, -0.2], 0.0, 9);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let f = proba_fn(&model);
        let acc = |p: &[f64], y: &[f64]| accuracy(y, p);
        let pi = permutation_importance(&f, &data, &acc, 4, 11);
        assert!(pi.baseline_score > 0.7);
        assert!(pi.importances[0] > pi.importances[1] + 0.02);
        assert_eq!(pi.ranking()[0], 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = linear_gaussian(200, &[1.0, -1.0], 0.0, 13);
        let model = |x: &[f64]| x[0] - x[1];
        let neg_mse = |p: &[f64], y: &[f64]| -xai_data::metrics::mse(y, p);
        let a = permutation_importance(&model, &data, &neg_mse, 2, 21);
        let b = permutation_importance(&model, &data, &neg_mse, 2, 21);
        assert_eq!(a.importances, b.importances);
    }
}
