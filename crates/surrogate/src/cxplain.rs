//! CXPlain-style amortized explanation (Schwab & Karlen, §2.1.3 \[61\]).
//!
//! Instead of optimizing a fresh surrogate per instance (LIME), CXPlain
//! *trains an explanation model once*: the teacher signal for feature `j`
//! on instance `x` is the Granger-style masking delta
//! `Δⱼ(x) = loss(f(x with xⱼ masked)) − loss(f(x))` — how much error
//! removing the feature causes — normalized over features; a student
//! regressor then learns `x ↦ Δ(x)` and explains *new* instances with a
//! single forward pass. We use one small GBDT per feature as the student.

use xai_core::FeatureAttribution;
use xai_data::Dataset;
use xai_linalg::Matrix;
use xai_models::{Gbdt, GbdtConfig, GbdtLoss, Regressor, SplitCriterion, TreeConfig};

/// Configuration for [`CxPlain::train`].
#[derive(Clone, Copy, Debug)]
pub struct CxPlainConfig {
    /// Boosting rounds of each per-feature student.
    pub student_rounds: usize,
    /// Student tree depth.
    pub student_depth: usize,
}

impl Default for CxPlainConfig {
    fn default() -> Self {
        Self { student_rounds: 40, student_depth: 3 }
    }
}

/// A trained amortized explainer.
pub struct CxPlain {
    students: Vec<Gbdt>,
    feature_names: Vec<String>,
    masks: Vec<f64>,
    /// Teacher/student agreement (R², averaged over features) on the
    /// training probes.
    pub train_agreement: f64,
}

impl CxPlain {
    /// The masking deltas that form the teacher signal: per instance, the
    /// increase in squared error when feature `j` is replaced by its mean.
    pub fn teacher_deltas(model: &dyn Fn(&[f64]) -> f64, data: &Dataset, masks: &[f64]) -> Matrix {
        let n = data.n_rows();
        let d = data.n_features();
        let mut deltas = Matrix::zeros(n, d);
        let mut probe = vec![0.0; d];
        for i in 0..n {
            let x = data.row(i);
            let y = data.y()[i];
            let base_loss = (model(x) - y).powi(2);
            for j in 0..d {
                probe.copy_from_slice(x);
                probe[j] = masks[j];
                let masked_loss = (model(&probe) - y).powi(2);
                deltas[(i, j)] = (masked_loss - base_loss).max(0.0);
            }
            // Normalize to a distribution over features (CXPlain's output).
            let total: f64 = deltas.row(i).iter().sum();
            if total > 1e-12 {
                for v in deltas.row_mut(i) {
                    *v /= total;
                }
            }
        }
        deltas
    }

    /// Trains the explanation model against a black box on labeled probes.
    pub fn train(model: &dyn Fn(&[f64]) -> f64, data: &Dataset, config: CxPlainConfig) -> Self {
        let d = data.n_features();
        let masks: Vec<f64> = (0..d)
            .map(|j| xai_linalg::stats::mean(&data.x().col(j)))
            .collect();
        let deltas = Self::teacher_deltas(model, data, &masks);
        let student_config = GbdtConfig {
            n_rounds: config.student_rounds,
            loss: GbdtLoss::Squared,
            tree: TreeConfig {
                max_depth: config.student_depth,
                criterion: SplitCriterion::Variance,
                min_samples_leaf: 5,
                ..TreeConfig::default()
            },
            ..GbdtConfig::default()
        };
        let mut students = Vec::with_capacity(d);
        let mut agreement = 0.0;
        for j in 0..d {
            let target = deltas.col(j);
            let student = Gbdt::fit(data.x(), &target, student_config);
            let preds = Regressor::predict(&student, data.x());
            agreement += xai_linalg::r_squared(&target, &preds) / d as f64;
            students.push(student);
        }
        Self {
            students,
            feature_names: data.schema().names().iter().map(|s| s.to_string()).collect(),
            masks,
            train_agreement: agreement,
        }
    }

    /// Explains a new instance with one forward pass per feature —
    /// no sampling, no optimization.
    pub fn explain(&self, x: &[f64]) -> FeatureAttribution {
        let mut values: Vec<f64> = self
            .students
            .iter()
            .map(|s| Regressor::predict_one(s, x).max(0.0))
            .collect();
        let total: f64 = values.iter().sum();
        if total > 1e-12 {
            for v in values.iter_mut() {
                *v /= total;
            }
        }
        FeatureAttribution::new(self.feature_names.clone(), values, 0.0, 1.0)
    }

    /// The mask (mean-imputation) values used for the teacher signal.
    pub fn masks(&self) -> &[f64] {
        &self.masks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::friedman1;
    use xai_models::{proba_fn, LogisticConfig, LogisticRegression};

    #[test]
    fn teacher_deltas_identify_relevant_features_of_a_linear_model() {
        let data = xai_data::synth::linear_gaussian(500, &[3.0, 0.0], 0.0, 5);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let f = proba_fn(&model);
        let masks = vec![0.0, 0.0];
        let deltas = CxPlain::teacher_deltas(&f, &data, &masks);
        let mean0 = xai_linalg::stats::mean(&deltas.col(0));
        let mean1 = xai_linalg::stats::mean(&deltas.col(1));
        assert!(mean0 > 3.0 * mean1, "relevant {mean0} vs irrelevant {mean1}");
    }

    #[test]
    fn amortized_explanations_generalize_to_held_out_data() {
        let data = friedman1(800, 7, 0.2);
        let (train, test) = data.train_test_split(0.3, 1);
        let gbdt = Gbdt::fit(
            train.x(),
            train.y(),
            GbdtConfig { n_rounds: 60, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let f = |x: &[f64]| Regressor::predict_one(&gbdt, x);
        let cx = CxPlain::train(&f, &train, CxPlainConfig::default());
        assert!(cx.train_agreement > 0.3, "student agreement {}", cx.train_agreement);
        // On unseen rows, relevant features (0–4) should dominate noise (5–9).
        let mut relevant = 0.0;
        let mut noise = 0.0;
        for i in 0..test.n_rows().min(60) {
            let e = cx.explain(test.row(i));
            relevant += e.values[..5].iter().sum::<f64>();
            noise += e.values[5..].iter().sum::<f64>();
        }
        assert!(relevant > 2.0 * noise, "relevant {relevant} vs noise {noise}");
    }

    #[test]
    fn explanations_are_normalized_distributions() {
        let data = friedman1(300, 9, 0.2);
        let model = |x: &[f64]| x[3];
        let cx = CxPlain::train(&model, &data, CxPlainConfig::default());
        for i in 0..10 {
            let e = cx.explain(data.row(i));
            let total: f64 = e.values.iter().sum();
            assert!((total - 1.0).abs() < 1e-9 || total.abs() < 1e-9);
            assert!(e.values.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn explanation_latency_is_sampling_free() {
        // Not a timing assertion (flaky) — a structural one: explaining
        // must not call the black box at all.
        use std::cell::Cell;
        let calls = Cell::new(0usize);
        let data = friedman1(300, 11, 0.2);
        let model = |x: &[f64]| {
            calls.set(calls.get() + 1);
            x[3] + x[4]
        };
        let cx = CxPlain::train(&model, &data, CxPlainConfig::default());
        let during_training = calls.get();
        let _ = cx.explain(data.row(0));
        let _ = cx.explain(data.row(1));
        assert_eq!(calls.get(), during_training, "explain() must be model-free");
    }
}
