//! ROAR: RemOve And Retrain (Hooker et al.) — the retraining-based
//! faithfulness benchmark for feature attributions.
//!
//! §3 "User study and evaluation" asks how explanation techniques should
//! be evaluated; deletion curves (see `xai-core::eval`) perturb inputs of
//! a *fixed* model, which conflates attribution quality with
//! off-manifold model behaviour. ROAR instead **retrains** after removing
//! the top-attributed features: if the attribution found truly
//! informative features, accuracy after retraining must drop faster than
//! under random removal.

use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;
use xai_data::metrics::accuracy;
use xai_data::Dataset;
use xai_linalg::Matrix;
use xai_models::{Classifier, LogisticConfig, LogisticRegression};

/// One ROAR curve: accuracy after removing the `k` top-ranked features.
#[derive(Clone, Debug)]
pub struct RoarCurve {
    /// `(features removed, retrained test accuracy)` points, starting at 0.
    pub points: Vec<(usize, f64)>,
}

impl RoarCurve {
    /// Area under the curve (lower = attribution found the signal).
    pub fn auc(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |p| p.1);
        }
        self.points.windows(2).map(|w| 0.5 * (w[0].1 + w[1].1)).sum::<f64>()
            / (self.points.len() - 1) as f64
    }
}

fn mask_columns(x: &Matrix, cols: &[usize], fill: &[f64]) -> Matrix {
    let mut out = x.clone();
    for i in 0..out.rows() {
        for &j in cols {
            out[(i, j)] = fill[j];
        }
    }
    out
}

/// Runs ROAR with a logistic probe model: features are removed in the
/// given ranking order (most important first, replaced by their training
/// means), the probe is retrained at each step, and held-out accuracy is
/// recorded.
pub fn roar_curve(
    train: &Dataset,
    test: &Dataset,
    ranking: &[usize],
    steps: usize,
    config: LogisticConfig,
) -> RoarCurve {
    assert_eq!(ranking.len(), train.n_features(), "ranking must cover all features");
    assert!(steps >= 1);
    let means: Vec<f64> = (0..train.n_features())
        .map(|j| xai_linalg::stats::mean(&train.x().col(j)))
        .collect();
    let eval = |removed: &[usize]| -> f64 {
        let xt = mask_columns(train.x(), removed, &means);
        let xs = mask_columns(test.x(), removed, &means);
        let model = LogisticRegression::fit(&xt, train.y(), config);
        accuracy(test.y(), &{
            let m = xs;
            Classifier::predict(&model, &m)
        })
    };
    let mut points = vec![(0usize, eval(&[]))];
    let per_step = (train.n_features() as f64 / steps as f64).ceil() as usize;
    let mut removed: Vec<usize> = Vec::new();
    for chunk in ranking.chunks(per_step.max(1)) {
        removed.extend_from_slice(chunk);
        points.push((removed.len(), eval(&removed)));
        if removed.len() >= train.n_features() {
            break;
        }
    }
    RoarCurve { points }
}

/// Convenience baseline: a seeded random feature ranking.
pub fn random_ranking(n_features: usize, seed: u64) -> Vec<usize> {
    let mut r: Vec<usize> = (0..n_features).collect();
    r.shuffle(&mut StdRng::seed_from_u64(seed));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::linear_gaussian;
    use xai_models::proba_fn;

    fn setup() -> (Dataset, Dataset) {
        // Features 0 and 1 carry all the signal; 2–5 are noise.
        let train = linear_gaussian(900, &[2.5, -2.0, 0.0, 0.0, 0.0, 0.0], 0.0, 141);
        let test = linear_gaussian(500, &[2.5, -2.0, 0.0, 0.0, 0.0, 0.0], 0.0, 142);
        (train, test)
    }

    #[test]
    fn informed_ranking_collapses_accuracy_faster_than_random() {
        let (train, test) = setup();
        let informed = vec![0usize, 1, 2, 3, 4, 5];
        let anti = vec![5usize, 4, 3, 2, 1, 0];
        let cfg = LogisticConfig::default();
        let roar_informed = roar_curve(&train, &test, &informed, 6, cfg);
        let roar_anti = roar_curve(&train, &test, &anti, 6, cfg);
        assert!(
            roar_informed.auc() < roar_anti.auc() - 0.05,
            "informed {} vs anti-informed {}",
            roar_informed.auc(),
            roar_anti.auc()
        );
        // Removing the two signal features drops accuracy to ~chance.
        assert!(roar_informed.points[2].1 < 0.62, "{:?}", roar_informed.points);
    }

    #[test]
    fn shap_ranking_beats_random_under_roar() {
        let (train, test) = setup();
        let model = LogisticRegression::fit(train.x(), train.y(), LogisticConfig::default());
        let f = proba_fn(&model);
        // Global SHAP ranking via mean |phi| over a few rows.
        let background = train.x().select_rows(&(0..16).collect::<Vec<_>>());
        let mut mean_abs = vec![0.0; train.n_features()];
        for i in 0..20 {
            let game = xai_shapley::PredictionGame::new(&f, train.row(i), &background);
            let phi = xai_shapley::exact_shapley(&game);
            for (m, p) in mean_abs.iter_mut().zip(&phi) {
                *m += p.abs();
            }
        }
        let mut shap_rank: Vec<usize> = (0..train.n_features()).collect();
        shap_rank.sort_by(|&a, &b| mean_abs[b].partial_cmp(&mean_abs[a]).unwrap());

        let cfg = LogisticConfig::default();
        let shap_roar = roar_curve(&train, &test, &shap_rank, 6, cfg);
        let rand_roar = roar_curve(&train, &test, &random_ranking(6, 3), 6, cfg);
        assert!(
            shap_roar.auc() <= rand_roar.auc() + 0.01,
            "shap {} vs random {}",
            shap_roar.auc(),
            rand_roar.auc()
        );
    }

    #[test]
    fn curve_starts_full_and_ends_at_chance() {
        let (train, test) = setup();
        let cfg = LogisticConfig::default();
        let curve = roar_curve(&train, &test, &[0, 1, 2, 3, 4, 5], 3, cfg);
        assert_eq!(curve.points[0].0, 0);
        assert!(curve.points[0].1 > 0.8, "full model is strong");
        let last = curve.points.last().unwrap();
        assert_eq!(last.0, 6);
        assert!(last.1 < 0.62, "all features removed ⇒ chance-level");
    }
}
