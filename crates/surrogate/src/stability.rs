//! Stability indices for LIME (Visani et al., §2.1.1 \[73\]).
//!
//! The tutorial's critique — *"\[LIME\] involves sampling of points near the
//! local neighborhood which can be unreliable"* — is made measurable here
//! with the two indices of Visani et al.:
//!
//! - **VSI** (Variables Stability Index): across repeated LIME runs on the
//!   same instance, how consistently do the same variables appear among
//!   the top-k? (mean pairwise Jaccard similarity of top-k sets);
//! - **CSI** (Coefficients Stability Index): how consistent are the signs
//!   and magnitudes of each retained coefficient? (mean pairwise sign
//!   agreement weighted by relative magnitude agreement).

// Pairwise stability sums index two coefficient vectors at once.
#![allow(clippy::needless_range_loop)]
use crate::lime::{LimeConfig, LimeExplainer};

/// Stability measurement across repeated LIME runs.
#[derive(Clone, Debug)]
pub struct LimeStability {
    /// Variables Stability Index in `\[0, 1\]`.
    pub vsi: f64,
    /// Coefficients Stability Index in `\[0, 1\]`.
    pub csi: f64,
    /// Number of repetitions measured.
    pub runs: usize,
    /// The `k` used for the top-k sets.
    pub k: usize,
}

fn top_k_set(values: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].abs().partial_cmp(&values[a].abs()).expect("NaN"));
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<_> = a.iter().collect();
    let sb: std::collections::HashSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Runs LIME `runs` times with different seeds and measures stability.
pub fn lime_stability(
    explainer: &LimeExplainer,
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    config: LimeConfig,
    runs: usize,
    k: usize,
    base_seed: u64,
) -> LimeStability {
    assert!(runs >= 2, "stability needs at least two runs");
    let k = k.max(1).min(explainer.n_features());
    let coefs: Vec<Vec<f64>> = (0..runs)
        .map(|r| {
            explainer
                .explain(model, instance, config, base_seed.wrapping_add(r as u64 * 7919))
                .attribution
                .values
        })
        .collect();

    let mut vsi_sum = 0.0;
    let mut csi_sum = 0.0;
    let mut pairs = 0.0;
    for i in 0..runs {
        for j in i + 1..runs {
            pairs += 1.0;
            vsi_sum += jaccard(&top_k_set(&coefs[i], k), &top_k_set(&coefs[j], k));
            // CSI: per feature, sign agreement scaled by magnitude ratio.
            let d = coefs[i].len();
            let mut agree = 0.0;
            for f in 0..d {
                let (a, b) = (coefs[i][f], coefs[j][f]);
                if a == 0.0 && b == 0.0 {
                    agree += 1.0;
                } else if a.signum() == b.signum() {
                    let (lo, hi) = (a.abs().min(b.abs()), a.abs().max(b.abs()));
                    agree += if hi > 0.0 { lo / hi } else { 1.0 };
                }
            }
            csi_sum += agree / d as f64;
        }
    }
    LimeStability { vsi: vsi_sum / pairs, csi: csi_sum / pairs, runs, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::german_credit;
    use xai_models::{proba_fn, LogisticConfig, LogisticRegression};

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn more_samples_more_stability() {
        // The E5 claim: LIME's instability is a sampling artefact, so
        // increasing n_samples must raise both indices.
        let data = german_credit(600, 17);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let instance = data.row(0);
        let small = lime_stability(
            &lime,
            &f,
            instance,
            LimeConfig { n_samples: 40, ..LimeConfig::default() },
            6,
            3,
            100,
        );
        let large = lime_stability(
            &lime,
            &f,
            instance,
            LimeConfig { n_samples: 2000, ..LimeConfig::default() },
            6,
            3,
            100,
        );
        assert!(
            large.vsi >= small.vsi - 0.05,
            "VSI should improve with samples: {} -> {}",
            small.vsi,
            large.vsi
        );
        assert!(
            large.csi > small.csi,
            "CSI should improve with samples: {} -> {}",
            small.csi,
            large.csi
        );
        assert!(large.vsi > 0.6, "large-sample VSI {}", large.vsi);
    }

    #[test]
    fn indices_bounded() {
        let data = german_credit(300, 19);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let s = lime_stability(&lime, &f, data.row(3), LimeConfig { n_samples: 60, ..Default::default() }, 4, 3, 5);
        assert!((0.0..=1.0).contains(&s.vsi));
        assert!((0.0..=1.0).contains(&s.csi));
        assert_eq!(s.runs, 4);
    }
}
