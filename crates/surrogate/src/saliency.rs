//! Gradient-based attributions: saliency, gradient × input, integrated
//! gradients, and SmoothGrad.
//!
//! §2.4 of the tutorial surveys "sensitivity map, saliency map, …
//! gradient-based attribution methods" for differentiable models, and
//! §2.1.1's reliability critiques (\[2, 22\]: saliency maps can be "fragile
//! and unreliable") motivate the axiomatic variant. These methods are
//! *model-specific* (they need `∂f/∂x`); here they run against any
//! [`Differentiable`] model — the workspace's [`xai_models::Mlp`]
//! implements it, and a closed-form impl for linear models anchors the
//! tests.
//!
//! Integrated gradients satisfies **completeness**:
//! `Σⱼ IGⱼ = f(x) − f(baseline)` — checked by the tests and by
//! experiment E23.

use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;
use xai_core::FeatureAttribution;
use xai_linalg::distr::normal;
use xai_models::{Classifier, LogisticRegression, Mlp};

/// A model exposing output gradients with respect to its input.
pub trait Differentiable {
    /// The scalar model output at `x`.
    fn output(&self, x: &[f64]) -> f64;
    /// `∂ output / ∂ x` at `x`.
    fn input_gradient(&self, x: &[f64]) -> Vec<f64>;
}

impl Differentiable for Mlp {
    fn output(&self, x: &[f64]) -> f64 {
        self.proba_one(x)
    }
    fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        Mlp::input_gradient(self, x)
    }
}

impl Differentiable for LogisticRegression {
    fn output(&self, x: &[f64]) -> f64 {
        self.proba_one(x)
    }
    fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        let p = self.proba_one(x);
        let scale = p * (1.0 - p);
        self.coef().iter().map(|w| w * scale).collect()
    }
}

/// Plain saliency: `|∂f/∂xⱼ|`.
pub fn saliency<M: Differentiable>(model: &M, x: &[f64]) -> Vec<f64> {
    model.input_gradient(x).into_iter().map(f64::abs).collect()
}

/// Gradient × input: `xⱼ · ∂f/∂xⱼ` (signed; exact for linear raw models).
pub fn gradient_times_input<M: Differentiable>(model: &M, x: &[f64]) -> Vec<f64> {
    model
        .input_gradient(x)
        .into_iter()
        .zip(x)
        .map(|(g, &v)| g * v)
        .collect()
}

/// Integrated gradients along the straight path from `baseline` to `x`
/// with a midpoint Riemann sum of `steps` segments.
pub fn integrated_gradients<M: Differentiable>(
    model: &M,
    x: &[f64],
    baseline: &[f64],
    steps: usize,
) -> FeatureAttribution {
    assert_eq!(x.len(), baseline.len());
    assert!(steps >= 1);
    let d = x.len();
    let mut acc = vec![0.0; d];
    let mut point = vec![0.0; d];
    for s in 0..steps {
        let alpha = (s as f64 + 0.5) / steps as f64;
        for j in 0..d {
            point[j] = baseline[j] + alpha * (x[j] - baseline[j]);
        }
        let g = model.input_gradient(&point);
        for j in 0..d {
            acc[j] += g[j] * (x[j] - baseline[j]) / steps as f64;
        }
    }
    FeatureAttribution::new(
        (0..d).map(|j| format!("x{j}")).collect(),
        acc,
        model.output(baseline),
        model.output(x),
    )
}

/// SmoothGrad: the mean gradient over `samples` Gaussian-jittered copies
/// of `x` — the standard response to the fragility critique \[22\].
pub fn smooth_grad<M: Differentiable>(
    model: &M,
    x: &[f64],
    noise_std: f64,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(samples >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let d = x.len();
    let mut acc = vec![0.0; d];
    let mut probe = vec![0.0; d];
    for _ in 0..samples {
        for j in 0..d {
            probe[j] = x[j] + normal(&mut rng, 0.0, noise_std);
        }
        let g = model.input_gradient(&probe);
        for j in 0..d {
            acc[j] += g[j] / samples as f64;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::{circles, linear_gaussian};
    use xai_models::{LogisticConfig, MlpConfig};

    fn mlp_on_rings() -> (Mlp, xai_data::Dataset) {
        let data = circles(600, 3, 0.1);
        let mlp = Mlp::fit(
            data.x(),
            data.y(),
            MlpConfig { hidden: 24, epochs: 120, learning_rate: 0.1, ..MlpConfig::default() },
        );
        (mlp, data)
    }

    #[test]
    fn integrated_gradients_completeness() {
        let (mlp, data) = mlp_on_rings();
        for i in 0..5 {
            let x = data.row(i);
            let baseline = vec![0.0; 2];
            let ig = integrated_gradients(&mlp, x, &baseline, 256);
            // Completeness: Σ IG = f(x) − f(baseline).
            assert!(
                ig.efficiency_gap() < 5e-3,
                "completeness gap {} at instance {i}",
                ig.efficiency_gap()
            );
        }
    }

    #[test]
    fn more_steps_tighten_completeness() {
        let (mlp, data) = mlp_on_rings();
        let x = data.row(0);
        let baseline = vec![0.0; 2];
        let coarse = integrated_gradients(&mlp, x, &baseline, 4).efficiency_gap();
        let fine = integrated_gradients(&mlp, x, &baseline, 512).efficiency_gap();
        assert!(fine <= coarse + 1e-9, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn logistic_gradient_matches_finite_differences() {
        let data = linear_gaussian(400, &[2.0, -1.0], 0.3, 7);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let x = data.row(0);
        let g = model.input_gradient(x);
        for j in 0..2 {
            let mut xp = x.to_vec();
            xp[j] += 1e-6;
            let fd = (model.output(&xp) - model.output(x)) / 1e-6;
            assert!((g[j] - fd).abs() < 1e-4, "grad[{j}] {} vs fd {fd}", g[j]);
        }
    }

    #[test]
    fn saliency_ranks_relevant_features() {
        let data = linear_gaussian(2000, &[3.0, 0.0], 0.0, 9);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        for i in 0..100 {
            let s = saliency(&model, data.row(i));
            s0 += s[0];
            s1 += s[1];
        }
        assert!(s0 > 5.0 * s1, "relevant {s0} vs irrelevant {s1}");
    }

    #[test]
    fn smoothgrad_limits() {
        let (mlp, data) = mlp_on_rings();
        let x = data.row(0).to_vec();
        // Vanishing noise recovers the raw gradient.
        let tiny = smooth_grad(&mlp, &x, 1e-6, 50, 1);
        let raw = mlp.input_gradient(&x);
        for (a, b) in tiny.iter().zip(&raw) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Deterministic under seed, stochastic across seeds.
        assert_eq!(smooth_grad(&mlp, &x, 0.3, 50, 7), smooth_grad(&mlp, &x, 0.3, 50, 7));
        assert_ne!(smooth_grad(&mlp, &x, 0.3, 50, 7), smooth_grad(&mlp, &x, 0.3, 50, 8));
    }

    #[test]
    fn smoothgrad_estimates_stabilize_with_more_samples() {
        // The variance-reduction claim, measured across seeds: the spread
        // of SmoothGrad estimates shrinks as the sample count grows.
        let (mlp, data) = mlp_on_rings();
        let x = data.row(0).to_vec();
        let spread = |samples: usize| -> f64 {
            let estimates: Vec<Vec<f64>> =
                (0..6).map(|s| smooth_grad(&mlp, &x, 0.3, samples, s)).collect();
            let mut total = 0.0;
            for j in 0..x.len() {
                let vals: Vec<f64> = estimates.iter().map(|e| e[j]).collect();
                total += xai_linalg::stats::std_dev(&vals);
            }
            total
        };
        let small = spread(5);
        let large = spread(200);
        assert!(large < small, "spread must shrink: {small} -> {large}");
    }

    #[test]
    fn gradient_times_input_zero_at_zero_input() {
        let (mlp, _) = mlp_on_rings();
        let gxi = gradient_times_input(&mlp, &[0.0, 0.0]);
        assert!(gxi.iter().all(|v| v.abs() < 1e-12));
    }
}
