//! LIME for tabular data (Ribeiro, Singh & Guestrin, §2.1.1 \[53\]).
//!
//! The local surrogate recipe: (1) sample perturbations around the
//! instance, (2) weight them by an exponential locality kernel, (3) fit a
//! weighted ridge regression to the black-box outputs, (4) read the
//! coefficients as the explanation. The assumptions the tutorial flags —
//! that the weighted linear model captures the local surface and that the
//! neighbourhood sampling is reliable — are exactly the knobs exposed
//! here ([`LimeConfig::kernel_width`], [`LimeConfig::n_samples`]) and
//! measured by `stability` and experiments E5/E7.

use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;
use xai_core::{catch_model, validate, FeatureAttribution, SampleBudget, XaiError, XaiResult};
use xai_data::{Dataset, FeatureKind};
use xai_linalg::distr::normal;
use xai_linalg::solve::weighted_r_squared;
use xai_linalg::{weighted_least_squares, Matrix};

/// Configuration for [`LimeExplainer::explain`].
#[derive(Clone, Copy, Debug)]
pub struct LimeConfig {
    /// Number of perturbed samples.
    pub n_samples: usize,
    /// Exponential kernel width in standardized-distance units;
    /// `None` uses the LIME default `0.75 · √d`.
    pub kernel_width: Option<f64>,
    /// Ridge penalty of the surrogate fit.
    pub ridge: f64,
    /// Keep only this many features in the final surrogate (the rest get
    /// zero attribution); `None` keeps all.
    pub max_features: Option<usize>,
}

impl Default for LimeConfig {
    fn default() -> Self {
        Self { n_samples: 1000, kernel_width: None, ridge: 1e-3, max_features: None }
    }
}

/// Probes per executor chunk on the parallel/sharded LIME path: chunk `c`
/// draws its probes from the `child_seed(seed, c)` stream, so any worker
/// count — and any shard partition over the same chunk grid — sees the
/// same neighbourhood.
pub(crate) const PROBES_PER_CHUNK: usize = 32;

/// One drawn-and-evaluated neighbourhood probe: interpretable
/// representation, locality weight, model output.
pub(crate) type LimeProbe = (Vec<f64>, f64, f64);

/// The kernel width a config resolves to at dimensionality `d` — shared
/// by the sequential neighbourhood and the chunked probe stream (it must
/// not depend on the sample count, or budgeted prefixes would diverge).
pub(crate) fn width_for(config: LimeConfig, d: usize) -> f64 {
    config.kernel_width.unwrap_or(0.75 * (d as f64).sqrt()).max(1e-9)
}

/// A fitted LIME explainer: captures the training statistics used to
/// generate and standardize perturbations.
#[derive(Clone, Debug)]
pub struct LimeExplainer {
    feature_names: Vec<String>,
    /// Per-feature (mean, std) for numeric features.
    numeric_stats: Vec<Option<(f64, f64)>>,
    /// Per-feature category frequencies for categorical features.
    category_freqs: Vec<Option<Vec<f64>>>,
}

/// A LIME explanation: attribution plus the surrogate's quality.
#[derive(Clone, Debug)]
pub struct LimeExplanation {
    /// Per-feature coefficients in *standardized* units (comparable across
    /// features), signed toward the model output.
    pub attribution: FeatureAttribution,
    /// Weighted R² of the surrogate on its own neighbourhood — LIME's
    /// local-fidelity score.
    pub local_fidelity: f64,
    /// The kernel width actually used.
    pub kernel_width: f64,
    /// True when the surrogate regression was singular at the configured
    /// ridge and the coefficients come from an escalated-ridge fallback
    /// solve; treat the attribution as best-effort.
    pub degraded: bool,
}

impl LimeExplainer {
    /// Captures training-data statistics for the perturbation sampler.
    pub fn fit(data: &Dataset) -> Self {
        let d = data.n_features();
        let mut numeric_stats = Vec::with_capacity(d);
        let mut category_freqs = Vec::with_capacity(d);
        for j in 0..d {
            let col = data.x().col(j);
            match &data.schema().feature(j).kind {
                FeatureKind::Numeric { .. } => {
                    let mean = xai_linalg::stats::mean(&col);
                    let std = xai_linalg::stats::std_dev(&col).max(1e-9);
                    numeric_stats.push(Some((mean, std)));
                    category_freqs.push(None);
                }
                FeatureKind::Categorical { categories } => {
                    let mut freqs = vec![0.0; categories.len()];
                    for &v in &col {
                        freqs[v.round() as usize] += 1.0;
                    }
                    numeric_stats.push(None);
                    category_freqs.push(Some(freqs));
                }
            }
        }
        Self {
            feature_names: data.schema().names().iter().map(|s| s.to_string()).collect(),
            numeric_stats,
            category_freqs,
        }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Draws one perturbed raw row around `instance` and its interpretable
    /// (standardized / indicator) representation.
    fn perturb(&self, instance: &[f64], rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
        let d = instance.len();
        let mut raw = vec![0.0; d];
        let mut interp = vec![0.0; d];
        for j in 0..d {
            if let Some((_, std)) = self.numeric_stats[j] {
                let v = instance[j] + normal(rng, 0.0, std);
                raw[j] = v;
                interp[j] = (v - instance[j]) / std;
            } else {
                let freqs = self.category_freqs[j].as_ref().expect("categorical stats");
                let cat = xai_linalg::distr::categorical(rng, freqs) as f64;
                raw[j] = cat;
                // Indicator: 1 when the perturbed category matches the instance.
                interp[j] = f64::from((cat - instance[j]).abs() < 1e-9);
            }
        }
        (raw, interp)
    }

    /// Interpretable representation of the instance itself: zeros for
    /// numeric deltas, ones for "same category".
    fn instance_interp(&self, instance: &[f64]) -> Vec<f64> {
        (0..instance.len())
            .map(|j| if self.numeric_stats[j].is_some() { 0.0 } else { 1.0 })
            .collect()
    }

    /// Draws the whole neighbourhood up front: the raw probe rows as one
    /// matrix (ready for a single batched model call), the interpretable
    /// design matrix (intercept in column 0), and the locality weights.
    /// Perturbation draws consume the RNG in the same per-feature order as
    /// the historical interleaved loop, and model evaluation consumes no
    /// randomness, so both the scalar and the batched paths see identical
    /// neighbourhoods at the same seed.
    fn neighbourhood(
        &self,
        instance: &[f64],
        config: LimeConfig,
        seed: u64,
    ) -> (Matrix, Matrix, Vec<f64>, f64) {
        assert_eq!(instance.len(), self.n_features(), "instance arity mismatch");
        assert!(config.n_samples >= 8, "need a non-trivial neighbourhood");
        let d = instance.len();
        let width = width_for(config, d);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut raws = Matrix::zeros(config.n_samples, d);
        let mut design = Matrix::zeros(config.n_samples, d + 1);
        let mut weights = Vec::with_capacity(config.n_samples);
        let origin = self.instance_interp(instance);
        for i in 0..config.n_samples {
            let (raw, interp) = self.perturb(instance, &mut rng);
            let dist2: f64 = interp
                .iter()
                .zip(&origin)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            weights.push((-dist2 / (width * width)).exp());
            raws.row_mut(i).copy_from_slice(&raw);
            let row = design.row_mut(i);
            row[0] = 1.0;
            row[1..].copy_from_slice(&interp);
        }
        (raws, design, weights, width)
    }

    /// Draws and evaluates one chunk of neighbourhood probes from `rng`'s
    /// stream. This is the unit the parallel and sharded LIME paths tile:
    /// chunk `c` of the grid runs this body with an RNG seeded
    /// `child_seed(seed, c)`, so in-process fork-join execution and
    /// cross-process shards reproduce each other bit for bit.
    pub(crate) fn probe_chunk(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        width: f64,
        count: usize,
        rng: &mut StdRng,
    ) -> XaiResult<Vec<LimeProbe>> {
        let origin = self.instance_interp(instance);
        let mut drawn = Vec::with_capacity(count);
        for _ in 0..count {
            let (raw, interp) = self.perturb(instance, rng);
            let dist2: f64 =
                interp.iter().zip(&origin).map(|(a, b)| (a - b) * (a - b)).sum();
            let weight = (-dist2 / (width * width)).exp();
            drawn.push((raw, interp, weight));
        }
        let targets = catch_model("LIME neighbourhood evaluation", || {
            drawn.iter().map(|(raw, _, _)| model(raw)).collect::<Vec<f64>>()
        })?;
        Ok(drawn
            .into_iter()
            .zip(targets)
            .map(|((_, interp, weight), target)| (interp, weight, target))
            .collect())
    }

    /// The merge epilogue of the chunked paths: assembles the design
    /// matrix / weights / targets from concatenated probes (in chunk
    /// order) and runs the same surrogate fit as the sequential path,
    /// sized to the probes that actually arrived.
    pub(crate) fn fit_probes(
        &self,
        probes: Vec<LimeProbe>,
        width: f64,
        prediction: f64,
        config: LimeConfig,
    ) -> XaiResult<LimeExplanation> {
        let n = probes.len();
        let d = self.n_features();
        let mut design = Matrix::zeros(n, d + 1);
        let mut weights = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for (i, (interp, weight, target)) in probes.into_iter().enumerate() {
            let row = design.row_mut(i);
            row[0] = 1.0;
            row[1..].copy_from_slice(&interp);
            weights.push(weight);
            targets.push(target);
        }
        check_targets(&targets, prediction)?;
        // `try_fit_surrogate` sizes its loops from `n_samples`; feed it
        // the merged row count, not the configured one.
        let fit_config = LimeConfig { n_samples: n, ..config };
        self.try_fit_surrogate(design, targets, weights, width, prediction, fit_config)
    }

    /// Explains one prediction of a black-box model, one probe row per
    /// model call.
    ///
    /// # Panics
    /// Panics when the model misbehaves (panics, returns non-finite
    /// outputs) or the surrogate regression is unrecoverably singular;
    /// use [`LimeExplainer::try_explain`] for typed errors.
    pub fn explain(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        config: LimeConfig,
        seed: u64,
    ) -> LimeExplanation {
        self.try_explain(model, instance, config, seed)
            .expect("LIME failed; try_explain recovers this")
    }

    /// Fallible twin of [`LimeExplainer::explain`]: a non-finite instance
    /// yields [`XaiError::NonFiniteInput`], a panicking or NaN-producing
    /// model yields [`XaiError::ModelFault`], and a surrogate regression
    /// that needed ridge escalation comes back `Ok` with
    /// `degraded = true`.
    pub fn try_explain(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        config: LimeConfig,
        seed: u64,
    ) -> XaiResult<LimeExplanation> {
        validate::finite_slice("LIME instance", instance)?;
        let (raws, design, weights, width) = self.neighbourhood(instance, config, seed);
        let (targets, prediction) = catch_model("LIME neighbourhood evaluation", || {
            let t: Vec<f64> = raws.iter_rows().map(|r| model(r)).collect();
            let p = model(instance);
            (t, p)
        })?;
        check_targets(&targets, prediction)?;
        self.try_fit_surrogate(design, targets, weights, width, prediction, config)
    }

    /// Budgeted twin of [`LimeExplainer::try_explain`]: neighbourhood
    /// probe evaluations are metered against `budget` and the surrogate
    /// is fitted on whatever prefix of the neighbourhood completed.
    ///
    /// Semantics:
    /// - the whole neighbourhood is still *drawn* up front (draws are
    ///   model-free); only model evaluations are metered, and the
    ///   instance's own prediction is mandatory bookkeeping outside the
    ///   meter — so an eval cap of `k ≥ 8` produces a result
    ///   **bit-identical** to [`LimeExplainer::try_explain`] with
    ///   `n_samples = k` at the same seed (the probe stream is drawn
    ///   per-probe from one seeded RNG, and the kernel width does not
    ///   depend on the sample count);
    /// - fewer than 8 completed probes is not a neighbourhood; the call
    ///   fails with [`XaiError::BudgetExceeded`] carrying the completed
    ///   count.
    pub fn try_explain_budgeted(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        config: LimeConfig,
        seed: u64,
        budget: SampleBudget,
    ) -> XaiResult<LimeExplanation> {
        validate::finite_slice("LIME instance", instance)?;
        let (raws, design, weights, width) = self.neighbourhood(instance, config, seed);
        let mut meter = budget.start();
        let (targets, prediction) = catch_model("LIME neighbourhood evaluation", move || {
            let mut t: Vec<f64> = Vec::with_capacity(config.n_samples);
            for r in raws.iter_rows() {
                if meter.exhausted() {
                    break;
                }
                t.push(model(r));
                meter.record(1);
            }
            (t, model(instance))
        })?;
        let done = targets.len();
        const MIN_PROBES: usize = 8; // the floor `neighbourhood` asserts on
        if done < MIN_PROBES {
            return Err(XaiError::BudgetExceeded {
                context: format!(
                    "LIME: budget admitted {done} of the minimum {MIN_PROBES} neighbourhood probes"
                ),
                completed: done,
            });
        }
        check_targets(&targets, prediction)?;
        if done == config.n_samples {
            return self.try_fit_surrogate(design, targets, weights, width, prediction, config);
        }
        // Truncate the drawn neighbourhood to the completed prefix; the
        // submatrix equals a fresh `n_samples = done` draw bit for bit.
        let rows: Vec<usize> = (0..done).collect();
        let cols: Vec<usize> = (0..design.cols()).collect();
        let design = design.select(&rows, &cols);
        let mut weights = weights;
        weights.truncate(done);
        let fit_config = LimeConfig { n_samples: done, ..config };
        self.try_fit_surrogate(design, targets, weights, width, prediction, fit_config)
    }

    /// Explains one prediction through a *batched* model surface: the whole
    /// neighbourhood is materialized as one probe matrix and evaluated in a
    /// single call (`xai_models::batch_proba_fn` / `batch_regress_fn`
    /// produce suitable closures). Bit-identical to [`LimeExplainer::explain`]
    /// at the same seed when the batched model matches the scalar one
    /// row-for-row — which the `xai-models` vectorized kernels guarantee.
    #[deprecated(note = "superseded by the unified explainer layer: use LimeMethod with a RunConfig (DESIGN.md §9)")]
    #[allow(deprecated)] // the twins forward to each other until removal
    pub fn explain_batched(
        &self,
        model: &dyn Fn(&Matrix) -> Vec<f64>,
        instance: &[f64],
        config: LimeConfig,
        seed: u64,
    ) -> LimeExplanation {
        self.try_explain_batched(model, instance, config, seed)
            .expect("LIME failed; try_explain_batched recovers this")
    }

    /// Fallible twin of [`LimeExplainer::explain_batched`]; failure
    /// semantics as in [`LimeExplainer::try_explain`].
    #[deprecated(note = "superseded by the unified explainer layer: use LimeMethod with a RunConfig (DESIGN.md §9)")]
    #[allow(deprecated)] // the twins forward to each other until removal
    pub fn try_explain_batched(
        &self,
        model: &dyn Fn(&Matrix) -> Vec<f64>,
        instance: &[f64],
        config: LimeConfig,
        seed: u64,
    ) -> XaiResult<LimeExplanation> {
        validate::finite_slice("LIME instance", instance)?;
        let (raws, design, weights, width) = self.neighbourhood(instance, config, seed);
        let (targets, prediction) = catch_model("LIME batched neighbourhood evaluation", || {
            let t = model(&raws);
            let p = model(&Matrix::from_rows(&[instance.to_vec()]))[0];
            (t, p)
        })?;
        if targets.len() != config.n_samples {
            return Err(XaiError::ModelFault {
                context: format!(
                    "LIME batched model returned {} outputs for {} probes",
                    targets.len(),
                    config.n_samples
                ),
            });
        }
        check_targets(&targets, prediction)?;
        self.try_fit_surrogate(design, targets, weights, width, prediction, config)
    }

    /// The surrogate fit shared by the scalar and batched paths: weighted
    /// ridge regression (with ridge escalation on singular systems),
    /// optional top-k refit, fidelity scoring.
    pub(crate) fn try_fit_surrogate(
        &self,
        design: Matrix,
        targets: Vec<f64>,
        weights: Vec<f64>,
        width: f64,
        prediction: f64,
        config: LimeConfig,
    ) -> XaiResult<LimeExplanation> {
        let d = self.n_features();
        let (full, mut degraded) =
            solve_surrogate(&design, &targets, &weights, config.ridge, "LIME surrogate fit")?;
        let (coef, intercept) = (full[1..].to_vec(), full[0]);

        // Optional feature selection: keep top-k by |coefficient|, refit.
        let (coef, intercept) = if let Some(k) = config.max_features.filter(|&k| k < d) {
            let mut idx: Vec<usize> = (0..d).collect();
            idx.sort_by(|&a, &b| coef[b].abs().total_cmp(&coef[a].abs()));
            idx.truncate(k.max(1));
            let cols: Vec<usize> = std::iter::once(0).chain(idx.iter().map(|&j| j + 1)).collect();
            let sub = design.select(&(0..config.n_samples).collect::<Vec<_>>(), &cols);
            let (w, refit_degraded) =
                solve_surrogate(&sub, &targets, &weights, config.ridge, "LIME top-k refit")?;
            degraded |= refit_degraded;
            let mut selected = vec![0.0; d];
            for (pos, &j) in idx.iter().enumerate() {
                selected[j] = w[pos + 1];
            }
            (selected, w[0])
        } else {
            (coef, intercept)
        };

        // Local fidelity: weighted R² of surrogate vs model on the samples.
        let surrogate_preds: Vec<f64> = (0..config.n_samples)
            .map(|i| {
                intercept
                    + design.row(i)[1..]
                        .iter()
                        .zip(&coef)
                        .map(|(z, c)| z * c)
                        .sum::<f64>()
            })
            .collect();
        let local_fidelity = weighted_r_squared(&targets, &surrogate_preds, &weights);

        // LIME does not satisfy the efficiency axiom, so `baseline` is the
        // surrogate intercept and `efficiency_gap()` is expected to be
        // non-zero — one of the §2.1.2 contrasts with SHAP.
        let attribution = FeatureAttribution::new(
            self.feature_names.clone(),
            coef,
            intercept,
            prediction,
        );
        Ok(LimeExplanation { attribution, local_fidelity, kernel_width: width, degraded })
    }
}

/// Rejects non-finite model outputs on the neighbourhood — the model (not
/// the caller's data) produced them, so they map to
/// [`XaiError::ModelFault`].
pub(crate) fn check_targets(targets: &[f64], prediction: f64) -> XaiResult<()> {
    if let Some(i) = targets.iter().position(|t| !t.is_finite()) {
        return Err(XaiError::ModelFault {
            context: format!("LIME probe {i} returned {}", targets[i]),
        });
    }
    if !prediction.is_finite() {
        return Err(XaiError::ModelFault {
            context: format!("LIME instance prediction is {prediction}"),
        });
    }
    Ok(())
}

/// Ridge escalation ladder for degraded surrogate solves (mirrors kernel
/// SHAP's): rungs at or below the configured ridge are skipped.
const RIDGE_LADDER: [f64; 3] = [1e-6, 1e-4, 1e-2];

/// Weighted least squares with ridge escalation: `Ok((solution, false))`
/// at the configured ridge, `Ok((solution, true))` when a ladder rung was
/// needed, [`XaiError::SingularSystem`] when even the top rung fails.
fn solve_surrogate(
    design: &Matrix,
    targets: &[f64],
    weights: &[f64],
    ridge: f64,
    what: &str,
) -> XaiResult<(Vec<f64>, bool)> {
    match weighted_least_squares(design, targets, weights, ridge) {
        Ok(sol) => Ok((sol, false)),
        Err(first) => {
            for rung in RIDGE_LADDER {
                if rung <= ridge {
                    continue;
                }
                if let Ok(sol) = weighted_least_squares(design, targets, weights, rung) {
                    return Ok((sol, true));
                }
            }
            Err(XaiError::SingularSystem {
                context: format!(
                    "{what} unsolvable even at ridge {:?}: {first}",
                    RIDGE_LADDER.last()
                ),
            })
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the twins stay under test until removal
mod tests {
    use super::*;
    use xai_data::synth::{circles, german_credit, linear_gaussian};
    use xai_models::{proba_fn, Classifier, LogisticConfig, LogisticRegression};

    fn credit_model_and_data() -> (LogisticRegression, Dataset) {
        let data = german_credit(800, 3);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        (model, data)
    }

    #[test]
    fn budgeted_prefix_is_bit_identical_to_a_smaller_neighbourhood() {
        let (model, data) = credit_model_and_data();
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let row = data.row(2);
        // Cap 40 on a 200-probe config == plain run with n_samples = 40.
        let wide = LimeConfig { n_samples: 200, ..LimeConfig::default() };
        let budgeted = lime
            .try_explain_budgeted(&f, row, wide, 13, SampleBudget::with_max_evals(40))
            .unwrap();
        let narrow = LimeConfig { n_samples: 40, ..LimeConfig::default() };
        let short = lime.try_explain(&f, row, narrow, 13).unwrap();
        assert_eq!(budgeted.attribution.values, short.attribution.values);
        assert_eq!(budgeted.attribution.baseline, short.attribution.baseline);
        assert_eq!(budgeted.local_fidelity, short.local_fidelity);
        // An unlimited budget reproduces the plain run exactly.
        let unlimited =
            lime.try_explain_budgeted(&f, row, wide, 13, SampleBudget::unlimited()).unwrap();
        let plain = lime.try_explain(&f, row, wide, 13).unwrap();
        assert_eq!(unlimited.attribution.values, plain.attribution.values);
    }

    #[test]
    fn starved_lime_budget_reports_completed_probes() {
        let (model, data) = credit_model_and_data();
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let err = lime
            .try_explain_budgeted(
                &f,
                data.row(0),
                LimeConfig::default(),
                7,
                SampleBudget::with_max_evals(5),
            )
            .unwrap_err();
        assert!(
            matches!(err, XaiError::BudgetExceeded { completed: 5, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn recovers_linear_model_signs() {
        let data = linear_gaussian(1000, &[2.0, -1.5, 0.0], 0.0, 5);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let exp = lime.explain(&f, data.row(0), LimeConfig::default(), 42);
        let values = &exp.attribution.values;
        assert!(values[0] > 0.0, "positive-weight feature must attribute positive");
        assert!(values[1] < 0.0);
        assert!(
            values[2].abs() < values[0].abs() / 3.0,
            "irrelevant feature must be small: {values:?}"
        );
    }

    #[test]
    fn local_fidelity_is_high_for_smooth_models() {
        let (model, data) = credit_model_and_data();
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let exp = lime.explain(&f, data.row(1), LimeConfig::default(), 7);
        assert!(exp.local_fidelity > 0.7, "fidelity {}", exp.local_fidelity);
    }

    #[test]
    fn nonlinear_model_fidelity_improves_with_smaller_width() {
        // On the rings dataset the surface is locally linear but globally
        // not: a narrower kernel should fit the local surface better.
        let data = circles(800, 9, 0.15);
        let forest = xai_models::RandomForest::fit(
            data.x(),
            data.y(),
            xai_models::ForestConfig { n_trees: 30, seed: 1, ..Default::default() },
        );
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&forest);
        let instance = data.row(0);
        let narrow = lime.explain(
            &f,
            instance,
            LimeConfig { kernel_width: Some(0.3), ..LimeConfig::default() },
            3,
        );
        let wide = lime.explain(
            &f,
            instance,
            LimeConfig { kernel_width: Some(10.0), ..LimeConfig::default() },
            3,
        );
        assert!(
            narrow.local_fidelity >= wide.local_fidelity - 0.02,
            "narrow {} vs wide {}",
            narrow.local_fidelity,
            wide.local_fidelity
        );
    }

    #[test]
    fn max_features_zeroes_the_rest() {
        let (model, data) = credit_model_and_data();
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let exp = lime.explain(
            &f,
            data.row(2),
            LimeConfig { max_features: Some(3), ..LimeConfig::default() },
            11,
        );
        let nonzero = exp.attribution.values.iter().filter(|v| v.abs() > 1e-12).count();
        assert!(nonzero <= 3, "{nonzero} nonzero coefficients");
    }

    #[test]
    fn deterministic_under_seed_stochastic_across_seeds() {
        let (model, data) = credit_model_and_data();
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let a = lime.explain(&f, data.row(0), LimeConfig::default(), 1);
        let b = lime.explain(&f, data.row(0), LimeConfig::default(), 1);
        assert_eq!(a.attribution.values, b.attribution.values);
        let c = lime.explain(&f, data.row(0), LimeConfig::default(), 2);
        assert_ne!(a.attribution.values, c.attribution.values);
    }

    #[test]
    fn batched_explain_matches_scalar_bitwise() {
        use xai_models::batch_proba_fn;
        let (model, data) = credit_model_and_data();
        let lime = LimeExplainer::fit(&data);
        let f = proba_fn(&model);
        let bf = batch_proba_fn(&model);
        for (seed, max_features) in [(1, None), (8, Some(3))] {
            let cfg = LimeConfig { n_samples: 300, max_features, ..LimeConfig::default() };
            let scalar = lime.explain(&f, data.row(0), cfg, seed);
            let batched = lime.explain_batched(&bf, data.row(0), cfg, seed);
            assert_eq!(scalar.attribution.values, batched.attribution.values);
            assert_eq!(scalar.attribution.baseline, batched.attribution.baseline);
            assert_eq!(scalar.attribution.prediction, batched.attribution.prediction);
            assert_eq!(scalar.local_fidelity, batched.local_fidelity);
        }
    }

    #[test]
    fn categorical_features_are_perturbed_to_valid_codes() {
        let (model, data) = credit_model_and_data();
        let lime = LimeExplainer::fit(&data);
        // Wrap the model to verify every probe row is schema-valid.
        let schema = data.schema().clone();
        let checker = move |x: &[f64]| {
            for (j, f) in schema.features().iter().enumerate() {
                if f.is_categorical() {
                    assert!(f.is_valid(x[j]), "invalid category {} for {}", x[j], f.name);
                }
            }
            Classifier::proba_one(&model, x)
        };
        let _ = lime.explain(&checker, data.row(5), LimeConfig { n_samples: 200, ..Default::default() }, 3);
    }
}
