//! Global surrogate models (§2.1.1): approximate the whole black box with
//! an inherently interpretable model and report how faithful the
//! approximation is.

use xai_data::Dataset;
use xai_linalg::r_squared;
use xai_models::{
    DecisionTree, LinearConfig, LinearRegression, Regressor, SplitCriterion, TreeConfig,
};

/// A fitted global surrogate with its measured fidelity.
#[derive(Clone, Debug)]
pub struct GlobalSurrogate<M> {
    /// The interpretable stand-in model.
    pub surrogate: M,
    /// R² of the surrogate against the black box on the training probes.
    pub train_fidelity: f64,
}

/// Distills the black box into a depth-limited decision tree by fitting the
/// tree to the model's outputs (not the labels!) on the provided dataset.
pub fn tree_surrogate(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    max_depth: usize,
) -> GlobalSurrogate<DecisionTree> {
    let outputs: Vec<f64> = (0..data.n_rows()).map(|i| model(data.row(i))).collect();
    let tree = DecisionTree::fit(
        data.x(),
        &outputs,
        TreeConfig {
            max_depth,
            criterion: SplitCriterion::Variance,
            min_samples_leaf: 5,
            ..TreeConfig::default()
        },
    );
    let preds = Regressor::predict(&tree, data.x());
    GlobalSurrogate { surrogate: tree, train_fidelity: r_squared(&outputs, &preds) }
}

/// Distills the black box into a single linear model (the crudest global
/// surrogate — its fidelity on a non-linear model quantifies how wrong the
/// "one linear explanation for everything" assumption is).
pub fn linear_surrogate(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
) -> GlobalSurrogate<LinearRegression> {
    let outputs: Vec<f64> = (0..data.n_rows()).map(|i| model(data.row(i))).collect();
    let lin = LinearRegression::fit(data.x(), &outputs, LinearConfig::default())
        .expect("ridge regression is well-posed");
    let preds = Regressor::predict(&lin, data.x());
    GlobalSurrogate { surrogate: lin, train_fidelity: r_squared(&outputs, &preds) }
}

/// Fidelity of any surrogate on held-out probe rows.
pub fn holdout_fidelity<M: Regressor>(
    model: &dyn Fn(&[f64]) -> f64,
    surrogate: &M,
    probes: &Dataset,
) -> f64 {
    let truth: Vec<f64> = (0..probes.n_rows()).map(|i| model(probes.row(i))).collect();
    let preds = surrogate.predict(probes.x());
    r_squared(&truth, &preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::circles;
    use xai_models::{proba_fn, ForestConfig, RandomForest};

    #[test]
    fn tree_surrogate_beats_linear_on_nonlinear_model() {
        let data = circles(700, 3, 0.15);
        let forest = RandomForest::fit(
            data.x(),
            data.y(),
            ForestConfig { n_trees: 30, seed: 5, ..Default::default() },
        );
        let f = proba_fn(&forest);
        let tree = tree_surrogate(&f, &data, 6);
        let linear = linear_surrogate(&f, &data);
        assert!(
            tree.train_fidelity > 0.7,
            "tree surrogate fidelity {}",
            tree.train_fidelity
        );
        assert!(
            linear.train_fidelity < 0.3,
            "a linear surrogate cannot mimic rings: {}",
            linear.train_fidelity
        );
        assert!(tree.train_fidelity > linear.train_fidelity + 0.3);
    }

    #[test]
    fn holdout_fidelity_close_to_train() {
        let data = circles(900, 7, 0.15);
        let (train, test) = data.train_test_split(0.3, 1);
        let forest = RandomForest::fit(
            train.x(),
            train.y(),
            ForestConfig { n_trees: 30, seed: 2, ..Default::default() },
        );
        let f = proba_fn(&forest);
        let sur = tree_surrogate(&f, &train, 7);
        let ho = holdout_fidelity(&f, &sur.surrogate, &test);
        assert!(ho > 0.5, "holdout fidelity {ho}");
        assert!(sur.train_fidelity >= ho - 0.05);
    }

    #[test]
    fn deeper_surrogates_are_more_faithful() {
        let data = circles(600, 9, 0.2);
        let forest = RandomForest::fit(
            data.x(),
            data.y(),
            ForestConfig { n_trees: 25, seed: 3, ..Default::default() },
        );
        let f = proba_fn(&forest);
        let shallow = tree_surrogate(&f, &data, 2);
        let deep = tree_surrogate(&f, &data, 8);
        assert!(deep.train_fidelity > shallow.train_fidelity);
    }
}
