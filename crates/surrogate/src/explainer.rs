//! Unified-layer `Explainer` impls for the surrogate family (DESIGN.md
//! §9): LIME, SP-LIME, PDP/ICE and integrated-gradients saliency.
//!
//! Dispatch contract: `RunConfig::batched` selects the batched legacy
//! twin where one exists (LIME, PDP). `workers > 1` fans LIME's
//! perturbation chunks and SP-LIME's candidate explanations across the
//! seeded executor: LIME's parallel neighbourhood draws chunk `c` from
//! the `child_seed(seed, c)` stream (worker-count invariant, and the
//! grid the shard layer partitions), while SP-LIME's per-candidate
//! streams make its parallel result bit-identical to the sequential one.
//! PDP and integrated gradients are deterministic single passes with no
//! random draws for the executor to steer. A `SampleBudget` is honoured
//! by LIME on the scalar path (an eval cap of `k` equals an unbudgeted
//! run with `n_samples = k` bit for bit); SP-LIME, PDP/ICE and
//! integrated gradients reject budgets as [`XaiError::Unsupported`]
//! rather than silently ignoring the cap.
// This module is the blessed call site of the deprecated legacy twins:
// the unified dispatch below is what replaces them.
#![allow(deprecated)]

use xai_core::shard::{
    arr_field, chunks_json, flatten_chunks, index_field, num_field, nums_field, wire_error,
    DrawGrid, ShardableExplainer,
};
use xai_core::taxonomy::method_card;
use xai_core::{
    catch_model, validate, CurveExplanation, DegradationPolicy, ExplainRequest, Explainer,
    Explanation, FeatureAttribution, Json, MethodCard, ModelOracle, RunConfig, XaiError, XaiResult,
};
use xai_linalg::stats::mean;
use xai_linalg::Matrix;
use xai_rand::child_seed;
use xai_rand::parallel::{try_par_map_chunks, try_par_map_seeded};
use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;

use crate::lime::{self, LimeConfig, LimeExplainer, LimeProbe};
use crate::pdp::{feature_grid, try_partial_dependence, try_partial_dependence_batched};
use crate::saliency::{integrated_gradients, Differentiable};
use crate::sp_lime::{self, sp_lime};

fn reject_budget(method: &str, req: &ExplainRequest<'_>) -> XaiResult<()> {
    if req.plan.budgeted() {
        return Err(XaiError::Unsupported {
            context: format!("{method} has no budgeted execution path; clear RunConfig::budget"),
        });
    }
    Ok(())
}

/// Serializes a finite numeric payload; a non-finite value would write as
/// JSON `null`, so it is reported as the model fault it is instead of
/// being silently mangled on the wire.
fn shard_nums(what: &str, vals: &[f64]) -> XaiResult<Json> {
    if let Some(v) = vals.iter().find(|v| !v.is_finite()) {
        return Err(XaiError::ModelFault { context: format!("{what} contains non-finite value {v}") });
    }
    Ok(Json::nums(vals))
}

/// Applies `RunConfig::degradation` to a finished LIME fit — shared by
/// the direct dispatch and the shard merge so both refuse an escalated
/// ridge identically under the strict policy.
fn lime_strict(exp: lime::LimeExplanation, plan: &RunConfig) -> XaiResult<FeatureAttribution> {
    if exp.degraded && plan.degradation == DegradationPolicy::Strict {
        return Err(XaiError::SingularSystem {
            context: "LIME surrogate fit needed ridge escalation; \
                      strict degradation policy refuses the estimate"
                .into(),
        });
    }
    Ok(exp.attribution)
}

/// LIME's parallel neighbourhood: the probe grid tiled over the seeded
/// executor, chunk `c` drawing from the `child_seed(seed, c)` stream —
/// the same grid [`ShardableExplainer`] partitions, so any worker count
/// and any shard split reproduce each other bit for bit.
fn parallel_probes(
    explainer: &LimeExplainer,
    model: &dyn ModelOracle,
    instance: &[f64],
    config: LimeConfig,
    plan: &RunConfig,
) -> XaiResult<Vec<LimeProbe>> {
    assert!(config.n_samples >= 8, "need a non-trivial neighbourhood");
    let width = lime::width_for(config, instance.len());
    let f = |x: &[f64]| model.predict(x);
    let chunks = try_par_map_chunks(
        config.n_samples,
        lime::PROBES_PER_CHUNK,
        plan.seed,
        plan.workers,
        |_c, range: std::ops::Range<usize>, rng: &mut StdRng| {
            explainer.probe_chunk(&f, instance, width, range.len(), rng)
        },
    )?;
    let mut probes = Vec::with_capacity(config.n_samples);
    for chunk in chunks {
        probes.extend(chunk?);
    }
    Ok(probes)
}

/// LIME local surrogate regression (§2.1.1) through the unified layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct LimeMethod {
    /// Neighbourhood size, kernel width, ridge and sparsity settings;
    /// `RunConfig::seed` picks the perturbation stream.
    pub config: LimeConfig,
}

impl Explainer for LimeMethod {
    fn card(&self) -> MethodCard {
        method_card("LIME")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        let instance = req.need_instance("LIME")?;
        let explainer = LimeExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let fb = |m: &Matrix| model.predict_batch(m);
        let exp = if req.plan.budgeted() {
            if req.plan.batched {
                return Err(XaiError::Unsupported {
                    context: "budgeted LIME is scalar; set batched = false".into(),
                });
            }
            explainer.try_explain_budgeted(
                &f,
                instance,
                self.config,
                req.plan.seed,
                req.plan.budget,
            )?
        } else if req.plan.batched {
            explainer.try_explain_batched(&fb, instance, self.config, req.plan.seed)?
        } else if req.plan.parallel() {
            validate::finite_slice("LIME instance", instance)?;
            let probes = parallel_probes(&explainer, model, instance, self.config, &req.plan)?;
            let prediction =
                catch_model("LIME instance prediction", || model.predict(instance))?;
            let width = lime::width_for(self.config, instance.len());
            explainer.fit_probes(probes, width, prediction, self.config)?
        } else {
            explainer.try_explain(&f, instance, self.config, req.plan.seed)?
        };
        Ok(Explanation::Attribution(lime_strict(exp, &req.plan)?))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl LimeMethod {
    /// Rebuilds the method from its canonical shard-config JSON.
    pub fn from_config_json(config: &Json) -> XaiResult<Self> {
        const WHAT: &str = "LIME config";
        let n_samples = index_field(config, "n_samples", WHAT)?;
        if n_samples < 8 {
            return Err(wire_error(format!("{WHAT}: n_samples must be >= 8, got {n_samples}")));
        }
        let kernel_width = match config.get("kernel_width") {
            Some(Json::Null) | None => None,
            Some(_) => Some(num_field(config, "kernel_width", WHAT)?),
        };
        let ridge = num_field(config, "ridge", WHAT)?;
        let max_features = match config.get("max_features") {
            Some(Json::Null) | None => None,
            Some(_) => Some(index_field(config, "max_features", WHAT)?),
        };
        Ok(Self { config: LimeConfig { n_samples, kernel_width, ridge, max_features } })
    }
}

impl ShardableExplainer for LimeMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        req.need_instance("LIME")?;
        if req.plan.budget.max_duration.is_some() {
            return Err(XaiError::Unsupported {
                context: "wall-clock LIME budgets are not shardable; \
                          use SampleBudget::with_max_evals"
                    .into(),
            });
        }
        let total = match req.plan.budget.max_evals {
            Some(k) => {
                let n = self.config.n_samples.min(k);
                if n < 8 {
                    return Err(XaiError::BudgetExceeded {
                        context: format!(
                            "LIME: budget admits {n} of the minimum 8 neighbourhood probes"
                        ),
                        completed: n,
                    });
                }
                n
            }
            None => self.config.n_samples,
        };
        Ok(DrawGrid { total_draws: total, chunk_size: lime::PROBES_PER_CHUNK })
    }

    fn explain_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let instance = req.need_instance("LIME")?;
        validate::finite_slice("LIME instance", instance)?;
        let grid = self.draw_grid(req)?;
        let explainer = LimeExplainer::fit(req.data);
        let width = lime::width_for(self.config, instance.len());
        let f = |x: &[f64]| model.predict(x);
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let mut rng = StdRng::seed_from_u64(child_seed(req.plan.seed, c as u64));
            let probes =
                explainer.probe_chunk(&f, instance, width, grid.chunk_range(c).len(), &mut rng)?;
            let rows = probes
                .into_iter()
                .map(|(mut row, weight, target)| {
                    row.push(weight);
                    row.push(target);
                    shard_nums("LIME probe row", &row)
                })
                .collect::<XaiResult<Vec<Json>>>()?;
            out.push(Json::obj(vec![("rows", Json::Arr(rows))]));
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "LIME merge";
        let instance = req.need_instance("LIME")?;
        validate::finite_slice("LIME instance", instance)?;
        let grid = self.draw_grid(req)?;
        let flat = flatten_chunks(&partials, WHAT)?;
        if flat.len() != grid.n_chunks() {
            return Err(wire_error(format!(
                "{WHAT}: got {} chunk partials for a {}-chunk grid",
                flat.len(),
                grid.n_chunks()
            )));
        }
        let explainer = LimeExplainer::fit(req.data);
        let d = explainer.n_features();
        let mut probes: Vec<LimeProbe> = Vec::with_capacity(grid.total_draws);
        for chunk in flat {
            for (i, row) in arr_field(chunk, "rows", WHAT)?.iter().enumerate() {
                let vals = row
                    .as_arr()
                    .ok_or_else(|| wire_error(format!("{WHAT}: probe row {i} is not an array")))?
                    .iter()
                    .map(|v| {
                        v.as_num().ok_or_else(|| {
                            wire_error(format!("{WHAT}: probe row {i} has a non-numeric entry"))
                        })
                    })
                    .collect::<XaiResult<Vec<f64>>>()?;
                if vals.len() != d + 2 {
                    return Err(wire_error(format!(
                        "{WHAT}: probe row {i} has {} entries, want {}",
                        vals.len(),
                        d + 2
                    )));
                }
                probes.push((vals[..d].to_vec(), vals[d], vals[d + 1]));
            }
        }
        let prediction = catch_model("LIME instance prediction", || model.predict(instance))?;
        let width = lime::width_for(self.config, instance.len());
        let exp = explainer.fit_probes(probes, width, prediction, self.config)?;
        Ok(Explanation::Attribution(lime_strict(exp, &req.plan)?))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![
            ("n_samples", Json::Num(self.config.n_samples as f64)),
            (
                "kernel_width",
                self.config.kernel_width.map_or(Json::Null, Json::Num),
            ),
            ("ridge", Json::Num(self.config.ridge)),
            (
                "max_features",
                self.config.max_features.map_or(Json::Null, |k| Json::Num(k as f64)),
            ),
        ])
    }
}

/// SP-LIME submodular pick (§2.1.1): a global view assembled from LIME
/// explanations, reported as per-feature importance.
#[derive(Clone, Copy, Debug)]
pub struct SpLimeMethod {
    /// Rows explained as candidates for the pick.
    pub n_candidates: usize,
    /// Instances the submodular pick may select.
    pub picks: usize,
    /// LIME settings used for every candidate explanation.
    pub config: LimeConfig,
}

impl Default for SpLimeMethod {
    fn default() -> Self {
        Self { n_candidates: 50, picks: 5, config: LimeConfig::default() }
    }
}

impl Explainer for SpLimeMethod {
    fn card(&self) -> MethodCard {
        method_card("SP-LIME")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("SP-LIME", req)?;
        validate::finite_matrix("SP-LIME dataset", req.data.x())?;
        let explainer = LimeExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let pick = if req.plan.parallel() {
            // Candidate `i` always explains at `seed + i`, so fanning the
            // candidates across the executor reproduces the sequential
            // matrix bit for bit (the per-task executor RNG is unused).
            let n = sp_lime::candidate_count(req.data, self.n_candidates);
            let rows = try_par_map_seeded(n, req.plan.seed, req.plan.workers, |i, _rng| {
                sp_lime::candidate_row(&explainer, &f, req.data, i, self.config, req.plan.seed)
            })?;
            let mut w = Matrix::zeros(n, req.data.n_features());
            for (i, row) in rows.into_iter().enumerate() {
                w.row_mut(i).copy_from_slice(&row?);
            }
            sp_lime::pick_from_w(w, self.picks)
        } else {
            catch_model("SP-LIME candidate explanation", || {
                sp_lime(
                    &explainer,
                    &f,
                    req.data,
                    self.n_candidates,
                    self.picks,
                    self.config,
                    req.plan.seed,
                )
            })?
        };
        validate::finite_slice("SP-LIME feature importance", &pick.feature_importance).map_err(
            |_| XaiError::ModelFault {
                context: "SP-LIME produced non-finite feature importance".into(),
            },
        )?;
        // Global importance has no single instance: baseline/prediction
        // carry no meaning and are reported as zero.
        Ok(Explanation::Attribution(FeatureAttribution::new(
            req.feature_names(),
            pick.feature_importance,
            0.0,
            0.0,
        )))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl SpLimeMethod {
    /// Rebuilds the method from its canonical shard-config JSON.
    pub fn from_config_json(config: &Json) -> XaiResult<Self> {
        const WHAT: &str = "SP-LIME config";
        let n_candidates = index_field(config, "n_candidates", WHAT)?;
        let picks = index_field(config, "picks", WHAT)?;
        if picks == 0 {
            return Err(wire_error(format!("{WHAT}: picks must be >= 1")));
        }
        let lime = config
            .get("lime")
            .ok_or_else(|| wire_error(format!("{WHAT}: missing required field 'lime'")))?;
        let config = LimeMethod::from_config_json(lime)?.config;
        Ok(Self { n_candidates, picks, config })
    }
}

impl ShardableExplainer for SpLimeMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        reject_budget("SP-LIME", req)?;
        Ok(DrawGrid {
            total_draws: sp_lime::candidate_count(req.data, self.n_candidates),
            chunk_size: 1,
        })
    }

    fn explain_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        validate::finite_matrix("SP-LIME dataset", req.data.x())?;
        self.draw_grid(req)?;
        let explainer = LimeExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let row = sp_lime::candidate_row(&explainer, &f, req.data, c, self.config, req.plan.seed)?;
            out.push(Json::obj(vec![(
                "w",
                shard_nums("SP-LIME candidate explanation", &row)?,
            )]));
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "SP-LIME merge";
        validate::finite_matrix("SP-LIME dataset", req.data.x())?;
        let grid = self.draw_grid(req)?;
        let flat = flatten_chunks(&partials, WHAT)?;
        if flat.len() != grid.n_chunks() {
            return Err(wire_error(format!(
                "{WHAT}: got {} chunk partials for a {}-chunk grid",
                flat.len(),
                grid.n_chunks()
            )));
        }
        let d = req.data.n_features();
        let mut w = Matrix::zeros(flat.len(), d);
        for (i, chunk) in flat.iter().enumerate() {
            let row = nums_field(chunk, "w", WHAT)?;
            if row.len() != d {
                return Err(wire_error(format!(
                    "{WHAT}: candidate row {i} has {} entries, want {d}",
                    row.len()
                )));
            }
            w.row_mut(i).copy_from_slice(&row);
        }
        let pick = sp_lime::pick_from_w(w, self.picks);
        validate::finite_slice("SP-LIME feature importance", &pick.feature_importance).map_err(
            |_| XaiError::ModelFault {
                context: "SP-LIME produced non-finite feature importance".into(),
            },
        )?;
        Ok(Explanation::Attribution(FeatureAttribution::new(
            req.feature_names(),
            pick.feature_importance,
            0.0,
            0.0,
        )))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![
            ("n_candidates", Json::Num(self.n_candidates as f64)),
            ("picks", Json::Num(self.picks as f64)),
            ("lime", ShardableExplainer::config_json(&LimeMethod { config: self.config })),
        ])
    }
}

/// Partial dependence / ICE curves (Molnar §2 framing) through the
/// unified layer; needs `ExplainRequest::feature`.
#[derive(Clone, Copy, Debug)]
pub struct PdpMethod {
    /// Grid resolution over the feature's 5–95 % quantile range.
    pub points: usize,
    /// Row subsample cap for the background average.
    pub max_rows: usize,
    /// Keep the per-row ICE curves alongside the mean PDP.
    pub keep_ice: bool,
}

impl Default for PdpMethod {
    fn default() -> Self {
        Self { points: 20, max_rows: 200, keep_ice: true }
    }
}

impl Explainer for PdpMethod {
    fn card(&self) -> MethodCard {
        method_card("Partial dependence / ICE")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("PDP/ICE", req)?;
        let feature = req.feature.ok_or_else(|| XaiError::Unsupported {
            context: "PDP/ICE sweeps one feature and needs ExplainRequest::feature".into(),
        })?;
        if feature >= req.data.n_features() {
            return Err(XaiError::Unsupported {
                context: format!(
                    "PDP/ICE feature index {feature} out of range for {} features",
                    req.data.n_features()
                ),
            });
        }
        let grid = feature_grid(req.data, feature, self.points);
        let f = |x: &[f64]| model.predict(x);
        let fb = |m: &Matrix| model.predict_batch(m);
        let pd = if req.plan.batched {
            try_partial_dependence_batched(
                &fb,
                req.data,
                feature,
                &grid,
                self.max_rows,
                self.keep_ice,
            )?
        } else {
            try_partial_dependence(&f, req.data, feature, &grid, self.max_rows, self.keep_ice)?
        };
        Ok(Explanation::Curve(CurveExplanation {
            feature: pd.feature,
            grid: pd.grid,
            values: pd.pdp,
            ice: pd.ice,
        }))
    }
}

/// Adapter: the saliency family's gradient surface over any oracle that
/// advertises a gradient.
struct OracleDiff<'a>(&'a dyn ModelOracle);

impl Differentiable for OracleDiff<'_> {
    fn output(&self, x: &[f64]) -> f64 {
        self.0.predict(x)
    }
    fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        self.0.gradient(x).expect("gradient availability checked before dispatch")
    }
}

/// Integrated gradients (§2.4 saliency) through the unified layer: path
/// integral from the dataset's mean point to the instance. The method is
/// a deterministic single pass with no random draws, so every execution
/// plan (`seed`, `workers`, `batched`) returns the same result; models
/// without a gradient surface report [`XaiError::Unsupported`].
#[derive(Clone, Copy, Debug)]
pub struct IntegratedGradientsMethod {
    /// Riemann steps along the straight-line path.
    pub steps: usize,
}

impl Default for IntegratedGradientsMethod {
    fn default() -> Self {
        Self { steps: 50 }
    }
}

impl Explainer for IntegratedGradientsMethod {
    fn card(&self) -> MethodCard {
        method_card("Integrated gradients")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("integrated gradients", req)?;
        let instance = req.need_instance("integrated gradients")?;
        validate::finite_slice("integrated gradients instance", instance)?;
        if model.gradient(instance).is_none() {
            return Err(XaiError::Unsupported {
                context: "integrated gradients needs a differentiable model; \
                          this oracle offers no gradient"
                    .into(),
            });
        }
        let background = req.background_or_data();
        let baseline: Vec<f64> = (0..background.cols()).map(|j| mean(&background.col(j))).collect();
        if baseline.len() != instance.len() {
            return Err(XaiError::Unsupported {
                context: format!(
                    "integrated gradients baseline has {} features, instance {}",
                    baseline.len(),
                    instance.len()
                ),
            });
        }
        let diff = OracleDiff(model);
        let attr = catch_model("integrated gradients path integral", || {
            integrated_gradients(&diff, instance, &baseline, self.steps)
        })?;
        validate::finite_slice("integrated gradients attribution", &attr.values).map_err(|_| {
            XaiError::ModelFault {
                context: "integrated gradients produced non-finite values".into(),
            }
        })?;
        // Re-label with schema names (the free function only knows `x{j}`).
        let names = req.feature_names();
        let attr = if names.len() == attr.values.len() {
            FeatureAttribution::new(names, attr.values, attr.baseline, attr.prediction)
        } else {
            attr
        };
        Ok(Explanation::Attribution(attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_core::taxonomy::Scope;
    use xai_core::RunConfig;
    use xai_data::synth::german_credit;
    use xai_models::{LogisticConfig, LogisticRegression, Mlp, MlpConfig};

    #[test]
    fn cards_come_from_the_catalogue() {
        assert_eq!(LimeMethod::default().card().name, "LIME");
        assert_eq!(SpLimeMethod::default().card().scope, Scope::Global);
        assert_eq!(PdpMethod::default().card().scope, Scope::Global);
        assert_eq!(IntegratedGradientsMethod::default().card().section, "2.4");
    }

    #[test]
    fn lime_trait_path_runs_batched_and_scalar_identically() {
        let data = german_credit(80, 21);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = data.row(2).to_vec();
        let config = LimeConfig { n_samples: 120, ..LimeConfig::default() };
        let scalar = LimeMethod { config }
            .explain(&model, &ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(4)))
            .unwrap();
        let batched = LimeMethod { config }
            .explain(
                &model,
                &ExplainRequest::new(&data)
                    .instance(&row)
                    .plan(RunConfig::seeded(4).with_batched(true)),
            )
            .unwrap();
        assert_eq!(
            scalar.as_attribution().unwrap().values,
            batched.as_attribution().unwrap().values
        );
    }

    #[test]
    fn pdp_needs_a_feature_and_returns_a_curve() {
        let data = german_credit(60, 22);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let req = ExplainRequest::new(&data);
        assert!(matches!(
            PdpMethod::default().explain(&model, &req),
            Err(XaiError::Unsupported { .. })
        ));
        let e = PdpMethod::default().explain(&model, &req.feature(0)).unwrap();
        let curve = e.as_curve().unwrap();
        assert_eq!(curve.feature, 0);
        assert_eq!(curve.grid.len(), curve.values.len());
        assert!(curve.ice.is_some());
    }

    #[test]
    fn integrated_gradients_needs_a_gradient_surface() {
        let data = german_credit(60, 23);
        let row = data.row(0).to_vec();
        let req = ExplainRequest::new(&data).instance(&row);
        let mlp = Mlp::fit(data.x(), data.y(), MlpConfig::default());
        let e = IntegratedGradientsMethod::default().explain(&mlp, &req).unwrap();
        assert_eq!(e.as_attribution().unwrap().values.len(), data.x().cols());

        // Tree models advertise no gradient.
        let gbdt = xai_models::Gbdt::fit(data.x(), data.y(), xai_models::GbdtConfig::default());
        assert!(matches!(
            IntegratedGradientsMethod::default().explain(&gbdt, &req),
            Err(XaiError::Unsupported { .. })
        ));
    }

    #[test]
    fn sp_lime_reports_global_importance() {
        let data = german_credit(50, 24);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let method = SpLimeMethod {
            n_candidates: 10,
            picks: 3,
            config: LimeConfig { n_samples: 60, ..LimeConfig::default() },
        };
        let e = method.explain(&model, &ExplainRequest::new(&data)).unwrap();
        let attr = e.as_attribution().unwrap();
        assert_eq!(attr.values.len(), data.x().cols());
        assert!(attr.values.iter().all(|v| *v >= 0.0));
    }
}
