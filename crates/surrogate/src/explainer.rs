//! Unified-layer `Explainer` impls for the surrogate family (DESIGN.md
//! §9): LIME, SP-LIME, PDP/ICE and integrated-gradients saliency.
//!
//! Dispatch contract: `RunConfig::batched` selects the batched legacy
//! twin where one exists (LIME, PDP); none of these methods has a
//! parallel sampling stream, so `workers` is a no-op (the result equals
//! the `workers == 1` result bit-for-bit). A `SampleBudget` is honoured
//! by LIME on the scalar path (an eval cap of `k` equals an unbudgeted
//! run with `n_samples = k` bit for bit); SP-LIME, PDP/ICE and
//! integrated gradients reject budgets as [`XaiError::Unsupported`]
//! rather than silently ignoring the cap.
// This module is the blessed call site of the deprecated legacy twins:
// the unified dispatch below is what replaces them.
#![allow(deprecated)]

use xai_core::taxonomy::method_card;
use xai_core::{
    catch_model, validate, CurveExplanation, DegradationPolicy, ExplainRequest, Explainer,
    Explanation, FeatureAttribution, MethodCard, ModelOracle, XaiError, XaiResult,
};
use xai_linalg::stats::mean;
use xai_linalg::Matrix;

use crate::lime::{LimeConfig, LimeExplainer};
use crate::pdp::{feature_grid, try_partial_dependence, try_partial_dependence_batched};
use crate::saliency::{integrated_gradients, Differentiable};
use crate::sp_lime::sp_lime;

fn reject_budget(method: &str, req: &ExplainRequest<'_>) -> XaiResult<()> {
    if req.plan.budgeted() {
        return Err(XaiError::Unsupported {
            context: format!("{method} has no budgeted execution path; clear RunConfig::budget"),
        });
    }
    Ok(())
}

/// LIME local surrogate regression (§2.1.1) through the unified layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct LimeMethod {
    /// Neighbourhood size, kernel width, ridge and sparsity settings;
    /// `RunConfig::seed` picks the perturbation stream.
    pub config: LimeConfig,
}

impl Explainer for LimeMethod {
    fn card(&self) -> MethodCard {
        method_card("LIME")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        let instance = req.need_instance("LIME")?;
        let explainer = LimeExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let fb = |m: &Matrix| model.predict_batch(m);
        let exp = if req.plan.budgeted() {
            if req.plan.batched {
                return Err(XaiError::Unsupported {
                    context: "budgeted LIME is scalar; set batched = false".into(),
                });
            }
            explainer.try_explain_budgeted(
                &f,
                instance,
                self.config,
                req.plan.seed,
                req.plan.budget,
            )?
        } else if req.plan.batched {
            explainer.try_explain_batched(&fb, instance, self.config, req.plan.seed)?
        } else {
            explainer.try_explain(&f, instance, self.config, req.plan.seed)?
        };
        if exp.degraded && req.plan.degradation == DegradationPolicy::Strict {
            return Err(XaiError::SingularSystem {
                context: "LIME surrogate fit needed ridge escalation; \
                          strict degradation policy refuses the estimate"
                    .into(),
            });
        }
        Ok(Explanation::Attribution(exp.attribution))
    }
}

/// SP-LIME submodular pick (§2.1.1): a global view assembled from LIME
/// explanations, reported as per-feature importance.
#[derive(Clone, Copy, Debug)]
pub struct SpLimeMethod {
    /// Rows explained as candidates for the pick.
    pub n_candidates: usize,
    /// Instances the submodular pick may select.
    pub picks: usize,
    /// LIME settings used for every candidate explanation.
    pub config: LimeConfig,
}

impl Default for SpLimeMethod {
    fn default() -> Self {
        Self { n_candidates: 50, picks: 5, config: LimeConfig::default() }
    }
}

impl Explainer for SpLimeMethod {
    fn card(&self) -> MethodCard {
        method_card("SP-LIME")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("SP-LIME", req)?;
        validate::finite_matrix("SP-LIME dataset", req.data.x())?;
        let explainer = LimeExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let pick = catch_model("SP-LIME candidate explanation", || {
            sp_lime(
                &explainer,
                &f,
                req.data,
                self.n_candidates,
                self.picks,
                self.config,
                req.plan.seed,
            )
        })?;
        validate::finite_slice("SP-LIME feature importance", &pick.feature_importance).map_err(
            |_| XaiError::ModelFault {
                context: "SP-LIME produced non-finite feature importance".into(),
            },
        )?;
        // Global importance has no single instance: baseline/prediction
        // carry no meaning and are reported as zero.
        Ok(Explanation::Attribution(FeatureAttribution::new(
            req.feature_names(),
            pick.feature_importance,
            0.0,
            0.0,
        )))
    }
}

/// Partial dependence / ICE curves (Molnar §2 framing) through the
/// unified layer; needs `ExplainRequest::feature`.
#[derive(Clone, Copy, Debug)]
pub struct PdpMethod {
    /// Grid resolution over the feature's 5–95 % quantile range.
    pub points: usize,
    /// Row subsample cap for the background average.
    pub max_rows: usize,
    /// Keep the per-row ICE curves alongside the mean PDP.
    pub keep_ice: bool,
}

impl Default for PdpMethod {
    fn default() -> Self {
        Self { points: 20, max_rows: 200, keep_ice: true }
    }
}

impl Explainer for PdpMethod {
    fn card(&self) -> MethodCard {
        method_card("Partial dependence / ICE")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("PDP/ICE", req)?;
        let feature = req.feature.ok_or_else(|| XaiError::Unsupported {
            context: "PDP/ICE sweeps one feature and needs ExplainRequest::feature".into(),
        })?;
        if feature >= req.data.n_features() {
            return Err(XaiError::Unsupported {
                context: format!(
                    "PDP/ICE feature index {feature} out of range for {} features",
                    req.data.n_features()
                ),
            });
        }
        let grid = feature_grid(req.data, feature, self.points);
        let f = |x: &[f64]| model.predict(x);
        let fb = |m: &Matrix| model.predict_batch(m);
        let pd = if req.plan.batched {
            try_partial_dependence_batched(
                &fb,
                req.data,
                feature,
                &grid,
                self.max_rows,
                self.keep_ice,
            )?
        } else {
            try_partial_dependence(&f, req.data, feature, &grid, self.max_rows, self.keep_ice)?
        };
        Ok(Explanation::Curve(CurveExplanation {
            feature: pd.feature,
            grid: pd.grid,
            values: pd.pdp,
            ice: pd.ice,
        }))
    }
}

/// Adapter: the saliency family's gradient surface over any oracle that
/// advertises a gradient.
struct OracleDiff<'a>(&'a dyn ModelOracle);

impl Differentiable for OracleDiff<'_> {
    fn output(&self, x: &[f64]) -> f64 {
        self.0.predict(x)
    }
    fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        self.0.gradient(x).expect("gradient availability checked before dispatch")
    }
}

/// Integrated gradients (§2.4 saliency) through the unified layer: path
/// integral from the dataset's mean point to the instance. Deterministic
/// given `steps`, so `seed` / `workers` / `batched` are no-ops; models
/// without a gradient surface report [`XaiError::Unsupported`].
#[derive(Clone, Copy, Debug)]
pub struct IntegratedGradientsMethod {
    /// Riemann steps along the straight-line path.
    pub steps: usize,
}

impl Default for IntegratedGradientsMethod {
    fn default() -> Self {
        Self { steps: 50 }
    }
}

impl Explainer for IntegratedGradientsMethod {
    fn card(&self) -> MethodCard {
        method_card("Integrated gradients")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("integrated gradients", req)?;
        let instance = req.need_instance("integrated gradients")?;
        validate::finite_slice("integrated gradients instance", instance)?;
        if model.gradient(instance).is_none() {
            return Err(XaiError::Unsupported {
                context: "integrated gradients needs a differentiable model; \
                          this oracle offers no gradient"
                    .into(),
            });
        }
        let background = req.background_or_data();
        let baseline: Vec<f64> = (0..background.cols()).map(|j| mean(&background.col(j))).collect();
        if baseline.len() != instance.len() {
            return Err(XaiError::Unsupported {
                context: format!(
                    "integrated gradients baseline has {} features, instance {}",
                    baseline.len(),
                    instance.len()
                ),
            });
        }
        let diff = OracleDiff(model);
        let attr = catch_model("integrated gradients path integral", || {
            integrated_gradients(&diff, instance, &baseline, self.steps)
        })?;
        validate::finite_slice("integrated gradients attribution", &attr.values).map_err(|_| {
            XaiError::ModelFault {
                context: "integrated gradients produced non-finite values".into(),
            }
        })?;
        // Re-label with schema names (the free function only knows `x{j}`).
        let names = req.feature_names();
        let attr = if names.len() == attr.values.len() {
            FeatureAttribution::new(names, attr.values, attr.baseline, attr.prediction)
        } else {
            attr
        };
        Ok(Explanation::Attribution(attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_core::taxonomy::Scope;
    use xai_core::RunConfig;
    use xai_data::synth::german_credit;
    use xai_models::{LogisticConfig, LogisticRegression, Mlp, MlpConfig};

    #[test]
    fn cards_come_from_the_catalogue() {
        assert_eq!(LimeMethod::default().card().name, "LIME");
        assert_eq!(SpLimeMethod::default().card().scope, Scope::Global);
        assert_eq!(PdpMethod::default().card().scope, Scope::Global);
        assert_eq!(IntegratedGradientsMethod::default().card().section, "2.4");
    }

    #[test]
    fn lime_trait_path_runs_batched_and_scalar_identically() {
        let data = german_credit(80, 21);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = data.row(2).to_vec();
        let config = LimeConfig { n_samples: 120, ..LimeConfig::default() };
        let scalar = LimeMethod { config }
            .explain(&model, &ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(4)))
            .unwrap();
        let batched = LimeMethod { config }
            .explain(
                &model,
                &ExplainRequest::new(&data)
                    .instance(&row)
                    .plan(RunConfig::seeded(4).with_batched(true)),
            )
            .unwrap();
        assert_eq!(
            scalar.as_attribution().unwrap().values,
            batched.as_attribution().unwrap().values
        );
    }

    #[test]
    fn pdp_needs_a_feature_and_returns_a_curve() {
        let data = german_credit(60, 22);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let req = ExplainRequest::new(&data);
        assert!(matches!(
            PdpMethod::default().explain(&model, &req),
            Err(XaiError::Unsupported { .. })
        ));
        let e = PdpMethod::default().explain(&model, &req.feature(0)).unwrap();
        let curve = e.as_curve().unwrap();
        assert_eq!(curve.feature, 0);
        assert_eq!(curve.grid.len(), curve.values.len());
        assert!(curve.ice.is_some());
    }

    #[test]
    fn integrated_gradients_needs_a_gradient_surface() {
        let data = german_credit(60, 23);
        let row = data.row(0).to_vec();
        let req = ExplainRequest::new(&data).instance(&row);
        let mlp = Mlp::fit(data.x(), data.y(), MlpConfig::default());
        let e = IntegratedGradientsMethod::default().explain(&mlp, &req).unwrap();
        assert_eq!(e.as_attribution().unwrap().values.len(), data.x().cols());

        // Tree models advertise no gradient.
        let gbdt = xai_models::Gbdt::fit(data.x(), data.y(), xai_models::GbdtConfig::default());
        assert!(matches!(
            IntegratedGradientsMethod::default().explain(&gbdt, &req),
            Err(XaiError::Unsupported { .. })
        ));
    }

    #[test]
    fn sp_lime_reports_global_importance() {
        let data = german_credit(50, 24);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let method = SpLimeMethod {
            n_candidates: 10,
            picks: 3,
            config: LimeConfig { n_samples: 60, ..LimeConfig::default() },
        };
        let e = method.explain(&model, &ExplainRequest::new(&data)).unwrap();
        let attr = e.as_attribution().unwrap();
        assert_eq!(attr.values.len(), data.x().cols());
        assert!(attr.values.iter().all(|v| *v >= 0.0));
    }
}
