//! Exact, efficient Shapley values for kNN utilities
//! (Jia et al., §2.3.1 \[34\]).
//!
//! For the soft kNN utility, Shapley values of all `n` training points can
//! be computed **exactly in `O(n log n)` per test point** by a single
//! backward recursion over the distance-sorted training set — the
//! practical estimator the tutorial cites as exploiting "assumptions on
//! the stability of the model". Validated against brute-force subset
//! enumeration in the tests.

use xai_core::DataAttribution;
use xai_data::Dataset;
use xai_models::Knn;

/// Exact kNN-Shapley values of every training point for one test example.
///
/// Recursion (Jia et al., Theorem 1), with training points sorted by
/// distance to the test point (α₁ nearest):
///
/// `s(α_N) = 1[y_{α_N} = y] / N`
/// `s(α_i) = s(α_{i+1}) + (1[y_{α_i} = y] − 1[y_{α_{i+1}} = y]) / K · min(K, i) / i`
pub fn knn_shapley_single(
    train: &Dataset,
    k: usize,
    test_x: &[f64],
    test_y: f64,
) -> Vec<f64> {
    let n = train.n_rows();
    assert!(n >= 1 && k >= 1);
    let knn = Knn::fit(train.x(), train.y(), k);
    let order = knn.neighbours_sorted(test_x); // ascending distance
    let matches: Vec<f64> = order
        .iter()
        .map(|&i| f64::from((train.y()[i] >= 0.5) == (test_y >= 0.5)))
        .collect();

    let mut s = vec![0.0; n]; // s[rank]
    s[n - 1] = matches[n - 1] / n as f64;
    for i in (0..n - 1).rev() {
        let rank = i + 1; // 1-based rank of α_i
        s[i] = s[i + 1]
            + (matches[i] - matches[i + 1]) / k as f64 * (k.min(rank) as f64 / rank as f64);
    }
    // Scatter back to training-index order.
    let mut values = vec![0.0; n];
    for (rank_pos, &train_idx) in order.iter().enumerate() {
        values[train_idx] = s[rank_pos];
    }
    values
}

/// Exact kNN-Shapley values aggregated (averaged) over a test set.
pub fn knn_shapley(train: &Dataset, test: &Dataset, k: usize) -> DataAttribution {
    assert!(test.n_rows() > 0);
    let n = train.n_rows();
    let mut values = vec![0.0; n];
    for t in 0..test.n_rows() {
        let v = knn_shapley_single(train, k, test.row(t), test.y()[t]);
        for (acc, x) in values.iter_mut().zip(&v) {
            *acc += x / test.n_rows() as f64;
        }
    }
    DataAttribution { values, measure: format!("exact {k}-NN Shapley") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::{inject_label_noise, Task};
    use xai_data::schema::{Feature, Schema};
    use xai_data::synth::linear_gaussian;
    use xai_linalg::Matrix;
    use xai_shapley::{exact_shapley, CooperativeGame};

    /// Brute-force reference: the soft kNN utility as a cooperative game
    /// over training points.
    struct KnnGame<'a> {
        train: &'a Dataset,
        k: usize,
        test_x: Vec<f64>,
        test_y: f64,
    }

    impl CooperativeGame for KnnGame<'_> {
        fn n_players(&self) -> usize {
            self.train.n_rows()
        }
        fn value(&self, coalition: &[bool]) -> f64 {
            let subset: Vec<usize> = (0..coalition.len()).filter(|&i| coalition[i]).collect();
            if subset.is_empty() {
                return 0.0;
            }
            let sub = self.train.subset(&subset);
            let knn = Knn::fit(sub.x(), sub.y(), self.k);
            let neighbours = knn.k_nearest(&self.test_x);
            let hits = neighbours
                .iter()
                .filter(|&&i| (sub.y()[i] >= 0.5) == (self.test_y >= 0.5))
                .count();
            hits as f64 / self.k as f64
        }
    }

    fn tiny_dataset(n: usize, seed: u64) -> Dataset {
        let data = linear_gaussian(n, &[2.0], 0.0, seed);
        data
    }

    #[test]
    fn recursion_matches_brute_force() {
        // Small enough for 2^n enumeration; the closed form must agree.
        let train = tiny_dataset(9, 31);
        let test = tiny_dataset(4, 32);
        for k in [1usize, 3] {
            for t in 0..test.n_rows() {
                let fast = knn_shapley_single(&train, k, test.row(t), test.y()[t]);
                let game = KnnGame {
                    train: &train,
                    k,
                    test_x: test.row(t).to_vec(),
                    test_y: test.y()[t],
                };
                let slow = exact_shapley(&game);
                for (a, b) in fast.iter().zip(&slow) {
                    assert!((a - b).abs() < 1e-9, "k={k} t={t}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn efficiency_per_test_point() {
        let train = tiny_dataset(20, 41);
        let test = tiny_dataset(5, 42);
        let k = 3;
        for t in 0..test.n_rows() {
            let v = knn_shapley_single(&train, k, test.row(t), test.y()[t]);
            // Σφ = U(N) − U(∅) = (correct among k nearest)/k − 0.
            let knn = Knn::fit(train.x(), train.y(), k);
            let hits = knn
                .k_nearest(test.row(t))
                .iter()
                .filter(|&&i| (train.y()[i] >= 0.5) == (test.y()[t] >= 0.5))
                .count();
            let expected = hits as f64 / k as f64;
            let total: f64 = v.iter().sum();
            assert!((total - expected).abs() < 1e-9, "t={t}: {total} vs {expected}");
        }
    }

    #[test]
    fn mislabeled_points_score_lowest() {
        let mut train = linear_gaussian(150, &[4.0], 0.0, 51);
        let test = linear_gaussian(150, &[4.0], 0.0, 52);
        let guilty = inject_label_noise(&mut train, 0.1, 2);
        let att = knn_shapley(&train, &test, 5);
        let p = att.precision_at_k(&guilty, guilty.len());
        // Random guessing scores ~0.1 (the corruption rate).
        assert!(p >= 0.55, "precision@k = {p}");
    }

    #[test]
    fn duplicate_of_test_point_is_most_valuable() {
        // Train contains an exact copy of the test point with the right
        // label: it must receive the top value for that test point.
        let schema = Schema::new(vec![Feature::numeric("x", -10.0, 10.0)], "y");
        let x = Matrix::from_rows(&[vec![5.0], vec![-5.0], vec![0.0], vec![4.9]]);
        let y = vec![1.0, 0.0, 0.0, 1.0];
        let train = Dataset::new(schema, x, y, Task::BinaryClassification);
        let v = knn_shapley_single(&train, 1, &[5.0], 1.0);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // The duplicate shares the top value (the nearby same-label point
        // legitimately ties under the closed form).
        assert!((v[0] - max).abs() < 1e-12, "duplicate not top-valued: {v:?}");
        assert!(v[0] > v[1] && v[0] > v[2], "must beat the wrong-label points");
    }
}
