//! Data Banzhaf valuation.
//!
//! The tutorial's §2.3.1 discussion notes that the assigned values depend
//! on the learning algorithm's *stability*; when the utility is noisy
//! (stochastic training), Shapley's size-dependent weights amplify the
//! noise of small-coalition evaluations. The Banzhaf value weights every
//! coalition equally — `β_i = E_{S ~ Uniform(2^{N∖i})} [U(S∪i) − U(S)]` —
//! which is the maximally noise-robust semivalue (Wang & Jia 2023 make
//! this precise; the trade-off is losing the efficiency axiom, cf.
//! `xai-shapley::exact_banzhaf`). Experiment E26 measures the robustness
//! gap.

use crate::utility::{check_finite_values, Utility};
use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_core::{catch_model, DataAttribution, SampleBudget, XaiError, XaiResult};

/// Configuration for [`data_banzhaf`].
#[derive(Clone, Copy, Debug)]
pub struct BanzhafConfig {
    /// Monte-Carlo coalition draws per training point.
    pub samples_per_point: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BanzhafConfig {
    fn default() -> Self {
        Self { samples_per_point: 100, seed: 0 }
    }
}

/// Monte-Carlo data Banzhaf values: each draw includes every other point
/// independently with probability ½ (paired with-and-without evaluation).
pub fn data_banzhaf(utility: &dyn Utility, config: BanzhafConfig) -> DataAttribution {
    assert!(config.samples_per_point >= 1);
    let n = utility.n_train();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut values = vec![0.0; n];
    let mut base: Vec<usize> = Vec::with_capacity(n);
    for (i, value) in values.iter_mut().enumerate() {
        let mut acc = 0.0;
        for _ in 0..config.samples_per_point {
            base.clear();
            for j in 0..n {
                if j != i && rng.gen::<bool>() {
                    base.push(j);
                }
            }
            let without = utility.eval(&base);
            base.push(i);
            let with = utility.eval(&base);
            acc += with - without;
        }
        *value = acc / config.samples_per_point as f64;
    }
    DataAttribution { values, measure: "data Banzhaf (MC)".into() }
}

/// Fallible twin of [`data_banzhaf`]: a utility that panics or returns
/// non-finite scores yields [`xai_core::XaiError::ModelFault`] instead of
/// unwinding or leaking NaN values.
pub fn try_data_banzhaf(utility: &dyn Utility, config: BanzhafConfig) -> XaiResult<DataAttribution> {
    let att = catch_model("data Banzhaf evaluation", || data_banzhaf(utility, config))?;
    check_finite_values(&att.values, "data Banzhaf")?;
    Ok(att)
}

/// Budget-aware fallible data Banzhaf: stops drawing coalitions once
/// `budget` is exhausted (metered in utility evaluations — each draw is a
/// paired with-and-without evaluation, so it records 2) and returns the
/// **best-effort partial estimate**: every point averages over the draws
/// it completed, and points the budget never reached are valued `0.0`
/// with the measure flagged `budget-truncated`. Fails with
/// [`XaiError::BudgetExceeded`] only when the budget expires before the
/// first draw. The RNG stream and per-point accumulation are exactly
/// [`data_banzhaf`]'s, so an unlimited budget is bit-identical to
/// [`try_data_banzhaf`]. With an eval cap the truncation point is
/// deterministic; with a wall-clock deadline it is machine-dependent.
pub fn try_data_banzhaf_budgeted(
    utility: &dyn Utility,
    config: BanzhafConfig,
    budget: SampleBudget,
) -> XaiResult<DataAttribution> {
    assert!(config.samples_per_point >= 1);
    let n = utility.n_train();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut values = vec![0.0; n];
    let mut base: Vec<usize> = Vec::with_capacity(n);
    let mut meter = budget.start();
    let mut total_draws = 0usize;
    let mut truncated = false;
    for (i, value) in values.iter_mut().enumerate() {
        let mut acc = 0.0;
        let mut done = 0usize;
        for _ in 0..config.samples_per_point {
            if meter.exhausted() {
                truncated = true;
                break;
            }
            // One draw: the membership coin flips, then the paired
            // with-and-without evaluations — drawn and accumulated in
            // data_banzhaf's exact order, under panic isolation.
            let delta = catch_model("data Banzhaf coalition evaluation", || {
                base.clear();
                for j in 0..n {
                    if j != i && rng.gen::<bool>() {
                        base.push(j);
                    }
                }
                let without = utility.eval(&base);
                base.push(i);
                let with = utility.eval(&base);
                with - without
            })?;
            meter.record(2);
            acc += delta;
            done += 1;
        }
        if done > 0 {
            *value = acc / done as f64;
        }
        total_draws += done;
    }
    if total_draws == 0 {
        return Err(XaiError::BudgetExceeded {
            context: "data Banzhaf: budget expired before the first coalition draw".into(),
            completed: 0,
        });
    }
    let measure = if truncated {
        "data Banzhaf (MC, budget-truncated)".into()
    } else {
        "data Banzhaf (MC)".into()
    };
    let att = DataAttribution { values, measure };
    check_finite_values(&att.values, "data Banzhaf")?;
    Ok(att)
}

/// Exact data Banzhaf by subset enumeration (tiny `n` only).
pub fn exact_data_banzhaf(utility: &dyn Utility) -> DataAttribution {
    let n = utility.n_train();
    assert!(n <= 16, "exact Banzhaf enumerates 2^{n} subsets");
    let size = 1usize << n;
    let mut table = Vec::with_capacity(size);
    let mut buf = Vec::with_capacity(n);
    for mask in 0..size {
        buf.clear();
        for i in 0..n {
            if mask & (1 << i) != 0 {
                buf.push(i);
            }
        }
        table.push(utility.eval(&buf));
    }
    let denom = (size >> 1) as f64;
    let mut values = vec![0.0; n];
    for mask in 0..size {
        for (i, value) in values.iter_mut().enumerate() {
            if mask & (1 << i) == 0 {
                *value += (table[mask | (1 << i)] - table[mask]) / denom;
            }
        }
    }
    DataAttribution { values, measure: "exact data Banzhaf".into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loo::exact_data_shapley;
    use crate::utility::{FnUtility, Utility};
    use xai_linalg::stats::{spearman, top_k_agreement};

    #[test]
    fn additive_utilities_make_banzhaf_equal_shapley() {
        let u = FnUtility::new(6, |s: &[usize]| s.iter().map(|&i| (i + 1) as f64).sum());
        let banzhaf = exact_data_banzhaf(&u);
        let shapley = exact_data_shapley(&u);
        for (a, b) in banzhaf.values.iter().zip(&shapley.values) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn mc_converges_to_exact() {
        let u = FnUtility::new(7, |s: &[usize]| {
            (s.len() as f64).sqrt() + f64::from(s.contains(&2) && s.contains(&5)) * 0.4
        });
        let exact = exact_data_banzhaf(&u);
        let mc = data_banzhaf(&u, BanzhafConfig { samples_per_point: 3000, seed: 3 });
        for (a, b) in mc.values.iter().zip(&exact.values) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn banzhaf_ranking_is_more_robust_to_utility_noise() {
        // A strongly non-additive utility evaluated under additive noise:
        // the Banzhaf ranking should drift less from its clean version
        // than the Shapley ranking does (E26's claim).
        use xai_rand::rngs::StdRng;
        use xai_rand::{Rng, SeedableRng};
        use std::cell::RefCell;
        let n = 8;
        let clean = |s: &[usize]| -> f64 {
            s.iter().map(|&i| (i + 1) as f64 / 8.0).sum::<f64>()
                + f64::from(s.contains(&0) && s.contains(&7)) * 0.3
        };
        let u_clean = FnUtility::new(n, clean);
        let shap_clean = exact_data_shapley(&u_clean);
        let banz_clean = exact_data_banzhaf(&u_clean);

        let mut shap_agreements = 0.0;
        let mut banz_agreements = 0.0;
        let trials = 12;
        for t in 0..trials {
            let rng = RefCell::new(StdRng::seed_from_u64(1000 + t));
            let noisy = FnUtility::new(n, |s: &[usize]| {
                clean(s) + (rng.borrow_mut().gen::<f64>() - 0.5) * 0.6
            });
            let shap_noisy = exact_data_shapley(&noisy);
            let banz_noisy = exact_data_banzhaf(&noisy);
            shap_agreements += spearman(&shap_clean.values, &shap_noisy.values);
            banz_agreements += spearman(&banz_clean.values, &banz_noisy.values);
        }
        assert!(
            banz_agreements >= shap_agreements - 0.5,
            "banzhaf should be at least as noise-robust: {banz_agreements} vs {shap_agreements}"
        );
        let _ = top_k_agreement(&banz_clean.values, &shap_clean.values, 3);
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_the_unbudgeted_twin() {
        let u = FnUtility::new(5, |s: &[usize]| {
            (s.len() as f64).sqrt() + f64::from(s.contains(&1)) * 0.25
        });
        let config = BanzhafConfig { samples_per_point: 40, seed: 17 };
        let plain = try_data_banzhaf(&u, config).unwrap();
        let budgeted =
            try_data_banzhaf_budgeted(&u, config, xai_core::SampleBudget::unlimited()).unwrap();
        assert_eq!(plain.values, budgeted.values);
        assert_eq!(budgeted.measure, "data Banzhaf (MC)");
    }

    #[test]
    fn eval_cap_truncates_deterministically_and_flags_the_measure() {
        let u = FnUtility::new(4, |s: &[usize]| s.len() as f64);
        let config = BanzhafConfig { samples_per_point: 10, seed: 5 };
        // 4 points × 10 draws × 2 evals = 80 evals unbudgeted. A 24-eval
        // cap admits 12 draws: point 0 completes 10, point 1 completes 2,
        // points 2 and 3 are never reached and value 0.0.
        let capped =
            try_data_banzhaf_budgeted(&u, config, xai_core::SampleBudget::with_max_evals(24))
                .unwrap();
        assert_eq!(capped.measure, "data Banzhaf (MC, budget-truncated)");
        assert_ne!(capped.values[0], 0.0);
        assert_ne!(capped.values[1], 0.0);
        assert_eq!(&capped.values[2..], &[0.0, 0.0]);
        // For this additive utility every marginal is exactly 1.
        assert_eq!(capped.values[0], 1.0);
        assert_eq!(capped.values[1], 1.0);
        // Determinism: the same cap truncates at the same point.
        let again =
            try_data_banzhaf_budgeted(&u, config, xai_core::SampleBudget::with_max_evals(24))
                .unwrap();
        assert_eq!(capped.values, again.values);

        // A budget that admits no draw at all is a typed error.
        let starved =
            try_data_banzhaf_budgeted(&u, config, xai_core::SampleBudget::with_max_evals(0));
        assert!(matches!(
            starved,
            Err(xai_core::XaiError::BudgetExceeded { completed: 0, .. })
        ));
    }

    #[test]
    fn banzhaf_violates_efficiency_on_nonadditive_games() {
        let u = FnUtility::new(3, |s: &[usize]| f64::from(s.len() >= 2));
        let banzhaf = exact_data_banzhaf(&u);
        let all: Vec<usize> = (0..3).collect();
        let target = u.eval(&all) - u.eval(&[]);
        let total: f64 = banzhaf.values.iter().sum();
        assert!((total - target).abs() > 0.1, "majority game exposes the violation: {total}");
    }
}
