//! Incremental-training utility engine (§2.3/§3).
//!
//! The tutorial's core tractability claim is that retraining-based data
//! valuation is *"computationally prohibitive when there are numerous data
//! points"*, and that the cure is **incremental computation of model
//! parameters** (PrIU \[77\], HedgeCut \[59\]). This module ships the cure
//! for the valuation hot path: a [`Utility`] implementation that keeps one
//! fitted model alive and *mutates* it toward each requested subset
//! instead of refitting from scratch.
//!
//! ## The delta strategy
//!
//! [`IncrementalUtility`] tracks the membership of the last evaluated
//! subset. A request for `U(S)` is served by diffing `S` against that
//! state:
//!
//! ```text
//!              current ────────► target S
//!                 │   adds  = S ∖ current   (rank-one updates)
//!                 │   removes = current ∖ S (rank-one downdates)
//!                 ▼
//!   |adds| + |removes| ≤ |S| ?  ──yes──► apply deltas      O(Δ·d²)
//!                 │no
//!                 ▼
//!            reset + |S| adds (rebuild)   O(|S|·d²)
//! ```
//!
//! Every driver in this crate becomes incremental through this one seam:
//!
//! - **TMC data Shapley** walks each permutation by *adding one point at a
//!   time* — `n` rank-one updates per permutation instead of `n` full
//!   retrains (the permutation restart is a single rebuild);
//! - **leave-one-out** becomes fit-once + one downdate per point (plus the
//!   re-add returning to `D ∖ {i−1}`'s neighbourhood);
//! - **Banzhaf** and group valuation ride the nearest-evaluated-subset
//!   delta, optionally layered under [`CachedUtility`] so revisited
//!   coalitions skip even the delta.
//!
//! Two model backends implement [`IncrementalModel`]:
//!
//! - [`RidgeValuationModel`] — *exact*: sufficient statistics
//!   `XᵀX + λI` / `Xᵀy` maintained through the shared rank-one Cholesky
//!   kernels ([`xai_linalg::cholupdate`] / [`xai_linalg::choldowndate`]),
//!   bit-close (≤1e-8) to retraining from scratch on every subset;
//! - [`WarmLogisticModel`] — *certified*: Newton re-fits seeded from the
//!   nearest evaluated subset's optimum ([`LogisticRegression::fit_warm`]),
//!   converging in 1–2 steps; a cold refit is the fallback whenever the
//!   warm fit misses the gradient tolerance.

use crate::banzhaf::{data_banzhaf, try_data_banzhaf, BanzhafConfig};
use crate::data_shapley::{tmc_shapley, try_tmc_shapley, TmcConfig, TmcResult};
use crate::loo::{leave_one_out, try_leave_one_out};
use crate::utility::{CachedUtility, Utility};
use std::sync::Mutex;
use xai_core::{DataAttribution, XaiResult};
use xai_data::metrics::accuracy;
use xai_data::Dataset;
use xai_linalg::{dot, Cholesky, Matrix};
use xai_models::{Classifier, LogisticConfig, LogisticRegression};

/// A model fitted on a training-index subset that can absorb or shed
/// single rows for much less than a refit.
pub trait IncrementalModel {
    /// Number of training points the model draws from.
    fn n_train(&self) -> usize;

    /// Discards all fitted state, returning to the empty subset.
    fn reset(&mut self);

    /// Absorbs training point `i`; the caller guarantees it is absent.
    fn add_point(&mut self, i: usize);

    /// Sheds training point `i`; the caller guarantees it is present.
    /// Returns `false` when the cheap path cannot proceed (e.g. a
    /// numerically refused downdate) — the caller then rebuilds from
    /// scratch, so the model must be left in a consistent state.
    fn remove_point(&mut self, i: usize) -> bool;

    /// Scores the model implied by the current subset on held-out data.
    /// `subset` is the current membership in the order the caller
    /// requested it — the same order a retrain-from-scratch utility would
    /// see (backends keeping their own sufficient statistics may ignore
    /// it).
    fn eval_current(&mut self, subset: &[usize]) -> f64;
}

/// Work counters for the delta engine (exposed for tests and benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// `U(S)` evaluations served.
    pub evals: usize,
    /// Rank-one additions applied on the delta path.
    pub adds: usize,
    /// Rank-one removals applied on the delta path.
    pub removes: usize,
    /// Reset-and-readd rebuilds (chosen when cheaper than the delta, or
    /// forced by a refused removal).
    pub rebuilds: usize,
}

struct EngineState<M> {
    model: M,
    /// Membership of the subset the model currently represents.
    member: Vec<bool>,
    /// The same membership as an index list (request order).
    current: Vec<usize>,
    /// Scratch marks for the requested subset.
    target: Vec<bool>,
    adds: Vec<usize>,
    removes: Vec<usize>,
    stats: IncrementalStats,
}

/// A [`Utility`] that serves subset evaluations by incrementally mutating
/// one live model (see the module docs for the delta strategy). Interior
/// mutability makes it a drop-in replacement for the retrain-from-scratch
/// utilities in every existing driver, sequential or parallel.
pub struct IncrementalUtility<M: IncrementalModel> {
    n: usize,
    state: Mutex<EngineState<M>>,
}

impl<M: IncrementalModel> IncrementalUtility<M> {
    /// Wraps a backend; the model is reset to the empty subset.
    pub fn new(mut model: M) -> Self {
        let n = model.n_train();
        model.reset();
        Self {
            n,
            state: Mutex::new(EngineState {
                model,
                member: vec![false; n],
                current: Vec::with_capacity(n),
                target: vec![false; n],
                adds: Vec::with_capacity(n),
                removes: Vec::with_capacity(n),
                stats: IncrementalStats::default(),
            }),
        }
    }

    /// Work counters since construction.
    pub fn stats(&self) -> IncrementalStats {
        self.state.lock().expect("incremental state poisoned").stats
    }

    /// Runs a closure against the backend model (e.g. to read the warm/cold
    /// fit counters of [`WarmLogisticModel`]).
    pub fn inspect<R>(&self, f: impl FnOnce(&M) -> R) -> R {
        f(&self.state.lock().expect("incremental state poisoned").model)
    }
}

impl<M: IncrementalModel> Utility for IncrementalUtility<M> {
    fn eval(&self, subset: &[usize]) -> f64 {
        let mut guard = self.state.lock().expect("incremental state poisoned");
        let EngineState { model, member, current, target, adds, removes, stats } = &mut *guard;
        stats.evals += 1;

        // Fast path: the request *extends* the previous subset by appended
        // points — the exact shape of a TMC prefix walk (and of Banzhaf's
        // paired with-point evaluation). One slice compare replaces all the
        // membership bookkeeping, and each appended point is one rank-one
        // update.
        if subset.len() >= current.len() && subset[..current.len()] == current[..] {
            for &i in &subset[current.len()..] {
                debug_assert!(i < member.len() && !member[i], "appended index must be new");
                model.add_point(i);
                member[i] = true;
                stats.adds += 1;
            }
            current.extend_from_slice(&subset[current.len()..]);
            return model.eval_current(current);
        }

        for &i in subset {
            debug_assert!(i < member.len(), "index {i} out of range");
            target[i] = true;
        }
        adds.clear();
        removes.clear();
        for &i in subset {
            if !member[i] {
                adds.push(i);
            }
        }
        for &i in current.iter() {
            if !target[i] {
                removes.push(i);
            }
        }
        for &i in subset {
            target[i] = false;
        }

        // Delta vs rebuild: a rebuild costs |S| additions from the empty
        // state, the delta costs |adds| + |removes| rank-one operations.
        let mut rebuild = adds.len() + removes.len() > subset.len();
        if !rebuild {
            for idx in 0..removes.len() {
                let i = removes[idx];
                if model.remove_point(i) {
                    member[i] = false;
                    stats.removes += 1;
                } else {
                    // Downdate refused — fall back to an exact rebuild.
                    rebuild = true;
                    break;
                }
            }
        }
        if rebuild {
            model.reset();
            member.fill(false);
            for &i in subset {
                model.add_point(i);
                member[i] = true;
            }
            stats.rebuilds += 1;
        } else {
            for &i in adds.iter() {
                model.add_point(i);
                member[i] = true;
                stats.adds += 1;
            }
        }

        current.clear();
        current.extend_from_slice(subset);
        model.eval_current(current)
    }

    fn n_train(&self) -> usize {
        self.n
    }
}

/// Shared held-out score for the ridge paths: negative test MSE of the
/// augmented linear model `ŷ = w₀ + w₁..·x` (negated so that, like every
/// utility in this crate, larger is better), computed from precomputed
/// test moments as `−(wᵀGw − 2wᵀb + yᵀy)/m` with `G = X̃ᵀX̃`, `b = X̃ᵀy`
/// over the augmented test design — `O(d²)` per score regardless of the
/// test-set size. Both the incremental and the retrain-from-scratch path
/// share this helper, so any disagreement between them is attributable to
/// the parameters alone.
struct TestMoments {
    gram: Matrix,
    xty: Vec<f64>,
    yy: f64,
    m: f64,
}

impl TestMoments {
    fn new(test: &Dataset) -> Self {
        let d = test.n_features() + 1;
        let mut design = Matrix::zeros(test.n_rows(), d);
        for r in 0..test.n_rows() {
            let row = design.row_mut(r);
            row[0] = 1.0;
            row[1..].copy_from_slice(test.row(r));
        }
        Self {
            gram: design.gram(),
            xty: design.t_matvec(test.y()),
            yy: test.y().iter().map(|v| v * v).sum(),
            m: test.n_rows() as f64,
        }
    }

    fn score(&self, w: &[f64]) -> f64 {
        let mut quad = 0.0;
        for (i, &wi) in w.iter().enumerate() {
            quad += wi * dot(self.gram.row(i), w);
        }
        -((quad - 2.0 * dot(&self.xty, w) + self.yy) / self.m)
    }
}

/// Exact incremental ridge backend: Cholesky factor of `X̃ᵀX̃ + λI` and
/// moment vector `X̃ᵀy` over the current subset's augmented rows
/// `x̃ = [1, x]`, mutated through the shared rank-one kernels. Solving for
/// the coefficients costs `O(d²)` per evaluation; adding or removing a row
/// costs `O(d²)` instead of the `O(|S|·d² + d³)` from-scratch refit.
pub struct RidgeValuationModel<'a> {
    train: &'a Dataset,
    moments: TestMoments,
    lambda: f64,
    factor: Cholesky,
    xty: Vec<f64>,
    aug: Vec<f64>,
    /// Coefficient scratch reused across solves.
    w: Vec<f64>,
}

impl<'a> RidgeValuationModel<'a> {
    /// Builds the backend (no rows absorbed yet).
    pub fn new(train: &'a Dataset, test: &'a Dataset, lambda: f64) -> Self {
        assert_eq!(train.n_features(), test.n_features(), "train/test schema mismatch");
        assert!(lambda > 0.0, "λ > 0 keeps the statistics SPD on every subset");
        let d = train.n_features() + 1;
        Self {
            train,
            moments: TestMoments::new(test),
            lambda,
            factor: Cholesky::scaled_identity(d, lambda),
            xty: vec![0.0; d],
            aug: vec![0.0; d],
            w: Vec::with_capacity(d),
        }
    }

    /// The ridge parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    fn load_aug(&mut self, i: usize) {
        self.aug[0] = 1.0;
        self.aug[1..].copy_from_slice(self.train.row(i));
    }
}

impl IncrementalModel for RidgeValuationModel<'_> {
    fn n_train(&self) -> usize {
        self.train.n_rows()
    }

    fn reset(&mut self) {
        self.factor = Cholesky::scaled_identity(self.xty.len(), self.lambda);
        self.xty.fill(0.0);
    }

    fn add_point(&mut self, i: usize) {
        self.load_aug(i);
        self.factor.rank_one_update(&self.aug);
        let y = self.train.y()[i];
        for (a, &xi) in self.xty.iter_mut().zip(&self.aug) {
            *a += y * xi;
        }
    }

    fn remove_point(&mut self, i: usize) -> bool {
        self.load_aug(i);
        if self.factor.rank_one_downdate(&self.aug).is_err() {
            // λI margin makes this unreachable in exact arithmetic; report
            // instead of corrupting the statistics.
            return false;
        }
        let y = self.train.y()[i];
        for (a, &xi) in self.xty.iter_mut().zip(&self.aug) {
            *a -= y * xi;
        }
        true
    }

    fn eval_current(&mut self, _subset: &[usize]) -> f64 {
        self.factor.solve_into(&self.xty, &mut self.w);
        self.moments.score(&self.w)
    }
}

/// Retrain-from-scratch ridge utility with the *same math* as
/// [`RidgeValuationModel`]: every evaluation materializes the augmented
/// subset design, forms `X̃ᵀX̃ + λI`, factorizes, solves, and scores. This
/// is the baseline the incremental engine is benchmarked against and
/// validated to ≤1e-8 against in `tests/incremental_equivalence.rs`.
pub struct RidgeUtility<'a> {
    train: &'a Dataset,
    moments: TestMoments,
    lambda: f64,
}

impl<'a> RidgeUtility<'a> {
    /// Builds the utility.
    pub fn new(train: &'a Dataset, test: &'a Dataset, lambda: f64) -> Self {
        assert_eq!(train.n_features(), test.n_features(), "train/test schema mismatch");
        assert!(lambda > 0.0, "λ > 0 keeps every subset solvable");
        Self { train, moments: TestMoments::new(test), lambda }
    }
}

impl Utility for RidgeUtility<'_> {
    fn eval(&self, subset: &[usize]) -> f64 {
        let d = self.train.n_features() + 1;
        let mut design = Matrix::zeros(subset.len(), d);
        let mut y = Vec::with_capacity(subset.len());
        for (r, &i) in subset.iter().enumerate() {
            let row = design.row_mut(r);
            row[0] = 1.0;
            row[1..].copy_from_slice(self.train.row(i));
            y.push(self.train.y()[i]);
        }
        let mut gram = design.gram();
        gram.add_diag_mut(self.lambda);
        let factor = Cholesky::factor(&gram).expect("ridge Gram is SPD for λ > 0");
        self.moments.score(&factor.solve(&design.t_matvec(&y)))
    }

    fn n_train(&self) -> usize {
        self.train.n_rows()
    }
}

/// Warm-start logistic backend: Newton re-fits seeded from the optimum of
/// the nearest evaluated subset. The fit either converges to the same
/// gradient tolerance a cold fit certifies — typically in 1–2 iterations —
/// or triggers the cold-refit fallback. Degenerate subsets (fewer than two
/// points, or one class) score at the majority base rate, exactly like
/// [`crate::utility::LogisticUtility`].
pub struct WarmLogisticModel<'a> {
    train: &'a Dataset,
    test: &'a Dataset,
    config: LogisticConfig,
    base: f64,
    /// Warm-start seed: the optimum of the last fitted subset.
    weights: Vec<f64>,
    gather_x: Vec<f64>,
    gather_y: Vec<f64>,
    warm_fits: usize,
    cold_refits: usize,
}

impl<'a> WarmLogisticModel<'a> {
    /// Builds the backend.
    pub fn new(train: &'a Dataset, test: &'a Dataset, config: LogisticConfig) -> Self {
        assert_eq!(train.n_features(), test.n_features(), "train/test schema mismatch");
        let pos = test.positive_rate();
        Self {
            train,
            test,
            config,
            base: pos.max(1.0 - pos),
            weights: vec![0.0; train.n_features() + 1],
            gather_x: Vec::new(),
            gather_y: Vec::new(),
            warm_fits: 0,
            cold_refits: 0,
        }
    }

    /// Warm fits that converged without falling back.
    pub fn warm_fits(&self) -> usize {
        self.warm_fits
    }

    /// Cold refits forced by a warm fit missing the gradient tolerance.
    pub fn cold_refits(&self) -> usize {
        self.cold_refits
    }
}

impl IncrementalModel for WarmLogisticModel<'_> {
    fn n_train(&self) -> usize {
        self.train.n_rows()
    }

    // The logistic state is just the warm-start seed, which deliberately
    // survives resets: the whole point is seeding from the *nearest
    // evaluated* subset, whatever the membership delta was.
    fn reset(&mut self) {}
    fn add_point(&mut self, _i: usize) {}
    fn remove_point(&mut self, _i: usize) -> bool {
        true
    }

    fn eval_current(&mut self, subset: &[usize]) -> f64 {
        if subset.len() < 2 {
            return self.base;
        }
        let d = self.train.n_features();
        self.gather_x.clear();
        self.gather_y.clear();
        let mut pos = 0usize;
        for &i in subset {
            self.gather_x.extend_from_slice(self.train.row(i));
            let yi = self.train.y()[i];
            if yi >= 0.5 {
                pos += 1;
            }
            self.gather_y.push(yi);
        }
        if pos == 0 || pos == subset.len() {
            return self.base;
        }
        let x = Matrix::from_vec(subset.len(), d, std::mem::take(&mut self.gather_x));
        let mut model = LogisticRegression::fit_warm(&x, &self.gather_y, self.config, &self.weights);
        if model.converged() {
            self.warm_fits += 1;
        } else {
            // Certified fallback: the warm path drifted past the gradient
            // tolerance budget, so pay for the cold fit.
            model = LogisticRegression::fit(&x, &self.gather_y, self.config);
            self.cold_refits += 1;
        }
        self.weights.copy_from_slice(model.weights());
        self.gather_x = x.into_vec();
        accuracy(self.test.y(), &Classifier::predict(&model, self.test.x()))
    }
}

/// Leave-one-out through the incremental engine: one full fit, then each
/// `U(D ∖ {i})` costs one downdate (plus the re-add restoring point
/// `i − 1`) instead of a full retrain — `O(n·d²)` total for the ridge
/// backend versus `O(n²·d²)` for the retraining baseline.
pub fn leave_one_out_incremental<M: IncrementalModel>(
    utility: &IncrementalUtility<M>,
) -> DataAttribution {
    leave_one_out(utility)
}

/// Fallible twin of [`leave_one_out_incremental`]: delegates to
/// [`try_leave_one_out`], so engine panics and non-finite scores surface
/// as typed errors.
pub fn try_leave_one_out_incremental<M: IncrementalModel>(
    utility: &IncrementalUtility<M>,
) -> XaiResult<DataAttribution> {
    try_leave_one_out(utility)
}

/// TMC data Shapley through the incremental engine: each permutation walk
/// grows its prefix by one rank-one update per step (`n` updates per
/// permutation instead of `n` retrains); the jump to the next permutation
/// is a single rebuild.
pub fn tmc_shapley_incremental<M: IncrementalModel>(
    utility: &IncrementalUtility<M>,
    config: TmcConfig,
) -> TmcResult {
    tmc_shapley(utility, config)
}

/// Fallible twin of [`tmc_shapley_incremental`]: delegates to
/// [`try_tmc_shapley`], so engine panics and non-finite scores surface as
/// typed errors.
pub fn try_tmc_shapley_incremental<M: IncrementalModel>(
    utility: &IncrementalUtility<M>,
    config: TmcConfig,
) -> XaiResult<TmcResult> {
    try_tmc_shapley(utility, config)
}

/// Monte-Carlo data Banzhaf through the incremental engine. Coalition
/// draws are random rather than nested, so the engine serves each draw by
/// the nearest-evaluated-subset delta; for ≤ 64 points a [`CachedUtility`]
/// memo is layered on top (the PR-2 pattern) so revisited coalitions skip
/// even the delta.
pub fn data_banzhaf_incremental<M: IncrementalModel>(
    utility: &IncrementalUtility<M>,
    config: BanzhafConfig,
) -> DataAttribution {
    if utility.n_train() <= 64 {
        let cached = CachedUtility::new(utility);
        data_banzhaf(&cached, config)
    } else {
        data_banzhaf(utility, config)
    }
}

/// Fallible twin of [`data_banzhaf_incremental`]: same memo layering,
/// delegating to [`try_data_banzhaf`] so engine panics and non-finite
/// scores surface as typed errors.
pub fn try_data_banzhaf_incremental<M: IncrementalModel>(
    utility: &IncrementalUtility<M>,
    config: BanzhafConfig,
) -> XaiResult<DataAttribution> {
    if utility.n_train() <= 64 {
        let cached = CachedUtility::new(utility);
        try_data_banzhaf(&cached, config)
    } else {
        try_data_banzhaf(utility, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::LogisticUtility;
    use xai_data::synth::linear_gaussian;

    fn ridge_pair(n: usize) -> (Dataset, Dataset) {
        let train = linear_gaussian(n, &[2.0, -1.0, 0.5], 0.0, 41);
        let test = linear_gaussian(80, &[2.0, -1.0, 0.5], 0.0, 42);
        (train, test)
    }

    #[test]
    fn incremental_ridge_matches_scratch_on_arbitrary_subset_sequences() {
        let (train, test) = ridge_pair(30);
        let scratch = RidgeUtility::new(&train, &test, 1e-3);
        let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, 1e-3));
        let subsets: Vec<Vec<usize>> = vec![
            (0..30).collect(),
            vec![],
            vec![3],
            vec![3, 7, 11, 29],
            (0..15).collect(),
            (5..30).collect(),
            vec![0, 29],
            (0..30).collect(),
        ];
        for s in &subsets {
            let a = scratch.eval(s);
            let b = inc.eval(s);
            assert!((a - b).abs() <= 1e-8, "subset {s:?}: {a} vs {b}");
        }
        assert!(inc.stats().evals == subsets.len());
    }

    #[test]
    fn tmc_walks_use_one_update_per_prefix_step() {
        let (train, test) = ridge_pair(20);
        let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, 1e-2));
        let cfg = TmcConfig { permutations: 10, truncation_tolerance: 0.0, seed: 5 };
        let result = tmc_shapley_incremental(&inc, cfg);
        let stats = inc.stats();
        // Full walks: every eval is served by deltas or the one rebuild at
        // each permutation start (plus the initial full/empty evals).
        assert_eq!(stats.evals, result.utility_calls);
        assert!(
            stats.rebuilds <= cfg.permutations + 2,
            "each permutation may rebuild once: {stats:?}"
        );
        assert!(
            stats.adds >= cfg.permutations * (train.n_rows() - 1),
            "prefix growth must ride rank-one updates: {stats:?}"
        );
        // And the values agree with the retrain-from-scratch estimator.
        let scratch = RidgeUtility::new(&train, &test, 1e-2);
        let baseline = tmc_shapley(&scratch, cfg);
        for (a, b) in result.attribution.values.iter().zip(&baseline.attribution.values) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn loo_incremental_matches_retraining_loo() {
        let (train, test) = ridge_pair(25);
        let scratch = RidgeUtility::new(&train, &test, 1e-3);
        let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, 1e-3));
        let a = leave_one_out(&scratch);
        let b = leave_one_out_incremental(&inc);
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
        let stats = inc.stats();
        // Fit-once (n adds) + per-point downdate/re-add; no rebuilds needed
        // after the initial full fit.
        assert!(stats.removes >= train.n_rows(), "LOO must ride downdates: {stats:?}");
        assert!(stats.rebuilds <= 1, "LOO never needs a mid-run rebuild: {stats:?}");
    }

    #[test]
    fn banzhaf_incremental_matches_scratch() {
        let (train, test) = ridge_pair(12);
        let scratch = RidgeUtility::new(&train, &test, 1e-2);
        let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, 1e-2));
        let cfg = BanzhafConfig { samples_per_point: 20, seed: 3 };
        let a = data_banzhaf(&scratch, cfg);
        let b = data_banzhaf_incremental(&inc, cfg);
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn warm_logistic_matches_scratch_utility_and_stays_warm() {
        let train = linear_gaussian(40, &[2.0, -1.0], 0.0, 51);
        let test = linear_gaussian(120, &[2.0, -1.0], 0.0, 52);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        let scratch = LogisticUtility::new(&train, &test, config);
        let inc = IncrementalUtility::new(WarmLogisticModel::new(&train, &test, config));
        let subsets: Vec<Vec<usize>> = vec![
            (0..40).collect(),
            (0..39).collect(),
            (1..40).collect(),
            vec![],
            vec![5],
            (0..20).collect(),
            (0..21).collect(),
        ];
        for s in &subsets {
            let a = scratch.eval(s);
            let b = inc.eval(s);
            assert!(
                (a - b).abs() < 1e-9,
                "subset of size {}: scratch {a} vs warm {b}",
                s.len()
            );
        }
        let (warm, cold) = inc.inspect(|m| (m.warm_fits(), m.cold_refits()));
        assert!(warm >= 4, "warm path must carry the load: warm={warm} cold={cold}");
    }

    #[test]
    fn refused_downdate_forces_an_exact_rebuild() {
        struct Fragile {
            n: usize,
            members: Vec<bool>,
            rebuilt: usize,
        }
        impl IncrementalModel for Fragile {
            fn n_train(&self) -> usize {
                self.n
            }
            fn reset(&mut self) {
                self.members.fill(false);
                self.rebuilt += 1;
            }
            fn add_point(&mut self, i: usize) {
                self.members[i] = true;
            }
            fn remove_point(&mut self, _i: usize) -> bool {
                false // always refuse, like a near-singular downdate
            }
            fn eval_current(&mut self, subset: &[usize]) -> f64 {
                assert_eq!(
                    subset.iter().filter(|&&i| self.members[i]).count(),
                    subset.len(),
                    "engine must hand eval a consistent state"
                );
                subset.len() as f64
            }
        }
        let inc = IncrementalUtility::new(Fragile { n: 6, members: vec![false; 6], rebuilt: 0 });
        assert_eq!(inc.eval(&[0, 1, 2, 3, 4, 5]), 6.0);
        // Dropping one point: the delta path is chosen, the removal is
        // refused, and the engine must still serve the exact subset.
        assert_eq!(inc.eval(&[0, 1, 2, 3, 4]), 5.0);
        let stats = inc.stats();
        // The first eval grows from empty on the delta path (6 adds); the
        // second picks the delta, gets refused, and must rebuild.
        assert_eq!(stats.rebuilds, 1, "refusal must trigger a rebuild: {stats:?}");
        assert_eq!(stats.adds, 6);
        assert_eq!(stats.removes, 0);
    }
}
