//! Group influence: first-order additivity vs higher-order estimates
//! (Basu, You & Feizi, §2.3.2 \[8\]).
//!
//! The tutorial: *"applying first-order approximations to a group of data
//! points can be inaccurate because they do not capture the correlations
//! among data points in the group."* We implement both estimators:
//!
//! - **first-order**: sum the individual influence directions —
//!   `Δw ≈ (1/n) H⁻¹ Σ_{i∈U} ∇ℓ_i` (ignores interactions);
//! - **second-order (Newton step)**: one Newton step of the *reduced*
//!   objective from the full-data optimum —
//!   `Δw = −H_{D∖U}⁻¹ ∇L_{D∖U}(ŵ)` — which captures the group's effect on
//!   the curvature and is exact up to third-order terms.
//!
//! Experiment E15 reproduces the paper's result shape: first-order error
//! grows with group size, the curvature-aware estimate stays accurate.

use xai_data::Dataset;
use xai_linalg::{norm2, vsub, Cholesky};
use xai_models::{LogisticConfig, LogisticRegression};

/// Predicted parameter change from removing `group`, first-order
/// (additive individual influences).
pub fn group_influence_first_order(
    model: &LogisticRegression,
    train: &Dataset,
    group: &[usize],
) -> Vec<f64> {
    let d = model.weights().len();
    let mut g = vec![0.0; d];
    for &i in group {
        let gi = model.example_grad(train.row(i), train.y()[i]);
        for (a, b) in g.iter_mut().zip(&gi) {
            *a += b;
        }
    }
    let h = model.hessian(train.x(), train.y());
    let mut delta = Cholesky::factor(&h).expect("PD Hessian").solve(&g);
    let n = train.n_rows() as f64;
    for v in delta.iter_mut() {
        *v /= n;
    }
    delta
}

/// Predicted parameter change from removing `group`, second-order:
/// a full Newton step of the reduced objective evaluated at the current
/// optimum (uses the *reduced* Hessian, capturing group–curvature
/// interaction).
pub fn group_influence_newton(
    model: &LogisticRegression,
    train: &Dataset,
    group: &[usize],
) -> Vec<f64> {
    let keep: Vec<usize> = {
        let mut removed = vec![false; train.n_rows()];
        for &i in group {
            removed[i] = true;
        }
        (0..train.n_rows()).filter(|&i| !removed[i]).collect()
    };
    assert!(!keep.is_empty(), "cannot remove the whole training set");
    let reduced = train.subset(&keep);
    let d = model.weights().len();
    // Gradient of the reduced objective at the current parameters.
    let mut g = vec![0.0; d];
    for i in 0..reduced.n_rows() {
        let gi = model.example_grad(reduced.row(i), reduced.y()[i]);
        for (a, b) in g.iter_mut().zip(&gi) {
            *a += b;
        }
    }
    let m = reduced.n_rows() as f64;
    for (k, v) in g.iter_mut().enumerate() {
        *v = *v / m + model.l2() * model.weights()[k];
    }
    let h = model.hessian(reduced.x(), reduced.y());
    let step = Cholesky::factor(&h).expect("PD reduced Hessian").solve(&g);
    step.into_iter().map(|s| -s).collect()
}

/// Ground-truth parameter change: full retraining without the group.
pub fn group_removal_ground_truth(
    model: &LogisticRegression,
    train: &Dataset,
    group: &[usize],
    config: LogisticConfig,
) -> Vec<f64> {
    let reduced = train.without(group);
    let refit = LogisticRegression::fit(reduced.x(), reduced.y(), config);
    vsub(refit.weights(), model.weights())
}

/// Relative error of an estimate against the ground truth.
pub fn relative_error(estimate: &[f64], truth: &[f64]) -> f64 {
    norm2(&vsub(estimate, truth)) / norm2(truth).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::linear_gaussian;

    fn setup() -> (LogisticRegression, Dataset, LogisticConfig) {
        let train = linear_gaussian(300, &[2.0, -1.0, 0.5], 0.0, 81);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        let model = LogisticRegression::fit(train.x(), train.y(), config);
        (model, train, config)
    }

    #[test]
    fn both_estimates_accurate_for_single_points() {
        let (model, train, config) = setup();
        let group = [5usize];
        let truth = group_removal_ground_truth(&model, &train, &group, config);
        let first = group_influence_first_order(&model, &train, &group);
        let newton = group_influence_newton(&model, &train, &group);
        assert!(relative_error(&first, &truth) < 0.3, "first-order {}", relative_error(&first, &truth));
        assert!(relative_error(&newton, &truth) < 0.05, "newton {}", relative_error(&newton, &truth));
    }

    #[test]
    fn newton_beats_first_order_for_large_coherent_groups() {
        let (model, train, config) = setup();
        // A coherent group: the 60 highest-margin positive examples
        // (correlated by construction — all pull the same way).
        let mut idx: Vec<usize> = (0..train.n_rows()).filter(|&i| train.y()[i] >= 0.5).collect();
        idx.sort_by(|&a, &b| {
            model
                .margin(train.row(b))
                .partial_cmp(&model.margin(train.row(a)))
                .unwrap()
        });
        let group: Vec<usize> = idx.into_iter().take(60).collect();
        let truth = group_removal_ground_truth(&model, &train, &group, config);
        let first = group_influence_first_order(&model, &train, &group);
        let newton = group_influence_newton(&model, &train, &group);
        let e_first = relative_error(&first, &truth);
        let e_newton = relative_error(&newton, &truth);
        assert!(
            e_newton < e_first,
            "curvature-aware must beat additive: {e_newton} vs {e_first}"
        );
        assert!(e_newton < 0.2, "newton error {e_newton}");
    }

    #[test]
    fn first_order_error_grows_with_group_size() {
        let (model, train, config) = setup();
        let sizes = [5usize, 40, 120];
        let mut errors = Vec::new();
        for &s in &sizes {
            let group: Vec<usize> = (0..s).collect();
            let truth = group_removal_ground_truth(&model, &train, &group, config);
            let first = group_influence_first_order(&model, &train, &group);
            errors.push(relative_error(&first, &truth));
        }
        assert!(
            errors[2] > errors[0],
            "error must grow with group size: {errors:?}"
        );
    }
}
