//! Influence functions for parametric models
//! (Koh & Liang, §2.3.2 \[39\]; Cook & Weisberg \[11\]).
//!
//! For a model with a twice-differentiable loss at its optimum `ŵ`,
//! up-weighting training point `z` by `ε` moves the parameters by
//! `−H⁻¹ ∇ℓ(z, ŵ) · ε`; setting `ε = −1/n` approximates removal **without
//! retraining**. The influence on a test point's loss is then a single
//! inner product through the Hessian inverse. Both a direct (Cholesky)
//! and a matrix-free conjugate-gradient path are provided, matching the
//! paper's two regimes.

use xai_core::DataAttribution;
use xai_data::Dataset;
use xai_linalg::{conjugate_gradient, Cholesky};
use xai_models::LogisticRegression;

/// How to apply the inverse Hessian.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Solver {
    /// Factor the explicit Hessian once (exact; `O(d³)`).
    Cholesky,
    /// Matrix-free conjugate gradients on Hessian–vector products
    /// (the paper's approach for large models).
    ConjugateGradient,
}

/// Influence of every training point on the *total test loss*:
/// `I_i = −(1/n) · g_testᵀ H⁻¹ ∇ℓ_i`, reported so that **positive values
/// mean "removing this point would increase test loss"** (helpful points
/// score high, harmful points negative) — aligned with valuation methods.
pub fn influence_on_test_loss(
    model: &LogisticRegression,
    train: &Dataset,
    test: &Dataset,
    solver: Solver,
) -> DataAttribution {
    let n = train.n_rows() as f64;
    // Aggregate test-loss gradient.
    let d = model.weights().len();
    let mut g_test = vec![0.0; d];
    for t in 0..test.n_rows() {
        let g = model.example_grad(test.row(t), test.y()[t]);
        for (a, b) in g_test.iter_mut().zip(&g) {
            *a += b / test.n_rows() as f64;
        }
    }
    // s = H⁻¹ g_test (one solve, reused for every training point).
    let s = match solver {
        Solver::Cholesky => {
            let h = model.hessian(train.x(), train.y());
            Cholesky::factor(&h)
                .expect("logistic Hessian is PD for l2 > 0")
                .solve(&g_test)
        }
        Solver::ConjugateGradient => {
            let res = conjugate_gradient(
                |v| model.hessian_vec_product(train.x(), v),
                &g_test,
                1e-10,
                500,
            );
            res.x
        }
    };
    let values = (0..train.n_rows())
        .map(|i| {
            let gi = model.example_grad(train.row(i), train.y()[i]);
            xai_linalg::dot(&s, &gi) / n
        })
        .collect();
    DataAttribution { values, measure: "influence on test loss (positive = helpful)".into() }
}

/// Parameter-space influence of removing point `i`:
/// `Δw ≈ (1/n) H⁻¹ ∇ℓ_i` (the first-order removal estimate).
pub fn removal_parameter_change(
    model: &LogisticRegression,
    train: &Dataset,
    i: usize,
) -> Vec<f64> {
    let h = model.hessian(train.x(), train.y());
    let gi = model.example_grad(train.row(i), train.y()[i]);
    let mut delta = Cholesky::factor(&h)
        .expect("PD Hessian")
        .solve(&gi);
    let n = train.n_rows() as f64;
    for v in delta.iter_mut() {
        *v /= n;
    }
    delta
}

/// Ground truth for validation: actual leave-one-out retraining change in
/// total test loss, `L_test(ŵ₋ᵢ) − L_test(ŵ)`, for each training point.
/// Costs `n` retrainings (E14 measures the speedup of avoiding this).
pub fn retraining_ground_truth(
    model: &LogisticRegression,
    train: &Dataset,
    test: &Dataset,
    config: xai_models::LogisticConfig,
) -> DataAttribution {
    let test_loss = |m: &LogisticRegression| -> f64 {
        (0..test.n_rows())
            .map(|t| m.example_loss(test.row(t), test.y()[t]))
            .sum::<f64>()
            / test.n_rows() as f64
    };
    let base = test_loss(model);
    let values = (0..train.n_rows())
        .map(|i| {
            let reduced = train.without(&[i]);
            let refit = LogisticRegression::fit(reduced.x(), reduced.y(), config);
            test_loss(&refit) - base
        })
        .collect();
    DataAttribution { values, measure: "LOO retraining Δ test loss".into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::linear_gaussian;
    use xai_linalg::stats::{pearson, spearman};
    use xai_models::LogisticConfig;

    fn setup(n: usize) -> (LogisticRegression, Dataset, Dataset, LogisticConfig) {
        let train = linear_gaussian(n, &[2.0, -1.0], 0.2, 61);
        let test = linear_gaussian(150, &[2.0, -1.0], 0.2, 62);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        let model = LogisticRegression::fit(train.x(), train.y(), config);
        (model, train, test, config)
    }

    #[test]
    fn influence_correlates_with_retraining_ground_truth() {
        let (model, train, test, config) = setup(80);
        let inf = influence_on_test_loss(&model, &train, &test, Solver::Cholesky);
        let truth = retraining_ground_truth(&model, &train, &test, config);
        // Koh & Liang's headline plot: strong correlation between the
        // first-order estimate and actual retraining.
        let r = pearson(&inf.values, &truth.values);
        let rho = spearman(&inf.values, &truth.values);
        assert!(r > 0.85, "pearson {r}");
        assert!(rho > 0.8, "spearman {rho}");
    }

    #[test]
    fn cg_matches_cholesky() {
        let (model, train, test, _) = setup(100);
        let a = influence_on_test_loss(&model, &train, &test, Solver::Cholesky);
        let b = influence_on_test_loss(&model, &train, &test, Solver::ConjugateGradient);
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn parameter_change_predicts_refit_direction() {
        let (model, train, _, config) = setup(60);
        // Compare the predicted parameter change with actual refit for a
        // handful of points.
        for i in [0usize, 7, 23] {
            let predicted = removal_parameter_change(&model, &train, i);
            let reduced = train.without(&[i]);
            let refit = LogisticRegression::fit(reduced.x(), reduced.y(), config);
            let actual: Vec<f64> =
                refit.weights().iter().zip(model.weights()).map(|(a, b)| a - b).collect();
            let r = pearson(&predicted, &actual);
            assert!(r > 0.9, "point {i}: direction correlation {r}");
            // Magnitudes agree to first order.
            let ratio = xai_linalg::norm2(&predicted) / xai_linalg::norm2(&actual).max(1e-12);
            assert!((0.5..2.0).contains(&ratio), "point {i}: magnitude ratio {ratio}");
        }
    }

    #[test]
    fn mislabeled_points_are_flagged_harmful() {
        let mut train = linear_gaussian(120, &[3.0, 0.0], 0.0, 71);
        let test = linear_gaussian(200, &[3.0, 0.0], 0.0, 72);
        let guilty = xai_data::inject_label_noise(&mut train, 0.1, 5);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        let model = LogisticRegression::fit(train.x(), train.y(), config);
        let inf = influence_on_test_loss(&model, &train, &test, Solver::Cholesky);
        let p = inf.precision_at_k(&guilty, guilty.len());
        // Random guessing scores ~0.1 here (10% corruption rate).
        assert!(p > 0.45, "precision@k {p}");
    }
}
