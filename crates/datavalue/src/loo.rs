//! Leave-one-out valuation and exact retraining-based Data Shapley —
//! the ground truths the fast methods are judged against (§2.3).
//!
//! The tutorial: *"The naïve way of computing the influence of a data point
//! is by removing it, retraining the ML model … computationally prohibitive
//! when there are numerous data points."* These are exactly those naïve
//! computations, kept because every approximation in this crate is
//! validated against them (experiments E12–E14).

use crate::utility::{check_finite_values, Utility};
use xai_core::{catch_model, DataAttribution, XaiError, XaiResult};
use xai_rand::parallel::{par_map_chunks, try_par_map_chunks};

/// Points handled per executor task in [`leave_one_out_parallel`]. Fixed
/// (never derived from the worker count) so the chunk grid — and hence the
/// result — is worker-invariant.
pub(crate) const POINTS_PER_CHUNK: usize = 8;

/// One executor chunk of leave-one-out values: walks the in-place hole
/// buffer over `range`, exactly like the corresponding slice of the
/// sequential pass. The single source of the chunk body — the parallel
/// twin and the shard layer both call this, which is what makes sharded
/// partials merge bit-identically. Draws no randomness.
pub(crate) fn loo_chunk_values(
    utility: &dyn Utility,
    full: f64,
    range: std::ops::Range<usize>,
) -> Vec<f64> {
    let n = utility.n_train();
    let mut without: Vec<usize> = (0..n).filter(|&j| j != range.start).collect();
    let mut values = Vec::with_capacity(range.len());
    for i in range {
        values.push(full - utility.eval(&without));
        if i + 1 < n {
            advance_hole(&mut without, i);
        }
    }
    values
}

/// Walks `without` from `D ∖ {i}` to `D ∖ {i + 1}` in place: position `i`
/// holds `i + 1`, and overwriting it with `i` shifts the hole right while
/// keeping the buffer sorted.
fn advance_hole(without: &mut [usize], i: usize) {
    debug_assert_eq!(without[i], i + 1);
    without[i] = i;
}

/// Leave-one-out values: `v_i = U(D) − U(D ∖ {i})`. Costs `n + 1` model
/// retrainings. All `n` subset evaluations share **one** scratch buffer:
/// `D ∖ {i}` differs from `D ∖ {i + 1}` in a single slot, so the buffer is
/// mutated in place instead of reallocated per point.
pub fn leave_one_out(utility: &dyn Utility) -> DataAttribution {
    let n = utility.n_train();
    let all: Vec<usize> = (0..n).collect();
    let full = utility.eval(&all);
    let mut without: Vec<usize> = (1..n).collect();
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        values.push(full - utility.eval(&without));
        if i + 1 < n {
            advance_hole(&mut without, i);
        }
    }
    DataAttribution { values, measure: "leave-one-out utility change".into() }
}

/// Fallible twin of [`leave_one_out`]: a utility that panics (a retrain
/// blowing up) or returns non-finite scores yields
/// [`XaiError::ModelFault`] instead of unwinding or leaking NaN values.
pub fn try_leave_one_out(utility: &dyn Utility) -> XaiResult<DataAttribution> {
    let att = catch_model("leave-one-out retraining", || leave_one_out(utility))?;
    check_finite_values(&att.values, "leave-one-out")?;
    Ok(att)
}

/// [`leave_one_out`] with the per-point retrainings spread across
/// `workers` threads. Points are split into fixed-size chunks; each chunk
/// walks its own in-place scratch buffer exactly like the sequential path
/// and chunk results are concatenated in order, so the output is
/// bit-identical to [`leave_one_out`] for every worker count.
#[deprecated(note = "superseded by the unified explainer layer: use LooMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn leave_one_out_parallel<U: Utility + Sync>(utility: &U, workers: usize) -> DataAttribution {
    assert!(workers >= 1, "need at least one worker");
    let n = utility.n_train();
    let all: Vec<usize> = (0..n).collect();
    let full = utility.eval(&all);
    // LOO draws no randomness; the executor is used purely for fork-join.
    let chunks = par_map_chunks(n, POINTS_PER_CHUNK, 0, workers, |_chunk, range, _rng| {
        loo_chunk_values(utility, full, range)
    });
    let values: Vec<f64> = chunks.into_iter().flatten().collect();
    DataAttribution { values, measure: "leave-one-out utility change".into() }
}

/// Fallible twin of [`leave_one_out_parallel`]: a panic inside a worker
/// chunk yields [`XaiError::WorkerPanic`] naming the lowest-indexed
/// panicking chunk (worker-count invariant); non-finite scores yield
/// [`XaiError::ModelFault`].
#[deprecated(note = "superseded by the unified explainer layer: use LooMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_leave_one_out_parallel<U: Utility + Sync>(
    utility: &U,
    workers: usize,
) -> XaiResult<DataAttribution> {
    assert!(workers >= 1, "need at least one worker");
    let n = utility.n_train();
    let all: Vec<usize> = (0..n).collect();
    let full = catch_model("leave-one-out full-set retraining", || utility.eval(&all))?;
    let chunks = try_par_map_chunks(n, POINTS_PER_CHUNK, 0, workers, |_chunk, range, _rng| {
        loo_chunk_values(utility, full, range)
    })
    .map_err(XaiError::from)?;
    let values: Vec<f64> = chunks.into_iter().flatten().collect();
    check_finite_values(&values, "leave-one-out")?;
    Ok(DataAttribution { values, measure: "leave-one-out utility change".into() })
}

/// Exact Data Shapley by full subset enumeration — `O(2^n)` retrainings,
/// feasible only for tiny datasets; the E13 baseline.
///
/// # Panics
/// Panics for more than 16 training points.
pub fn exact_data_shapley(utility: &dyn Utility) -> DataAttribution {
    let n = utility.n_train();
    assert!(n <= 16, "exact data Shapley retrains 2^{n} models");
    // Evaluate every subset once.
    let size = 1usize << n;
    let mut table = Vec::with_capacity(size);
    let mut buf: Vec<usize> = Vec::with_capacity(n);
    for mask in 0..size {
        buf.clear();
        for i in 0..n {
            if mask & (1 << i) != 0 {
                buf.push(i);
            }
        }
        table.push(utility.eval(&buf));
    }
    let values = xai_shapley::shapley_from_table(n, &table);
    DataAttribution { values, measure: "exact data Shapley".into() }
}

#[cfg(test)]
#[allow(deprecated)] // the twins stay under test until removal
mod tests {
    use super::*;
    use crate::utility::FnUtility;

    #[test]
    fn loo_detects_the_only_valuable_point() {
        // Utility: 1 if point 2 present, else 0.
        let u = FnUtility::new(4, |s: &[usize]| f64::from(s.contains(&2)));
        let loo = leave_one_out(&u);
        assert_eq!(loo.values, vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(loo.ranking_desc()[0], 2);
    }

    #[test]
    fn loo_scratch_buffer_always_holds_the_exact_complement() {
        // The in-place hole walk must hand the utility a sorted D ∖ {i}
        // on every call, for every n (including n = 1).
        for n in 1..12usize {
            let u = FnUtility::new(n, move |s: &[usize]| {
                if s.len() == n {
                    return 0.0; // the full-set call
                }
                assert_eq!(s.len(), n - 1, "complement has n-1 points");
                assert!(s.windows(2).all(|w| w[0] < w[1]), "must stay sorted");
                let missing: usize = (0..n).sum::<usize>() - s.iter().sum::<usize>();
                -(missing as f64)
            });
            let loo = leave_one_out(&u);
            for (i, v) in loo.values.iter().enumerate() {
                assert_eq!(*v, i as f64, "n={n}: wrong complement for point {i}");
            }
        }
    }

    #[test]
    fn parallel_loo_is_bit_identical_across_worker_counts() {
        let u = FnUtility::new(21, |s: &[usize]| {
            s.iter().map(|&i| ((i * i) as f64).sqrt()).sum::<f64>().sin()
        });
        let seq = leave_one_out(&u);
        for workers in [1, 2, 4, 7] {
            let par = leave_one_out_parallel(&u, workers);
            assert_eq!(seq.values, par.values, "workers={workers} diverged");
        }
    }

    #[test]
    fn exact_shapley_splits_redundant_credit_loo_misses_it() {
        // Points 0 and 1 are perfect substitutes; LOO gives both zero
        // (removing either alone changes nothing), Shapley gives each half
        // the credit — the canonical argument for Shapley-based valuation.
        let u = FnUtility::new(3, |s: &[usize]| f64::from(s.contains(&0) || s.contains(&1)));
        let loo = leave_one_out(&u);
        assert_eq!(loo.values[0], 0.0);
        assert_eq!(loo.values[1], 0.0);
        let shap = exact_data_shapley(&u);
        assert!((shap.values[0] - 0.5).abs() < 1e-12);
        assert!((shap.values[1] - 0.5).abs() < 1e-12);
        assert!(shap.values[2].abs() < 1e-12);
    }

    #[test]
    fn exact_shapley_efficiency() {
        let u = FnUtility::new(5, |s: &[usize]| (s.len() as f64).sqrt() + f64::from(s.contains(&4)));
        let shap = exact_data_shapley(&u);
        let total: f64 = shap.values.iter().sum();
        let all: Vec<usize> = (0..5).collect();
        assert!((total - (u.eval(&all) - u.eval(&[]))).abs() < 1e-9);
    }
}
