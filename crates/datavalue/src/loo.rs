//! Leave-one-out valuation and exact retraining-based Data Shapley —
//! the ground truths the fast methods are judged against (§2.3).
//!
//! The tutorial: *"The naïve way of computing the influence of a data point
//! is by removing it, retraining the ML model … computationally prohibitive
//! when there are numerous data points."* These are exactly those naïve
//! computations, kept because every approximation in this crate is
//! validated against them (experiments E12–E14).

use crate::utility::Utility;
use xai_core::DataAttribution;

/// Leave-one-out values: `v_i = U(D) − U(D ∖ {i})`. Costs `n + 1` model
/// retrainings.
pub fn leave_one_out(utility: &dyn Utility) -> DataAttribution {
    let n = utility.n_train();
    let all: Vec<usize> = (0..n).collect();
    let full = utility.eval(&all);
    let values = (0..n)
        .map(|i| {
            let without: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            full - utility.eval(&without)
        })
        .collect();
    DataAttribution { values, measure: "leave-one-out utility change".into() }
}

/// Exact Data Shapley by full subset enumeration — `O(2^n)` retrainings,
/// feasible only for tiny datasets; the E13 baseline.
///
/// # Panics
/// Panics for more than 16 training points.
pub fn exact_data_shapley(utility: &dyn Utility) -> DataAttribution {
    let n = utility.n_train();
    assert!(n <= 16, "exact data Shapley retrains 2^{n} models");
    // Evaluate every subset once.
    let size = 1usize << n;
    let mut table = Vec::with_capacity(size);
    let mut buf: Vec<usize> = Vec::with_capacity(n);
    for mask in 0..size {
        buf.clear();
        for i in 0..n {
            if mask & (1 << i) != 0 {
                buf.push(i);
            }
        }
        table.push(utility.eval(&buf));
    }
    let values = xai_shapley::shapley_from_table(n, &table);
    DataAttribution { values, measure: "exact data Shapley".into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::FnUtility;

    #[test]
    fn loo_detects_the_only_valuable_point() {
        // Utility: 1 if point 2 present, else 0.
        let u = FnUtility::new(4, |s: &[usize]| f64::from(s.contains(&2)));
        let loo = leave_one_out(&u);
        assert_eq!(loo.values, vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(loo.ranking_desc()[0], 2);
    }

    #[test]
    fn exact_shapley_splits_redundant_credit_loo_misses_it() {
        // Points 0 and 1 are perfect substitutes; LOO gives both zero
        // (removing either alone changes nothing), Shapley gives each half
        // the credit — the canonical argument for Shapley-based valuation.
        let u = FnUtility::new(3, |s: &[usize]| f64::from(s.contains(&0) || s.contains(&1)));
        let loo = leave_one_out(&u);
        assert_eq!(loo.values[0], 0.0);
        assert_eq!(loo.values[1], 0.0);
        let shap = exact_data_shapley(&u);
        assert!((shap.values[0] - 0.5).abs() < 1e-12);
        assert!((shap.values[1] - 0.5).abs() < 1e-12);
        assert!(shap.values[2].abs() < 1e-12);
    }

    #[test]
    fn exact_shapley_efficiency() {
        let u = FnUtility::new(5, |s: &[usize]| (s.len() as f64).sqrt() + f64::from(s.contains(&4)));
        let shap = exact_data_shapley(&u);
        let total: f64 = shap.values.iter().sum();
        let all: Vec<usize> = (0..5).collect();
        assert!((total - (u.eval(&all) - u.eval(&[]))).abs() < 1e-9);
    }
}
