//! Utility functions for data valuation (§2.3.1).
//!
//! Every valuation method in this crate scores training points against a
//! **utility**: `U(S)` = performance of the model trained on subset `S` of
//! the training data, measured on held-out data. The utility is a plain
//! closure over sorted index slices, so methods are generic over learner
//! and metric — exactly the "specific to the learning algorithm \[and\] the
//! performance metric" dependence the tutorial highlights.

use xai_data::metrics::accuracy;
use xai_data::Dataset;
use xai_linalg::Matrix;
use xai_models::{Classifier, Knn, LogisticConfig, LogisticRegression};

/// Rejects non-finite valuation results: the utility (a retrained model's
/// test score) produced them, so they map to
/// [`xai_core::XaiError::ModelFault`].
pub(crate) fn check_finite_values(values: &[f64], what: &str) -> xai_core::XaiResult<()> {
    if let Some(i) = values.iter().position(|v| !v.is_finite()) {
        return Err(xai_core::XaiError::ModelFault {
            context: format!("{what}: point {i} valued {}", values[i]),
        });
    }
    Ok(())
}

/// A subset utility: maps training-index subsets to a test score.
///
/// The trait itself now lives in the unified explainer layer
/// (`xai_core::explainer`) so `ExplainRequest` can carry a utility
/// without a crate cycle; this re-export keeps every existing
/// `xai_datavalue::Utility` caller working unchanged.
pub use xai_core::explainer::Utility;

/// Utility backed by an arbitrary closure.
pub struct FnUtility<F: Fn(&[usize]) -> f64> {
    f: F,
    n: usize,
}

impl<F: Fn(&[usize]) -> f64> FnUtility<F> {
    /// Wraps a closure with the training-set size.
    pub fn new(n: usize, f: F) -> Self {
        Self { f, n }
    }
}

impl<F: Fn(&[usize]) -> f64> Utility for FnUtility<F> {
    fn eval(&self, subset: &[usize]) -> f64 {
        (self.f)(subset)
    }
    fn n_train(&self) -> usize {
        self.n
    }
}

/// Logistic-regression test-accuracy utility. Degenerate subsets (one
/// class or empty) score at the majority-class base rate, following
/// Ghorbani & Zou's convention that `V(∅)` is the performance of random
/// guessing.
pub struct LogisticUtility<'a> {
    train: &'a Dataset,
    test: &'a Dataset,
    config: LogisticConfig,
    base: f64,
    /// Row-gather buffers reused across evaluations so that scoring a
    /// subset does not allocate a fresh design matrix every time.
    scratch: std::sync::Mutex<GatherScratch>,
}

#[derive(Default)]
struct GatherScratch {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl<'a> LogisticUtility<'a> {
    /// Builds the utility.
    pub fn new(train: &'a Dataset, test: &'a Dataset, config: LogisticConfig) -> Self {
        let pos = test.positive_rate();
        Self {
            train,
            test,
            config,
            base: pos.max(1.0 - pos),
            scratch: std::sync::Mutex::new(GatherScratch::default()),
        }
    }

    /// The degenerate-subset score.
    pub fn base_score(&self) -> f64 {
        self.base
    }
}

impl Utility for LogisticUtility<'_> {
    fn eval(&self, subset: &[usize]) -> f64 {
        if subset.len() < 2 {
            return self.base;
        }
        // Reuse the shared gather scratch when it is free; under parallel
        // drivers a contended evaluation falls back to a private buffer so
        // evaluations never serialize on the lock.
        let mut fallback = GatherScratch::default();
        let mut guard = self.scratch.try_lock().ok();
        let GatherScratch { x, y } = guard.as_deref_mut().unwrap_or(&mut fallback);
        x.clear();
        y.clear();
        let mut pos = 0usize;
        for &i in subset {
            x.extend_from_slice(self.train.row(i));
            let yi = self.train.y()[i];
            if yi >= 0.5 {
                pos += 1;
            }
            y.push(yi);
        }
        if pos == 0 || pos == subset.len() {
            return self.base;
        }
        // Shuttle the buffer through Matrix (from_vec/into_vec are
        // zero-copy) so the fit sees a real design matrix.
        let xm = Matrix::from_vec(subset.len(), self.train.n_features(), std::mem::take(x));
        let model = LogisticRegression::fit(&xm, y, self.config);
        *x = xm.into_vec();
        accuracy(self.test.y(), &Classifier::predict(&model, self.test.x()))
    }

    fn n_train(&self) -> usize {
        self.train.n_rows()
    }
}

/// kNN test-accuracy utility (the model class with closed-form Shapley
/// values — see `knn_shapley`).
pub struct KnnUtility<'a> {
    train: &'a Dataset,
    test: &'a Dataset,
    k: usize,
}

impl<'a> KnnUtility<'a> {
    /// Builds the utility.
    pub fn new(train: &'a Dataset, test: &'a Dataset, k: usize) -> Self {
        assert!(k >= 1);
        Self { train, test, k }
    }

    /// The soft kNN utility of Jia et al.: for each test point, the
    /// fraction of its `min(K, |S|)` nearest subset-neighbours with the
    /// correct label, averaged over the test set; 0.5 for empty subsets.
    pub fn soft_eval(&self, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return 0.5;
        }
        let sub = self.train.subset(subset);
        let knn = Knn::fit(sub.x(), sub.y(), self.k);
        let mut total = 0.0;
        for t in 0..self.test.n_rows() {
            let neighbours = knn.k_nearest(self.test.row(t));
            let hits = neighbours
                .iter()
                .filter(|&&i| (sub.y()[i] >= 0.5) == (self.test.y()[t] >= 0.5))
                .count();
            total += hits as f64 / self.k.min(neighbours.len().max(1)) as f64;
        }
        total / self.test.n_rows() as f64
    }
}

impl Utility for KnnUtility<'_> {
    fn eval(&self, subset: &[usize]) -> f64 {
        self.soft_eval(subset)
    }
    fn n_train(&self) -> usize {
        self.train.n_rows()
    }
}

/// A memoizing [`Utility`] wrapper keyed on the subset's membership
/// bitmask (so at most 64 training points). TMC and Banzhaf sampling
/// revisit subsets — every permutation walk re-scores the empty and grand
/// coalitions, truncation replays prefixes — and training a model per
/// subset dwarfs a hash lookup.
///
/// The subset is *canonicalized* (sorted) before the first evaluation, so
/// two index orders of the same set share one entry. Utilities whose score
/// depends on index order — e.g. ones summing f64 scores in subset order —
/// would see the canonical order's bits on a hit; all utilities in this
/// crate are set functions, for which caching is exact.
pub struct CachedUtility<'a, U: Utility + ?Sized> {
    inner: &'a U,
    state: std::sync::Mutex<CachedUtilityState>,
}

struct CachedUtilityState {
    memo: std::collections::HashMap<u64, f64>,
    hits: usize,
    misses: usize,
}

impl<'a, U: Utility + ?Sized> CachedUtility<'a, U> {
    /// Wraps a utility; panics when the training set exceeds the 64-point
    /// bitmask capacity.
    pub fn new(inner: &'a U) -> Self {
        assert!(
            inner.n_train() <= 64,
            "CachedUtility is limited to 64 training points (bitmask key)"
        );
        Self {
            inner,
            state: std::sync::Mutex::new(CachedUtilityState {
                memo: std::collections::HashMap::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (usize, usize) {
        let s = self.state.lock().expect("utility cache poisoned");
        (s.hits, s.misses)
    }

    /// Number of distinct subsets evaluated so far.
    pub fn len(&self) -> usize {
        self.state.lock().expect("utility cache poisoned").memo.len()
    }

    /// True when no subset has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<U: Utility + ?Sized> Utility for CachedUtility<'_, U> {
    fn eval(&self, subset: &[usize]) -> f64 {
        let mut mask = 0u64;
        for &i in subset {
            debug_assert!(i < self.inner.n_train(), "index {i} out of range");
            mask |= 1u64 << i;
        }
        {
            let mut s = self.state.lock().expect("utility cache poisoned");
            if let Some(&v) = s.memo.get(&mask) {
                s.hits += 1;
                return v;
            }
            s.misses += 1;
        }
        // Evaluate outside the lock: subset utilities are deterministic, so
        // a racing duplicate evaluation returns the same value.
        let mut canonical = subset.to_vec();
        canonical.sort_unstable();
        let v = self.inner.eval(&canonical);
        self.state.lock().expect("utility cache poisoned").memo.insert(mask, v);
        v
    }

    fn n_train(&self) -> usize {
        self.inner.n_train()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::linear_gaussian;

    #[test]
    fn logistic_utility_improves_with_more_data() {
        let train = linear_gaussian(300, &[2.0, -1.0], 0.0, 5);
        let test = linear_gaussian(300, &[2.0, -1.0], 0.0, 6);
        let u = LogisticUtility::new(&train, &test, LogisticConfig::default());
        let small: Vec<usize> = (0..6).collect();
        let large: Vec<usize> = (0..300).collect();
        assert!(u.eval(&large) >= u.eval(&small) - 0.05);
        assert!(u.eval(&large) > u.base_score());
        assert_eq!(u.eval(&[]), u.base_score());
        assert_eq!(u.n_train(), 300);
    }

    #[test]
    fn knn_utility_monotone_behaviour() {
        let train = linear_gaussian(120, &[3.0], 0.0, 9);
        let test = linear_gaussian(80, &[3.0], 0.0, 10);
        let u = KnnUtility::new(&train, &test, 3);
        let all: Vec<usize> = (0..120).collect();
        assert!(u.eval(&all) > 0.6, "full-data knn should beat chance: {}", u.eval(&all));
        assert_eq!(u.eval(&[]), 0.5);
    }

    #[test]
    fn fn_utility_wraps_closures() {
        let u = FnUtility::new(10, |s: &[usize]| s.len() as f64);
        assert_eq!(u.eval(&[1, 2, 3]), 3.0);
        assert_eq!(u.n_train(), 10);
    }

    #[test]
    fn cached_utility_memoizes_by_set_not_order() {
        use std::cell::Cell;
        let calls = Cell::new(0usize);
        let u = FnUtility::new(8, |s: &[usize]| {
            calls.set(calls.get() + 1);
            s.iter().map(|&i| (i * i) as f64).sum()
        });
        let cached = CachedUtility::new(&u);
        assert!(cached.is_empty());
        let a = cached.eval(&[3, 1, 5]);
        let b = cached.eval(&[1, 3, 5]);
        let c = cached.eval(&[5, 1, 3]);
        assert_eq!(a, 35.0);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(calls.get(), 1, "one inner evaluation for three orderings");
        assert_eq!(cached.stats(), (2, 1));
        assert_eq!(cached.len(), 1);
        assert_eq!(cached.eval(&[]), 0.0);
        assert_eq!(cached.n_train(), 8);
        assert_eq!(cached.len(), 2);
    }

    #[test]
    fn cached_utility_rejects_large_training_sets() {
        let u = FnUtility::new(65, |s: &[usize]| s.len() as f64);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CachedUtility::new(&u)
        }));
        assert!(err.is_err(), "65 points must exceed the bitmask capacity");
    }
}
