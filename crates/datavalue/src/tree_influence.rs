//! Influence of training points on gradient-boosted trees
//! (Sharchilev et al., "LeafInfluence", §2.3.2 \[64\]).
//!
//! Influence functions need differentiable losses *and* parameters; trees
//! have neither. LeafInfluence's move — reproduced here — is to **fix the
//! ensemble structure** (splits) and treat only the **leaf values** as
//! parameters, then track how removing a training point changes them:
//!
//! - [`leaf_influence_first_order`]: closed-form, round-local
//!   approximation — within each boosting round, removing point `i` from a
//!   leaf of size `m` shifts that leaf's value by `(v − rᵢ)/(m−1)`;
//!   residual drift across rounds is ignored.
//! - [`fixed_structure_retrain`]: the exact structure-fixed ground truth —
//!   replay the boosting sequence without point `i`, recomputing residuals
//!   and leaf values round by round with the original splits.

// Replay loops index raw predictions, leaf ids and targets in parallel.
#![allow(clippy::needless_range_loop)]
use xai_core::DataAttribution;
use xai_data::Dataset;
use xai_models::{Gbdt, GbdtLoss};

/// First-order LeafInfluence estimate of the change in the ensemble's
/// *margin at `x`* caused by removing each training point.
pub fn leaf_influence_first_order(model: &Gbdt, train: &Dataset, x: &[f64]) -> DataAttribution {
    assert_eq!(model.loss(), GbdtLoss::Squared, "first-order LeafInfluence implemented for squared loss");
    let n = train.n_rows();
    let lr = model.learning_rate();
    let mut values = vec![0.0; n];

    // Current raw predictions replayed through the boosting sequence,
    // needed to reconstruct each round's residuals.
    let mut raw: Vec<f64> = vec![model.base_score(); n];
    for tree in model.trees() {
        // Leaf membership and sizes for this round.
        let mut leaf_of = vec![0usize; n];
        let mut leaf_count = vec![0.0f64; tree.nodes().len()];
        for i in 0..n {
            let l = tree.leaf_of(train.row(i));
            leaf_of[i] = l;
            leaf_count[l] += 1.0;
        }
        let target_leaf = tree.leaf_of(x);
        for i in 0..n {
            if leaf_of[i] != target_leaf {
                continue;
            }
            let m = leaf_count[target_leaf];
            if m < 2.0 {
                continue;
            }
            let residual = train.y()[i] - raw[i];
            let leaf_value = tree.nodes()[target_leaf].value;
            // Removing i moves the leaf mean away from its residual.
            values[i] += lr * (leaf_value - residual) / (m - 1.0);
        }
        for i in 0..n {
            raw[i] += lr * tree.nodes()[leaf_of[i]].value;
        }
    }
    DataAttribution {
        values,
        measure: "LeafInfluence Δ margin at x (first-order, structure fixed)".into(),
    }
}

/// Exact structure-fixed retraining: replays boosting without point
/// `remove`, keeping every split but recomputing residuals and leaf values.
/// Returns the new margin at `x`.
pub fn fixed_structure_retrain(model: &Gbdt, train: &Dataset, remove: usize, x: &[f64]) -> f64 {
    assert_eq!(model.loss(), GbdtLoss::Squared, "structure-fixed replay implemented for squared loss");
    let n = train.n_rows();
    let keep: Vec<usize> = (0..n).filter(|&i| i != remove).collect();
    let lr = model.learning_rate();
    // Base score recomputed without the point (mean target).
    let mean_y: f64 = keep.iter().map(|&i| train.y()[i]).sum::<f64>() / keep.len() as f64;
    let mut raw: Vec<f64> = vec![mean_y; n]; // indexed by original ids
    let mut margin_x = mean_y;
    for tree in model.trees() {
        let mut num = vec![0.0f64; tree.nodes().len()];
        let mut den = vec![0.0f64; tree.nodes().len()];
        for &i in &keep {
            let l = tree.leaf_of(train.row(i));
            num[l] += train.y()[i] - raw[i];
            den[l] += 1.0;
        }
        let leaf_value = |l: usize| if den[l] > 0.0 { num[l] / den[l] } else { 0.0 };
        for &i in &keep {
            let l = tree.leaf_of(train.row(i));
            raw[i] += lr * leaf_value(l);
        }
        margin_x += lr * leaf_value(tree.leaf_of(x));
    }
    margin_x
}

/// Ground-truth attribution at `x` via structure-fixed retraining for every
/// training point (`n` replays — the expensive baseline).
pub fn fixed_structure_ground_truth(model: &Gbdt, train: &Dataset, x: &[f64]) -> DataAttribution {
    let base = model.margin(x);
    let values = (0..train.n_rows())
        .map(|i| fixed_structure_retrain(model, train, i, x) - base)
        .collect();
    DataAttribution { values, measure: "structure-fixed retraining Δ margin at x".into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::friedman1;
    use xai_linalg::stats::pearson;
    use xai_models::GbdtConfig;

    fn setup() -> (Gbdt, Dataset) {
        let train = friedman1(200, 91, 0.3);
        let model = Gbdt::fit(
            train.x(),
            train.y(),
            GbdtConfig {
                n_rounds: 15,
                loss: GbdtLoss::Squared,
                learning_rate: 0.2,
                ..GbdtConfig::default()
            },
        );
        (model, train)
    }

    #[test]
    fn first_order_correlates_with_structure_fixed_truth() {
        let (model, train) = setup();
        let x = train.row(0).to_vec();
        let fast = leaf_influence_first_order(&model, &train, &x);
        let truth = fixed_structure_ground_truth(&model, &train, &x);
        let r = pearson(&fast.values, &truth.values);
        assert!(r > 0.7, "correlation {r}");
    }

    #[test]
    fn points_outside_the_leaf_path_have_zero_first_order_influence() {
        let (model, train) = setup();
        let x = train.row(3).to_vec();
        let fast = leaf_influence_first_order(&model, &train, &x);
        // A point sharing no leaf with x in any round must score zero.
        for i in 0..train.n_rows() {
            let shares_leaf = model
                .trees()
                .iter()
                .any(|t| t.leaf_of(train.row(i)) == t.leaf_of(&x));
            if !shares_leaf {
                assert_eq!(fast.values[i], 0.0, "point {i}");
            }
        }
    }

    #[test]
    fn replay_without_removal_reproduces_the_model() {
        let (model, train) = setup();
        // Removing a point and adding it back conceptually: replay with a
        // phantom removal index beyond the data should equal the original
        // margin. Instead: check replay keeps margins close when removing a
        // point from a large leaf (small perturbation).
        let x = train.row(1).to_vec();
        let base = model.margin(&x);
        let new_margin = fixed_structure_retrain(&model, &train, 150, &x);
        assert!((new_margin - base).abs() < 1.0, "single-point removal must be small: {base} -> {new_margin}");
    }

    #[test]
    fn self_removal_moves_prediction_away_from_own_target() {
        let (model, train) = setup();
        // Removing a training point typically moves the prediction at that
        // point away from its own label (less memorization).
        let mut moved_away = 0;
        let mut total = 0;
        for i in (0..train.n_rows()).step_by(20) {
            let x = train.row(i).to_vec();
            let before = model.margin(&x);
            let after = fixed_structure_retrain(&model, &train, i, &x);
            let y = train.y()[i];
            if (after - y).abs() >= (before - y).abs() - 1e-9 {
                moved_away += 1;
            }
            total += 1;
        }
        assert!(
            moved_away * 2 >= total,
            "self-removal should usually reduce fit: {moved_away}/{total}"
        );
    }
}
