//! Parallel Monte-Carlo data valuation on the `xai_rand` executor.
//!
//! Permutation walks (TMC-Shapley) and per-point coalition draws (Banzhaf)
//! are embarrassingly parallel. Both entry points here inherit the
//! executor's determinism invariant: every chunk of work draws from a
//! [`xai_rand::child_seed`]-derived stream and partials are reduced in
//! chunk order, so the output is a pure function of the seed —
//! bit-identical across runs *and across worker counts*.

use crate::banzhaf::BanzhafConfig;
use crate::data_shapley::TmcConfig;
use crate::utility::{check_finite_values, Utility};
use xai_core::{catch_model, DataAttribution, XaiError, XaiResult};
use xai_rand::parallel::{sum_partials, try_par_map_chunks, try_par_map_seeded};
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::Rng;

/// Permutations per executor task. Fixed (never derived from the worker
/// count) so the chunk grid — and hence the result — is worker-invariant.
pub(crate) const PERMS_PER_CHUNK: usize = 16;

/// Evaluates and validates the TMC truncation endpoints `U(D)` and
/// `U(∅)`. Shared by the in-process parallel twin and the shard layer so
/// both reject a faulty utility with the same typed error.
pub(crate) fn tmc_endpoints(utility: &dyn Utility) -> XaiResult<(f64, f64)> {
    let n = utility.n_train();
    let all: Vec<usize> = (0..n).collect();
    let (full_score, empty_score) = catch_model("TMC endpoint evaluation", || {
        (utility.eval(&all), utility.eval(&[]))
    })?;
    if !full_score.is_finite() || !empty_score.is_finite() {
        return Err(XaiError::ModelFault {
            context: format!("TMC endpoints: U(D) = {full_score}, U(∅) = {empty_score}"),
        });
    }
    Ok((full_score, empty_score))
}

/// One executor chunk of TMC permutation walks: `count` truncated
/// permutations drawn from `rng`, accumulated into per-point marginal
/// sums. The single source of the chunk body — the parallel twin and the
/// shard layer both call this, which is what makes sharded partials merge
/// bit-identically.
pub(crate) fn tmc_chunk_sums(
    utility: &dyn Utility,
    config: TmcConfig,
    count: usize,
    full_score: f64,
    empty_score: f64,
    rng: &mut StdRng,
) -> Vec<f64> {
    let n = utility.n_train();
    let mut sums = vec![0.0; n];
    let mut perm: Vec<usize> = (0..n).collect();
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..count {
        perm.shuffle(rng);
        prefix.clear();
        let mut prev = empty_score;
        for &point in &perm {
            if (full_score - prev).abs() < config.truncation_tolerance {
                break;
            }
            prefix.push(point);
            let cur = utility.eval(&prefix);
            sums[point] += cur - prev;
            prev = cur;
        }
    }
    sums
}

/// Reduces ordered per-chunk marginal sums to the final TMC attribution:
/// left-fold in chunk order, divide by the permutation count, reject
/// non-finite values. Shared epilogue of the parallel twin and the shard
/// merge.
pub(crate) fn tmc_finish(
    partials: Vec<Vec<f64>>,
    permutations: usize,
    workers: usize,
) -> XaiResult<DataAttribution> {
    let m = permutations as f64;
    let mut values = sum_partials(partials);
    for v in &mut values {
        *v /= m;
    }
    // Any non-finite utility score poisons its point's sum (NaN/±Inf are
    // absorbing under +), so checking the reduced values suffices.
    check_finite_values(&values, "parallel TMC data Shapley")?;
    Ok(DataAttribution { values, measure: format!("TMC data Shapley ({workers} workers)") })
}

/// One executor task of data Banzhaf: all coalition draws for training
/// point `i` from stream `rng`, averaged. Shared by the parallel twin and
/// the shard layer (one shard chunk per point).
pub(crate) fn banzhaf_point(
    utility: &dyn Utility,
    config: BanzhafConfig,
    i: usize,
    rng: &mut StdRng,
) -> f64 {
    let n = utility.n_train();
    let mut acc = 0.0;
    let mut base: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..config.samples_per_point {
        base.clear();
        for j in 0..n {
            if j != i && rng.gen::<bool>() {
                base.push(j);
            }
        }
        let without = utility.eval(&base);
        base.push(i);
        let with = utility.eval(&base);
        acc += with - without;
    }
    acc / config.samples_per_point as f64
}

/// Validates per-point Banzhaf values and stamps the measure string.
/// Shared epilogue of the parallel twin and the shard merge.
pub(crate) fn banzhaf_finish(values: Vec<f64>, workers: usize) -> XaiResult<DataAttribution> {
    check_finite_values(&values, "parallel data Banzhaf")?;
    Ok(DataAttribution { values, measure: format!("data Banzhaf ({workers} workers)") })
}

/// Runs TMC-Shapley with the permutation walks spread across `workers`
/// threads. The estimate is bit-identical for a fixed `config.seed`
/// regardless of `workers` (see module docs); it converges to the same
/// estimand as the sequential `tmc_shapley`.
///
/// # Panics
/// Panics when the utility panics or returns non-finite scores; use
/// [`try_tmc_shapley_parallel`] for typed errors.
#[deprecated(note = "superseded by the unified explainer layer: use TmcMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn tmc_shapley_parallel<U: Utility + Sync>(
    utility: &U,
    config: TmcConfig,
    workers: usize,
) -> DataAttribution {
    try_tmc_shapley_parallel(utility, config, workers)
        .expect("parallel TMC-Shapley failed; try_tmc_shapley_parallel recovers this")
}

/// Fallible twin of [`tmc_shapley_parallel`]: a panic inside a worker
/// chunk yields [`XaiError::WorkerPanic`] naming the lowest-indexed
/// panicking chunk (worker-count invariant); non-finite utility scores
/// yield [`XaiError::ModelFault`]. Fault-free runs are bit-identical to
/// [`tmc_shapley_parallel`].
#[deprecated(note = "superseded by the unified explainer layer: use TmcMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_tmc_shapley_parallel<U: Utility + Sync>(
    utility: &U,
    config: TmcConfig,
    workers: usize,
) -> XaiResult<DataAttribution> {
    assert!(workers >= 1);
    assert!(config.permutations >= 1, "need at least one permutation");
    let (full_score, empty_score) = tmc_endpoints(utility)?;

    let partials = try_par_map_chunks(
        config.permutations,
        PERMS_PER_CHUNK,
        config.seed,
        workers,
        |_chunk, range, rng| {
            tmc_chunk_sums(utility, config, range.len(), full_score, empty_score, rng)
        },
    )
    .map_err(XaiError::from)?;

    tmc_finish(partials, config.permutations, workers)
}

/// Monte-Carlo data Banzhaf with one executor task per training point.
///
/// Point `i` draws its coalitions from stream `child_seed(seed, i)`, so the
/// result is deterministic and worker-invariant (though it differs from the
/// single-stream sequential `data_banzhaf` draw-for-draw — both are
/// unbiased estimates of the same semivalue).
///
/// # Panics
/// Panics when the utility panics or returns non-finite scores; use
/// [`try_data_banzhaf_parallel`] for typed errors.
#[deprecated(note = "superseded by the unified explainer layer: use BanzhafMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn data_banzhaf_parallel<U: Utility + Sync>(
    utility: &U,
    config: BanzhafConfig,
    workers: usize,
) -> DataAttribution {
    try_data_banzhaf_parallel(utility, config, workers)
        .expect("parallel data Banzhaf failed; try_data_banzhaf_parallel recovers this")
}

/// Fallible twin of [`data_banzhaf_parallel`]: a panic inside a worker
/// task yields [`XaiError::WorkerPanic`] naming the lowest-indexed
/// panicking task (worker-count invariant); non-finite utility scores
/// yield [`XaiError::ModelFault`]. Fault-free runs are bit-identical to
/// [`data_banzhaf_parallel`].
#[deprecated(note = "superseded by the unified explainer layer: use BanzhafMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_data_banzhaf_parallel<U: Utility + Sync>(
    utility: &U,
    config: BanzhafConfig,
    workers: usize,
) -> XaiResult<DataAttribution> {
    assert!(workers >= 1);
    assert!(config.samples_per_point >= 1);
    let n = utility.n_train();
    let values =
        try_par_map_seeded(n, config.seed, workers, |i, rng| banzhaf_point(utility, config, i, rng))
            .map_err(XaiError::from)?;
    banzhaf_finish(values, workers)
}

#[cfg(test)]
#[allow(deprecated)] // the twins stay under test until removal
mod tests {
    use super::*;
    use crate::banzhaf::exact_data_banzhaf;
    use crate::data_shapley::tmc_shapley;
    use crate::loo::exact_data_shapley;
    use crate::utility::FnUtility;

    fn game() -> FnUtility<impl Fn(&[usize]) -> f64> {
        FnUtility::new(8, |s: &[usize]| {
            s.iter().map(|&i| (i + 1) as f64 * 0.1).sum::<f64>()
                + f64::from(s.contains(&1) && s.contains(&6)) * 0.4
        })
    }

    #[test]
    fn parallel_matches_exact() {
        let u = game();
        let exact = exact_data_shapley(&u);
        let par = tmc_shapley_parallel(
            &u,
            TmcConfig { permutations: 4000, truncation_tolerance: 0.0, seed: 3 },
            4,
        );
        for (a, b) in par.values.iter().zip(&exact.values) {
            assert!((a - b).abs() < 0.03, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let u = game();
        let cfg = TmcConfig { permutations: 64, truncation_tolerance: 0.0, seed: 9 };
        let a = tmc_shapley_parallel(&u, cfg, 3);
        let b = tmc_shapley_parallel(&u, cfg, 3);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn worker_count_does_not_change_the_result_at_all() {
        // Stronger than "same estimand": the chunk grid is fixed, so any
        // worker count reproduces the exact same floating-point output.
        let u = game();
        let cfg = TmcConfig { permutations: 96, truncation_tolerance: 0.0, seed: 11 };
        let one = tmc_shapley_parallel(&u, cfg, 1);
        for workers in [2, 4, 8] {
            let w = tmc_shapley_parallel(&u, cfg, workers);
            assert_eq!(one.values, w.values, "workers={workers} diverged");
        }
    }

    #[test]
    fn single_worker_agrees_with_sequential_estimator_statistically() {
        // Different RNG streams, same estimand: totals (efficiency) agree
        // exactly, values agree within Monte-Carlo error.
        let u = game();
        let cfg = TmcConfig { permutations: 3000, truncation_tolerance: 0.0, seed: 5 };
        let seq = tmc_shapley(&u, cfg);
        let par = tmc_shapley_parallel(&u, cfg, 1);
        let sum_seq: f64 = seq.attribution.values.iter().sum();
        let sum_par: f64 = par.values.iter().sum();
        assert!((sum_seq - sum_par).abs() < 1e-9, "efficiency is exact in both");
        for (a, b) in par.values.iter().zip(&seq.attribution.values) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_banzhaf_converges_and_is_worker_invariant() {
        let u = game();
        let cfg = BanzhafConfig { samples_per_point: 2000, seed: 7 };
        let exact = exact_data_banzhaf(&u);
        let p1 = data_banzhaf_parallel(&u, cfg, 1);
        let p4 = data_banzhaf_parallel(&u, cfg, 4);
        assert_eq!(p1.values, p4.values, "worker count changed the draw");
        for (a, b) in p1.values.iter().zip(&exact.values) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }
}
