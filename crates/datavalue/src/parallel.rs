//! Parallel TMC-Shapley using scoped OS threads.
//!
//! Permutation walks are embarrassingly parallel; each worker gets a
//! deterministic seed derived from the caller's, so the estimate is
//! reproducible for a fixed `(seed, threads)` pair and converges to the
//! same value as the sequential estimator.

use crate::data_shapley::TmcConfig;
use crate::utility::Utility;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use xai_core::DataAttribution;

/// Runs TMC-Shapley across `threads` workers. The total permutation count
/// is `config.permutations`, split evenly (remainder to the first worker).
pub fn tmc_shapley_parallel<U: Utility + Sync>(
    utility: &U,
    config: TmcConfig,
    threads: usize,
) -> DataAttribution {
    assert!(threads >= 1);
    assert!(config.permutations >= threads, "fewer permutations than threads");
    let n = utility.n_train();
    let all: Vec<usize> = (0..n).collect();
    let full_score = utility.eval(&all);
    let empty_score = utility.eval(&[]);

    let per_thread = config.permutations / threads;
    let remainder = config.permutations % threads;

    let partials: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let quota = per_thread + usize::from(t < remainder);
                let seed = config.seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut sums = vec![0.0; n];
                    let mut perm: Vec<usize> = (0..n).collect();
                    let mut prefix: Vec<usize> = Vec::with_capacity(n);
                    for _ in 0..quota {
                        perm.shuffle(&mut rng);
                        prefix.clear();
                        let mut prev = empty_score;
                        for &point in &perm {
                            if (full_score - prev).abs() < config.truncation_tolerance {
                                break;
                            }
                            prefix.push(point);
                            let cur = utility.eval(&prefix);
                            sums[point] += cur - prev;
                            prev = cur;
                        }
                    }
                    sums
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let m = config.permutations as f64;
    let mut values = vec![0.0; n];
    for partial in partials {
        for (v, p) in values.iter_mut().zip(&partial) {
            *v += p / m;
        }
    }
    DataAttribution { values, measure: format!("TMC data Shapley ({threads} threads)") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_shapley::tmc_shapley;
    use crate::loo::exact_data_shapley;
    use crate::utility::FnUtility;

    fn game() -> FnUtility<impl Fn(&[usize]) -> f64> {
        FnUtility::new(8, |s: &[usize]| {
            s.iter().map(|&i| (i + 1) as f64 * 0.1).sum::<f64>()
                + f64::from(s.contains(&1) && s.contains(&6)) * 0.4
        })
    }

    #[test]
    fn parallel_matches_exact() {
        let u = game();
        let exact = exact_data_shapley(&u);
        let par = tmc_shapley_parallel(
            &u,
            TmcConfig { permutations: 4000, truncation_tolerance: 0.0, seed: 3 },
            4,
        );
        for (a, b) in par.values.iter().zip(&exact.values) {
            assert!((a - b).abs() < 0.03, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_and_threads() {
        let u = game();
        let cfg = TmcConfig { permutations: 64, truncation_tolerance: 0.0, seed: 9 };
        let a = tmc_shapley_parallel(&u, cfg, 3);
        let b = tmc_shapley_parallel(&u, cfg, 3);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn single_thread_agrees_with_sequential_estimator_statistically() {
        // Different RNG streams, same estimand: totals (efficiency) agree
        // exactly, values agree within Monte-Carlo error.
        let u = game();
        let cfg = TmcConfig { permutations: 3000, truncation_tolerance: 0.0, seed: 5 };
        let seq = tmc_shapley(&u, cfg);
        let par = tmc_shapley_parallel(&u, cfg, 1);
        let sum_seq: f64 = seq.attribution.values.iter().sum();
        let sum_par: f64 = par.values.iter().sum();
        assert!((sum_seq - sum_par).abs() < 1e-9, "efficiency is exact in both");
        for (a, b) in par.values.iter().zip(&seq.attribution.values) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_estimand() {
        let u = game();
        let cfg = TmcConfig { permutations: 6000, truncation_tolerance: 0.0, seed: 11 };
        let p2 = tmc_shapley_parallel(&u, cfg, 2);
        let p8 = tmc_shapley_parallel(&u, cfg, 8);
        for (a, b) in p2.values.iter().zip(&p8.values) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }
}
