//! Distributional Shapley values (Ghorbani, Kim & Zou; Kwon et al.;
//! §2.3.1 \[23, 41\]).
//!
//! Data Shapley values a point *within one fixed dataset*; the tutorial
//! notes this "ignores the fact that the training data is in fact sampled
//! from an unknown underlying distribution". The distributional Shapley
//! value of a point `z` at cardinality `m` is
//! `ν(z; m) = E_{S ~ D^{m−1}} [U(S ∪ {z}) − U(S)]` — the expected marginal
//! contribution of `z` to a random size-`m−1` dataset drawn from the
//! distribution. It is stable to dataset resampling, which is exactly
//! what the tests verify.

use crate::utility::Utility;
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;

/// Configuration for [`distributional_shapley`].
#[derive(Clone, Copy, Debug)]
pub struct DistributionalConfig {
    /// Cardinality `m` at which the value is measured.
    pub cardinality: usize,
    /// Monte-Carlo draws of the context set `S`.
    pub draws: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DistributionalConfig {
    fn default() -> Self {
        Self { cardinality: 20, draws: 60, seed: 0 }
    }
}

/// Estimates `ν(zᵢ; m)` for the listed points. The underlying distribution
/// is represented by the utility's training pool: context sets are drawn
/// (without replacement) from the pool *excluding* the valued point.
pub fn distributional_shapley(
    utility: &dyn Utility,
    points: &[usize],
    config: DistributionalConfig,
) -> Vec<f64> {
    let n = utility.n_train();
    assert!(config.cardinality >= 1 && config.cardinality <= n, "cardinality out of range");
    assert!(config.draws >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut values = Vec::with_capacity(points.len());
    for &z in points {
        assert!(z < n, "point index out of range");
        let pool: Vec<usize> = (0..n).filter(|&i| i != z).collect();
        let mut total = 0.0;
        for _ in 0..config.draws {
            let mut shuffled = pool.clone();
            shuffled.shuffle(&mut rng);
            let mut context: Vec<usize> = shuffled
                .into_iter()
                .take(config.cardinality - 1)
                .collect();
            let without = utility.eval(&context);
            context.push(z);
            let with = utility.eval(&context);
            total += with - without;
        }
        values.push(total / config.draws as f64);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::{FnUtility, KnnUtility};
    use xai_data::inject_label_noise;
    use xai_data::synth::linear_gaussian;

    #[test]
    fn additive_utility_gives_each_point_its_own_weight() {
        // U(S) = Σ w_i with w_i = i; then ν(z; m) = w_z for every m.
        let u = FnUtility::new(12, |s: &[usize]| s.iter().map(|&i| i as f64).sum());
        let values = distributional_shapley(
            &u,
            &[0, 3, 11],
            DistributionalConfig { cardinality: 5, draws: 30, seed: 1 },
        );
        assert!((values[0] - 0.0).abs() < 1e-9);
        assert!((values[1] - 3.0).abs() < 1e-9);
        assert!((values[2] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn stable_across_dataset_resampling() {
        // The headline property: a point's distributional value barely
        // moves when the rest of the pool is resampled from the same
        // distribution (two different seeds of the same generator).
        let mut pool_a = linear_gaussian(120, &[3.0], 0.0, 7);
        let mut pool_b = linear_gaussian(120, &[3.0], 0.0, 8);
        // Plant the SAME point into both pools at index 0.
        let probe_x = pool_a.row(5).to_vec();
        let probe_y = pool_a.y()[5];
        for pool in [&mut pool_a, &mut pool_b] {
            let x = pool.x().clone();
            let mut x2 = x;
            x2.row_mut(0).copy_from_slice(&probe_x);
            let mut y2 = pool.y().to_vec();
            y2[0] = probe_y;
            *pool = xai_data::Dataset::new(pool.schema().clone(), x2, y2, pool.task());
        }
        let test = linear_gaussian(150, &[3.0], 0.0, 9);
        let cfg = DistributionalConfig { cardinality: 25, draws: 120, seed: 3 };
        let ua = KnnUtility::new(&pool_a, &test, 3);
        let ub = KnnUtility::new(&pool_b, &test, 3);
        let va = distributional_shapley(&ua, &[0], cfg)[0];
        let vb = distributional_shapley(&ub, &[0], cfg)[0];
        assert!(
            (va - vb).abs() < 0.01,
            "distributional value must be pool-independent: {va} vs {vb}"
        );
    }

    #[test]
    fn corrupted_point_has_lower_value_than_clean_copy() {
        let mut train = linear_gaussian(100, &[4.0], 0.0, 17);
        let flipped = inject_label_noise(&mut train, 0.05, 3);
        let test = linear_gaussian(150, &[4.0], 0.0, 18);
        let u = KnnUtility::new(&train, &test, 3);
        let cfg = DistributionalConfig { cardinality: 30, draws: 150, seed: 5 };
        let bad = distributional_shapley(&u, &flipped[..2.min(flipped.len())], cfg);
        // Compare against a couple of clean points.
        let clean: Vec<usize> = (0..train.n_rows()).filter(|i| !flipped.contains(i)).take(2).collect();
        let good = distributional_shapley(&u, &clean, cfg);
        let avg_bad = bad.iter().sum::<f64>() / bad.len() as f64;
        let avg_good = good.iter().sum::<f64>() / good.len() as f64;
        assert!(avg_bad < avg_good, "corrupted {avg_bad} vs clean {avg_good}");
    }
}
