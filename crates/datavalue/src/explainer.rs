//! Unified-layer `Explainer` impls for the data-valuation family
//! (DESIGN.md §9): leave-one-out, truncated Monte-Carlo data Shapley and
//! data Banzhaf, all scoring *training points* rather than features.
//!
//! The utility being attributed comes from [`ExplainRequest::utility`]
//! when the caller supplies one; otherwise each method falls back to the
//! workspace default — retraining a logistic model on the request
//! dataset and scoring it on [`ExplainRequest::test_or_data`]. The
//! `model` oracle argument is unused by that fallback (valuation
//! explains the *training set × learner* pair, not a fitted model), but
//! stays in the signature so the family is callable through the same
//! trait as everything else.
//!
//! Dispatch contract: `workers > 1` selects the fixed-chunk parallel
//! twins (worker-count-invariant, but a different draw schedule than the
//! sequential estimator — same as the legacy free functions);
//! `RunConfig::budget` is honoured by TMC (via
//! [`try_tmc_shapley_budgeted`]) and by Banzhaf (via
//! [`try_data_banzhaf_budgeted`]), each on the sequential path only —
//! budget + `workers > 1` is rejected as [`XaiError::Unsupported`], as is
//! a budget on LOO, whose deterministic point sweep has no draw stream to
//! truncate. No method here has a batched twin, so `batched` is a no-op.
//!
//! All three methods are shardable (DESIGN.md §11): permutation chunks
//! (TMC), per-point coalition streams (Banzhaf) and fixed point chunks
//! (LOO) partition onto [`ShardableExplainer`] grids whose merged
//! partials are bit-identical to the parallel dispatch above.
// This module is the blessed call site of the deprecated legacy twins:
// the unified dispatch below is what replaces them.
#![allow(deprecated)]

use xai_core::shard::{
    chunks_json, flatten_chunks, index_field, num_field, nums_field, wire_error, DrawGrid,
    ShardableExplainer,
};
use xai_core::taxonomy::method_card;
use xai_core::{
    DataAttribution, ExplainRequest, Explainer, Explanation, Json, MethodCard, ModelOracle,
    XaiError, XaiResult,
};
use xai_models::LogisticConfig;
use xai_rand::rngs::StdRng;
use xai_rand::{child_seed, SeedableRng};

use crate::banzhaf::{try_data_banzhaf_budgeted, BanzhafConfig};
use crate::data_shapley::{try_tmc_shapley_budgeted, TmcConfig};
use crate::loo::{self, try_leave_one_out, try_leave_one_out_parallel};
use crate::parallel::{self, try_data_banzhaf_parallel, try_tmc_shapley_parallel};
use crate::utility::{check_finite_values, LogisticUtility, Utility};

fn reject_budget(method: &str, req: &ExplainRequest<'_>) -> XaiResult<()> {
    if req.plan.budgeted() {
        return Err(XaiError::Unsupported {
            context: format!("{method} has no budgeted execution path; clear RunConfig::budget"),
        });
    }
    Ok(())
}

/// Serialises a value slice for a shard partial, refusing non-finite
/// values before they reach the wire (JSON would silently null them).
fn shard_nums(what: &str, vals: &[f64]) -> XaiResult<Json> {
    if let Some(i) = vals.iter().position(|v| !v.is_finite()) {
        return Err(XaiError::ModelFault { context: format!("{what}: value {i} is {}", vals[i]) });
    }
    Ok(Json::nums(vals))
}

/// The utility a valuation request resolves to: the caller's own, or the
/// default logistic retraining utility built on the request data.
enum Util<'a> {
    Borrowed(&'a (dyn Utility + Sync)),
    Logistic(LogisticUtility<'a>),
}

impl Utility for Util<'_> {
    fn eval(&self, subset: &[usize]) -> f64 {
        match self {
            Util::Borrowed(u) => u.eval(subset),
            Util::Logistic(u) => u.eval(subset),
        }
    }
    fn n_train(&self) -> usize {
        match self {
            Util::Borrowed(u) => u.n_train(),
            Util::Logistic(u) => u.n_train(),
        }
    }
}

fn resolve_utility<'a>(req: &ExplainRequest<'a>) -> Util<'a> {
    match req.utility {
        Some(u) => Util::Borrowed(u),
        None => Util::Logistic(LogisticUtility::new(
            req.data,
            req.test_or_data(),
            LogisticConfig::default(),
        )),
    }
}

/// Leave-one-out data valuation (§2.3.1) through the unified layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct LooMethod;

impl Explainer for LooMethod {
    fn card(&self) -> MethodCard {
        method_card("Leave-one-out")
    }

    fn explain(&self, _model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("Leave-one-out", req)?;
        let utility = resolve_utility(req);
        let att = if req.plan.parallel() {
            try_leave_one_out_parallel(&utility, req.plan.workers)?
        } else {
            try_leave_one_out(&utility)?
        };
        Ok(Explanation::DataValuation(att))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl LooMethod {
    /// Rebuilds the method from its canonical shard-config JSON (LOO has
    /// no tunables, so any object is accepted).
    pub fn from_config_json(_config: &Json) -> XaiResult<Self> {
        Ok(Self)
    }
}

impl ShardableExplainer for LooMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        reject_budget("Leave-one-out", req)?;
        let n = resolve_utility(req).n_train();
        Ok(DrawGrid { total_draws: n, chunk_size: loo::POINTS_PER_CHUNK })
    }

    fn explain_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let utility = resolve_utility(req);
        let grid = self.draw_grid(req)?;
        let n = utility.n_train();
        let all: Vec<usize> = (0..n).collect();
        let full =
            xai_core::catch_model("leave-one-out full-set retraining", || utility.eval(&all))?;
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            // LOO draws no randomness; chunk c is a pure function of its range.
            let values = loo::loo_chunk_values(&utility, full, grid.chunk_range(c));
            out.push(Json::obj(vec![(
                "values",
                shard_nums("leave-one-out chunk values", &values)?,
            )]));
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "leave-one-out merge";
        let grid = self.draw_grid(req)?;
        let flat = flatten_chunks(&partials, WHAT)?;
        if flat.len() != grid.n_chunks() {
            return Err(wire_error(format!(
                "{WHAT}: got {} chunk partials for a {}-chunk grid",
                flat.len(),
                grid.n_chunks()
            )));
        }
        let mut values = Vec::with_capacity(grid.total_draws);
        for (c, chunk) in flat.iter().enumerate() {
            let chunk_values = nums_field(chunk, "values", WHAT)?;
            if chunk_values.len() != grid.chunk_range(c).len() {
                return Err(wire_error(format!(
                    "{WHAT}: chunk {c} carries {} values for a {}-point range",
                    chunk_values.len(),
                    grid.chunk_range(c).len()
                )));
            }
            values.extend(chunk_values);
        }
        check_finite_values(&values, "leave-one-out")?;
        Ok(Explanation::DataValuation(DataAttribution {
            values,
            measure: "leave-one-out utility change".into(),
        }))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![])
    }
}

/// Truncated Monte-Carlo data Shapley (§2.3.1) through the unified
/// layer. The only valuation method with a budgeted path: a
/// `RunConfig::budget` meters utility evaluations (sequential execution
/// only — combine it with `workers > 1` and the request is rejected).
#[derive(Clone, Copy, Debug, Default)]
pub struct TmcMethod {
    /// Permutation count and truncation tolerance; the config's own
    /// `seed` is overridden by `RunConfig::seed`.
    pub config: TmcConfig,
}

impl Explainer for TmcMethod {
    fn card(&self) -> MethodCard {
        method_card("Data Shapley (TMC)")
    }

    fn explain(&self, _model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        let plan = req.plan;
        let config = TmcConfig { seed: plan.seed, ..self.config };
        let utility = resolve_utility(req);
        let att = if plan.parallel() {
            reject_budget("Data Shapley (TMC) with workers > 1", req)?;
            try_tmc_shapley_parallel(&utility, config, plan.workers)?
        } else {
            try_tmc_shapley_budgeted(&utility, config, plan.budget)?.attribution
        };
        Ok(Explanation::DataValuation(att))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl TmcMethod {
    /// Rebuilds the method from its canonical shard-config JSON.
    pub fn from_config_json(config: &Json) -> XaiResult<Self> {
        let permutations = index_field(config, "permutations", "TMC config")?;
        if permutations == 0 {
            return Err(wire_error("TMC config: permutations must be >= 1"));
        }
        let truncation_tolerance = num_field(config, "truncation_tolerance", "TMC config")?;
        Ok(Self { config: TmcConfig { permutations, truncation_tolerance, seed: 0 } })
    }
}

impl ShardableExplainer for TmcMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        // Sharding reproduces the parallel dispatch, which rejects budgets.
        reject_budget("Data Shapley (TMC) with workers > 1", req)?;
        Ok(DrawGrid {
            total_draws: self.config.permutations,
            chunk_size: parallel::PERMS_PER_CHUNK,
        })
    }

    fn explain_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let config = TmcConfig { seed: req.plan.seed, ..self.config };
        let utility = resolve_utility(req);
        let grid = self.draw_grid(req)?;
        let (full_score, empty_score) = parallel::tmc_endpoints(&utility)?;
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let mut rng = StdRng::seed_from_u64(child_seed(config.seed, c as u64));
            let sums = parallel::tmc_chunk_sums(
                &utility,
                config,
                grid.chunk_range(c).len(),
                full_score,
                empty_score,
                &mut rng,
            );
            out.push(Json::obj(vec![("sums", shard_nums("TMC chunk sums", &sums)?)]));
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "TMC merge";
        let utility = resolve_utility(req);
        let grid = self.draw_grid(req)?;
        let n = utility.n_train();
        let flat = flatten_chunks(&partials, WHAT)?;
        if flat.len() != grid.n_chunks() {
            return Err(wire_error(format!(
                "{WHAT}: got {} chunk partials for a {}-chunk grid",
                flat.len(),
                grid.n_chunks()
            )));
        }
        let mut chunk_sums = Vec::with_capacity(flat.len());
        for (c, chunk) in flat.iter().enumerate() {
            let sums = nums_field(chunk, "sums", WHAT)?;
            if sums.len() != n {
                return Err(wire_error(format!(
                    "{WHAT}: chunk {c} carries {} sums for {n} training points",
                    sums.len()
                )));
            }
            chunk_sums.push(sums);
        }
        let att = parallel::tmc_finish(chunk_sums, self.config.permutations, req.plan.workers)?;
        Ok(Explanation::DataValuation(att))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![
            ("permutations", Json::Num(self.config.permutations as f64)),
            ("truncation_tolerance", Json::Num(self.config.truncation_tolerance)),
        ])
    }
}

/// Monte-Carlo data Banzhaf valuation (§2.3.1) through the unified
/// layer; the uniform-coalition estimator that is provably most robust
/// to noisy utilities. A `RunConfig::budget` meters utility evaluations
/// (sequential execution only — combined with `workers > 1` the request
/// is rejected, mirroring TMC).
#[derive(Clone, Copy, Debug, Default)]
pub struct BanzhafMethod {
    /// Coalition draws per training point; the config's own `seed` is
    /// overridden by `RunConfig::seed`.
    pub config: BanzhafConfig,
}

impl Explainer for BanzhafMethod {
    fn card(&self) -> MethodCard {
        method_card("Data Banzhaf")
    }

    fn explain(&self, _model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        let plan = req.plan;
        let config = BanzhafConfig { seed: plan.seed, ..self.config };
        let utility = resolve_utility(req);
        let att = if plan.parallel() {
            reject_budget("Data Banzhaf with workers > 1", req)?;
            try_data_banzhaf_parallel(&utility, config, plan.workers)?
        } else {
            try_data_banzhaf_budgeted(&utility, config, plan.budget)?
        };
        Ok(Explanation::DataValuation(att))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl BanzhafMethod {
    /// Rebuilds the method from its canonical shard-config JSON.
    pub fn from_config_json(config: &Json) -> XaiResult<Self> {
        let samples_per_point = index_field(config, "samples_per_point", "Banzhaf config")?;
        if samples_per_point == 0 {
            return Err(wire_error("Banzhaf config: samples_per_point must be >= 1"));
        }
        Ok(Self { config: BanzhafConfig { samples_per_point, seed: 0 } })
    }
}

impl ShardableExplainer for BanzhafMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        reject_budget("Data Banzhaf", req)?;
        let n = resolve_utility(req).n_train();
        // One chunk per training point: point i draws from child_seed(seed, i)
        // exactly as in the per-point parallel twin.
        Ok(DrawGrid { total_draws: n, chunk_size: 1 })
    }

    fn explain_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let config = BanzhafConfig { seed: req.plan.seed, ..self.config };
        let utility = resolve_utility(req);
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let mut rng = StdRng::seed_from_u64(child_seed(config.seed, c as u64));
            let value = parallel::banzhaf_point(&utility, config, c, &mut rng);
            if !value.is_finite() {
                return Err(XaiError::ModelFault {
                    context: format!("data Banzhaf: point {c} value is {value}"),
                });
            }
            out.push(Json::obj(vec![("value", Json::Num(value))]));
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "data Banzhaf merge";
        let grid = self.draw_grid(req)?;
        let flat = flatten_chunks(&partials, WHAT)?;
        if flat.len() != grid.n_chunks() {
            return Err(wire_error(format!(
                "{WHAT}: got {} point partials for {} training points",
                flat.len(),
                grid.n_chunks()
            )));
        }
        let values = flat
            .iter()
            .map(|chunk| num_field(chunk, "value", WHAT))
            .collect::<XaiResult<Vec<_>>>()?;
        let att = parallel::banzhaf_finish(values, req.plan.workers)?;
        Ok(Explanation::DataValuation(att))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![("samples_per_point", Json::Num(self.config.samples_per_point as f64))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::FnUtility;
    use xai_core::taxonomy::{Scope, Stage};
    use xai_core::{RunConfig, SampleBudget};
    use xai_data::synth::german_credit;
    use xai_models::{LogisticRegression, Regressor};

    /// A cheap additive utility: value of a subset is the sum of its
    /// members' indices (so point i is worth exactly i under LOO).
    fn additive(n: usize) -> FnUtility<impl Fn(&[usize]) -> f64> {
        FnUtility::new(n, |s: &[usize]| s.iter().map(|&i| i as f64).sum())
    }

    fn fit_model(data: &xai_data::Dataset) -> LogisticRegression {
        LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default())
    }

    #[test]
    fn cards_come_from_the_catalogue() {
        assert_eq!(LooMethod.card().scope, Scope::TrainingData);
        assert_eq!(TmcMethod::default().card().stage, Stage::PostHoc);
        assert_eq!(BanzhafMethod::default().card().name, "Data Banzhaf");
    }

    #[test]
    fn loo_trait_path_matches_legacy_and_is_worker_invariant() {
        let u = additive(8);
        let data = german_credit(20, 7);
        let model = fit_model(&data);
        let legacy = crate::loo::leave_one_out(&u);
        for workers in [1usize, 2, 4] {
            let req = ExplainRequest::new(&data)
                .utility(&u)
                .plan(RunConfig::seeded(3).with_workers(workers));
            let e = LooMethod.explain(&model, &req).unwrap();
            assert_eq!(e.as_valuation().unwrap().values, legacy.values, "workers={workers}");
        }
    }

    #[test]
    fn tmc_trait_path_is_bit_identical_to_the_legacy_twins() {
        let u = additive(8);
        let data = german_credit(20, 8);
        let model = fit_model(&data);
        let config = TmcConfig { permutations: 12, seed: 9, ..TmcConfig::default() };
        let method = TmcMethod { config };

        let seq = crate::data_shapley::tmc_shapley(&u, config);
        let req = ExplainRequest::new(&data).utility(&u).plan(RunConfig::seeded(9));
        let e = method.explain(&model, &req).unwrap();
        assert_eq!(e.as_valuation().unwrap().values, seq.attribution.values);

        let par = try_tmc_shapley_parallel(&u, config, 2).unwrap();
        let req = ExplainRequest::new(&data)
            .utility(&u)
            .plan(RunConfig::seeded(9).with_workers(2));
        let e = method.explain(&model, &req).unwrap();
        assert_eq!(e.as_valuation().unwrap().values, par.values);
    }

    #[test]
    fn banzhaf_trait_path_matches_legacy_at_the_plan_seed() {
        let u = additive(8);
        let data = german_credit(20, 11);
        let model = fit_model(&data);
        let config = BanzhafConfig { samples_per_point: 16, seed: 0 };
        let legacy =
            crate::banzhaf::data_banzhaf(&u, BanzhafConfig { seed: 21, ..config });
        let req = ExplainRequest::new(&data).utility(&u).plan(RunConfig::seeded(21));
        let e = BanzhafMethod { config }.explain(&model, &req).unwrap();
        assert_eq!(e.as_valuation().unwrap().values, legacy.values);
    }

    #[test]
    fn tmc_honours_a_sequential_budget_and_rejects_a_parallel_one() {
        let u = additive(8);
        let data = german_credit(20, 12);
        let model = fit_model(&data);
        let budget = SampleBudget::with_max_evals(40);
        let req = ExplainRequest::new(&data)
            .utility(&u)
            .plan(RunConfig::seeded(4).with_budget(budget));
        let e = TmcMethod::default().explain(&model, &req).unwrap();
        assert_eq!(e.as_valuation().unwrap().values.len(), 8);

        let req = ExplainRequest::new(&data)
            .utility(&u)
            .plan(RunConfig::seeded(4).with_budget(budget).with_workers(2));
        assert!(matches!(
            TmcMethod::default().explain(&model, &req),
            Err(XaiError::Unsupported { .. })
        ));
        let req = ExplainRequest::new(&data)
            .utility(&u)
            .plan(RunConfig::seeded(4).with_budget(budget));
        assert!(matches!(
            LooMethod.explain(&model, &req),
            Err(XaiError::Unsupported { .. })
        ));
    }

    #[test]
    fn default_utility_retrains_logistic_on_the_request_data() {
        let data = german_credit(16, 13);
        let model = fit_model(&data);
        let req = ExplainRequest::new(&data).plan(RunConfig::seeded(2));
        let e = LooMethod.explain(&model, &req).unwrap();
        let vals = &e.as_valuation().unwrap().values;
        assert_eq!(vals.len(), data.n_rows());
        assert!(vals.iter().all(|v| v.is_finite()));
        // Sanity: the unused oracle really is unused — a regressor fit
        // elsewhere gives the same valuation.
        let other = xai_models::LinearRegression::fit(
            data.x(),
            data.y(),
            xai_models::LinearConfig::default(),
        )
        .unwrap();
        let _ = other.predict_one(data.row(0));
        let e2 = LooMethod.explain(&other, &req).unwrap();
        assert_eq!(e2.as_valuation().unwrap().values, *vals);
    }
}
