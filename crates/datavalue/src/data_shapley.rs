//! Data Shapley with Truncated Monte Carlo estimation
//! (Ghorbani & Zou, §2.3.1 \[24\]).
//!
//! TMC-Shapley makes the exponential exact computation practical: sample a
//! random permutation of the training points, walk it accumulating
//! marginal utility contributions, and **truncate** the walk once the
//! running utility is within a tolerance of the full-data utility (later
//! points then contribute ~0). Estimates are unbiased up to the truncation
//! tolerance and converge at the Monte-Carlo rate.

use crate::utility::{check_finite_values, Utility};
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;
use xai_core::{catch_model, DataAttribution, SampleBudget, XaiError, XaiResult};

/// Configuration for [`tmc_shapley`].
#[derive(Clone, Copy, Debug)]
pub struct TmcConfig {
    /// Number of sampled permutations.
    pub permutations: usize,
    /// Truncate a walk when `|U(D) − U(prefix)| <` this tolerance.
    pub truncation_tolerance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TmcConfig {
    fn default() -> Self {
        Self { permutations: 100, truncation_tolerance: 0.01, seed: 0 }
    }
}

/// Result of a TMC run.
#[derive(Clone, Debug)]
pub struct TmcResult {
    /// The Shapley value estimates.
    pub attribution: DataAttribution,
    /// Utility evaluations actually performed (the truncation savings show
    /// up here: without truncation this would be `permutations · n`).
    pub utility_calls: usize,
}

/// Runs TMC-Shapley.
///
/// # Panics
/// Panics when the utility panics or returns non-finite scores; use
/// [`try_tmc_shapley`] for typed errors.
pub fn tmc_shapley(utility: &dyn Utility, config: TmcConfig) -> TmcResult {
    try_tmc_shapley(utility, config).expect("TMC-Shapley failed; try_tmc_shapley recovers this")
}

/// Fallible twin of [`tmc_shapley`]: a utility that panics or returns
/// non-finite scores yields [`XaiError::ModelFault`] instead of unwinding
/// or leaking NaN into the estimate.
pub fn try_tmc_shapley(utility: &dyn Utility, config: TmcConfig) -> XaiResult<TmcResult> {
    try_tmc_shapley_budgeted(utility, config, SampleBudget::unlimited())
}

/// Budget-aware fallible TMC-Shapley: stops drawing permutation walks
/// once `budget` is exhausted (metered in utility evaluations, including
/// the two endpoint evaluations) and returns the **best-effort partial
/// estimate** built from the walks that did complete — averaged over that
/// count. Fails with [`XaiError::BudgetExceeded`] only when the budget
/// expires before the first walk. With an eval cap the truncation point
/// is deterministic; with a wall-clock deadline it is machine-dependent.
pub fn try_tmc_shapley_budgeted(
    utility: &dyn Utility,
    config: TmcConfig,
    budget: SampleBudget,
) -> XaiResult<TmcResult> {
    assert!(config.permutations > 0);
    let n = utility.n_train();
    let all: Vec<usize> = (0..n).collect();
    let (full_score, empty_score) = catch_model("TMC endpoint evaluation", || {
        (utility.eval(&all), utility.eval(&[]))
    })?;
    if !full_score.is_finite() || !empty_score.is_finite() {
        return Err(XaiError::ModelFault {
            context: format!("TMC endpoints: U(D) = {full_score}, U(∅) = {empty_score}"),
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sums = vec![0.0; n];
    let mut calls = 2usize;
    let mut perm: Vec<usize> = (0..n).collect();
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    let mut meter = budget.start();
    meter.record(2);
    let mut done = 0usize;
    for _ in 0..config.permutations {
        if meter.exhausted() {
            break;
        }
        perm.shuffle(&mut rng);
        // Each point joins a walk at most once, so per-point marginals can
        // be collected under panic isolation and accumulated afterwards
        // without changing the floating-point result.
        let (marginals, walk_calls) = catch_model("TMC permutation walk", || {
            prefix.clear();
            let mut marg = vec![0.0; n];
            let mut walk_calls = 0usize;
            let mut prev = empty_score;
            for &point in &perm {
                // Truncation: once the prefix utility has converged to the
                // full-data utility, remaining marginals are ~0.
                if (full_score - prev).abs() < config.truncation_tolerance {
                    break;
                }
                prefix.push(point);
                let cur = utility.eval(&prefix);
                walk_calls += 1;
                marg[point] = cur - prev;
                prev = cur;
            }
            (marg, walk_calls)
        })?;
        check_finite_values(&marginals, "TMC permutation walk")?;
        for (point, &m) in marginals.iter().enumerate() {
            sums[point] += m;
        }
        calls += walk_calls;
        meter.record(walk_calls);
        done += 1;
    }
    if done == 0 {
        return Err(XaiError::BudgetExceeded {
            context: "TMC-Shapley: budget expired before the first permutation walk".into(),
            completed: 0,
        });
    }
    let m = done as f64;
    let values = sums.into_iter().map(|s| s / m).collect();
    Ok(TmcResult {
        attribution: DataAttribution { values, measure: "TMC data Shapley".into() },
        utility_calls: calls,
    })
}

/// Point-removal curve: remove training points in the given order,
/// re-evaluating the utility after each batch — the standard verification
/// plot from Ghorbani & Zou (high-value-first removal should degrade
/// performance fastest). Returns `(n_removed, utility)` pairs.
pub fn removal_curve(
    utility: &dyn Utility,
    order: &[usize],
    batch: usize,
) -> Vec<(usize, f64)> {
    let n = utility.n_train();
    assert!(batch >= 1);
    let mut removed = vec![false; n];
    let mut curve = Vec::new();
    let all: Vec<usize> = (0..n).collect();
    curve.push((0usize, utility.eval(&all)));
    let mut count = 0usize;
    for chunk in order.chunks(batch) {
        for &i in chunk {
            if !removed[i] {
                removed[i] = true;
                count += 1;
            }
        }
        let keep: Vec<usize> = (0..n).filter(|&i| !removed[i]).collect();
        curve.push((count, utility.eval(&keep)));
        if keep.is_empty() {
            break;
        }
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loo::exact_data_shapley;
    use crate::utility::{FnUtility, LogisticUtility};
    use xai_data::inject_label_noise;
    use xai_data::synth::linear_gaussian;
    use xai_models::LogisticConfig;

    #[test]
    fn converges_to_exact_on_a_small_game() {
        let u = FnUtility::new(6, |s: &[usize]| {
            let base: f64 = s.iter().map(|&i| (i + 1) as f64 * 0.1).sum();
            base + f64::from(s.contains(&0) && s.contains(&5)) * 0.5
        });
        let exact = exact_data_shapley(&u);
        let tmc = tmc_shapley(&u, TmcConfig { permutations: 3000, truncation_tolerance: 0.0, seed: 3 });
        for (a, b) in tmc.attribution.values.iter().zip(&exact.values) {
            assert!((a - b).abs() < 0.03, "{a} vs {b}");
        }
    }

    #[test]
    fn truncation_saves_calls_without_destroying_estimates() {
        let u = FnUtility::new(12, |s: &[usize]| 1.0 - 0.5f64.powi(s.len() as i32));
        let no_trunc = tmc_shapley(&u, TmcConfig { permutations: 150, truncation_tolerance: 0.0, seed: 5 });
        let trunc = tmc_shapley(&u, TmcConfig { permutations: 150, truncation_tolerance: 0.02, seed: 5 });
        assert!(
            trunc.utility_calls < no_trunc.utility_calls * 6 / 10,
            "truncation should cut calls substantially: {} vs {}",
            trunc.utility_calls,
            no_trunc.utility_calls
        );
        // Totals stay close (efficiency is preserved up to truncation).
        let sum_a: f64 = no_trunc.attribution.values.iter().sum();
        let sum_b: f64 = trunc.attribution.values.iter().sum();
        assert!((sum_a - sum_b).abs() < 0.1, "{sum_a} vs {sum_b}");
    }

    #[test]
    fn corrupted_labels_get_low_values() {
        let mut train = linear_gaussian(60, &[3.0, -2.0], 0.0, 21);
        let test = linear_gaussian(200, &[3.0, -2.0], 0.0, 22);
        let guilty = inject_label_noise(&mut train, 0.15, 7);
        let u = LogisticUtility::new(&train, &test, LogisticConfig::default());
        let tmc = tmc_shapley(&u, TmcConfig { permutations: 120, truncation_tolerance: 0.005, seed: 9 });
        let p_at_k = tmc.attribution.precision_at_k(&guilty, guilty.len());
        // Random guessing would score ~0.15; Shapley should do much better.
        assert!(p_at_k > 0.45, "precision@k = {p_at_k}");
    }

    #[test]
    fn removal_curve_shape() {
        let u = FnUtility::new(8, |s: &[usize]| s.iter().map(|&i| (i as f64 + 1.0) / 8.0).sum());
        // Remove most valuable first (descending index value).
        let order: Vec<usize> = (0..8).rev().collect();
        let curve = removal_curve(&u, &order, 2);
        assert_eq!(curve[0].0, 0);
        // Utility must be non-increasing for an additive monotone utility.
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        assert_eq!(curve.last().unwrap().0, 8);
    }

    #[test]
    fn deterministic_under_seed() {
        let u = FnUtility::new(6, |s: &[usize]| s.len() as f64);
        let a = tmc_shapley(&u, TmcConfig::default());
        let b = tmc_shapley(&u, TmcConfig::default());
        assert_eq!(a.attribution.values, b.attribution.values);
    }
}
