//! # xai-datavalue
//!
//! Training-data-based explanations (tutorial §2.3): attribute model
//! behaviour to *training points* rather than features.
//!
//! - [`utility`] — the subset-utility abstraction all valuation methods
//!   share (learner × metric);
//! - [`loo`] — leave-one-out and exact retraining-Shapley ground truths;
//! - [`data_shapley`] — TMC-Shapley with truncation, plus removal curves;
//! - [`mod@knn_shapley`] — exact `O(n log n)` Shapley values for kNN utilities;
//! - [`distributional`] — distribution-level values stable under dataset
//!   resampling;
//! - [`influence`] — Koh–Liang influence functions (Cholesky and
//!   conjugate-gradient paths) with retraining validation;
//! - [`incremental`] — the incremental-training utility engine: one live
//!   model mutated by rank-one add/remove-row deltas instead of retrained
//!   per subset;
//! - [`group`] — first-order vs curvature-aware group influence;
//! - [`tree_influence`] — LeafInfluence-style attribution for GBDTs with
//!   fixed structure.

pub mod banzhaf;
pub mod data_shapley;
pub mod distributional;
pub mod explainer;
pub mod group;
pub mod incremental;
pub mod influence;
pub mod knn_shapley;
pub mod loo;
pub mod parallel;
pub mod tree_influence;
pub mod utility;

pub use banzhaf::{
    data_banzhaf, exact_data_banzhaf, try_data_banzhaf, try_data_banzhaf_budgeted, BanzhafConfig,
};
pub use data_shapley::{
    removal_curve, tmc_shapley, try_tmc_shapley, try_tmc_shapley_budgeted, TmcConfig, TmcResult,
};
pub use explainer::{BanzhafMethod, LooMethod, TmcMethod};
pub use distributional::{distributional_shapley, DistributionalConfig};
pub use group::{
    group_influence_first_order, group_influence_newton, group_removal_ground_truth,
    relative_error,
};
pub use incremental::{
    data_banzhaf_incremental, leave_one_out_incremental, tmc_shapley_incremental,
    try_data_banzhaf_incremental, try_leave_one_out_incremental, try_tmc_shapley_incremental,
    IncrementalModel, IncrementalStats, IncrementalUtility, RidgeUtility, RidgeValuationModel,
    WarmLogisticModel,
};
pub use influence::{
    influence_on_test_loss, removal_parameter_change, retraining_ground_truth, Solver,
};
pub use knn_shapley::{knn_shapley, knn_shapley_single};
#[allow(deprecated)] // re-export keeps the legacy twins reachable during migration
pub use parallel::{
    data_banzhaf_parallel, tmc_shapley_parallel, try_data_banzhaf_parallel,
    try_tmc_shapley_parallel,
};
#[allow(deprecated)] // re-export keeps the legacy twins reachable during migration
pub use loo::{
    exact_data_shapley, leave_one_out, leave_one_out_parallel, try_leave_one_out,
    try_leave_one_out_parallel,
};
pub use tree_influence::{
    fixed_structure_ground_truth, fixed_structure_retrain, leaf_influence_first_order,
};
pub use utility::{CachedUtility, FnUtility, KnnUtility, LogisticUtility, Utility};
