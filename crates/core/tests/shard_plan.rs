//! Seeded property suite for the shard plan layer (DESIGN.md §11):
//! shard ranges are disjoint and covering, descriptors survive a JSON
//! round trip byte-for-byte, and merging shard results in any arrival
//! order is byte-identical. Runs against a toy `ShardableExplainer`
//! whose chunk payloads are pure functions of `child_seed(seed, chunk)`,
//! so every property is exercised without the cost of a real estimator.

use xai_core::shard::{
    build_descriptors, chunks_json, execute_descriptor, explain_sharded, flatten_chunks,
    merge_shard_results, num_field, shard_chunk_ranges, DrawGrid, ShardDescriptor, ShardResult,
    ShardableExplainer,
};
use xai_core::taxonomy::method_card;
use xai_core::{
    DataAttribution, ExplainRequest, Explainer, Explanation, Json, MethodCard, ModelOracle,
    RunConfig, XaiError, XaiResult,
};
use xai_data::synth::german_credit;
use xai_rand::rngs::StdRng;
use xai_rand::{child_seed, Rng, SeedableRng};

/// A deterministic stand-in estimator: chunk `c` contributes the sum of
/// its draws from stream `child_seed(seed, c)`, and the merge folds the
/// per-chunk sums in order. Cheap, seeded, and sensitive to any chunk
/// lost, duplicated or reordered.
struct ToyMethod {
    draws: usize,
}

const CHUNK: usize = 3;

impl Explainer for ToyMethod {
    fn card(&self) -> MethodCard {
        // The card only supplies the descriptor's method name here.
        method_card("Kernel SHAP")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        let grid = self.draw_grid(req)?;
        let partial = self.explain_chunks(model, req, 0..grid.n_chunks())?;
        self.merge_chunks(model, req, vec![partial])
    }
}

impl ShardableExplainer for ToyMethod {
    fn draw_grid(&self, _req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        Ok(DrawGrid { total_draws: self.draws, chunk_size: CHUNK })
    }

    fn explain_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let grid = self.draw_grid(req)?;
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let mut rng = StdRng::seed_from_u64(child_seed(req.plan.seed, c as u64));
            let sum: f64 = grid.chunk_range(c).map(|_| rng.gen::<f64>()).sum();
            out.push(Json::obj(vec![("sum", Json::Num(sum))]));
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        let grid = self.draw_grid(req)?;
        let flat = flatten_chunks(&partials, "toy merge")?;
        if flat.len() != grid.n_chunks() {
            return Err(XaiError::Parse {
                context: format!("toy merge: {} chunks for {}", flat.len(), grid.n_chunks()),
            });
        }
        let mut total = 0.0;
        for c in &flat {
            total += num_field(c, "sum", "toy merge")?;
        }
        Ok(Explanation::DataValuation(DataAttribution {
            values: vec![total],
            measure: "toy chunk sum".into(),
        }))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![("draws", Json::Num(self.draws as f64))])
    }
}

struct NullModel;

impl ModelOracle for NullModel {
    fn n_features(&self) -> usize {
        7
    }
    fn predict(&self, _x: &[f64]) -> f64 {
        0.0
    }
}

fn toy_model_json() -> Json {
    Json::obj(vec![("kind", Json::str("toy"))])
}

#[test]
fn shards_are_disjoint_and_cover_the_full_draw_range() {
    let data = german_credit(10, 5);
    for draws in [0usize, 1, 3, 7, 16, 41] {
        let method = ToyMethod { draws };
        let req = ExplainRequest::new(&data).plan(RunConfig::seeded(9));
        let grid = method.draw_grid(&req).unwrap();
        for n_shards in 1..9 {
            let descs =
                build_descriptors(&method, &req, toy_model_json(), n_shards).unwrap();
            assert_eq!(descs.len(), n_shards, "one descriptor per shard");
            // Contiguous tiling of the chunk index space, in shard order.
            let mut next = 0;
            for (s, d) in descs.iter().enumerate() {
                assert_eq!(d.shard, s);
                assert_eq!(d.n_shards, n_shards);
                assert_eq!(d.chunk_start, next, "shards must tile without gaps");
                assert!(d.chunk_end >= d.chunk_start, "ranges must be forward");
                next = d.chunk_end;
            }
            assert_eq!(next, grid.n_chunks(), "shards must cover every chunk");
            // Every descriptor carries the same grid coordinates.
            for d in &descs {
                assert_eq!(d.grid(), grid);
            }
        }
    }
}

#[test]
fn shard_ranges_stay_balanced() {
    for n_chunks in 0..50 {
        for n_shards in 1..12 {
            let bounds = shard_chunk_ranges(n_chunks, n_shards);
            let sizes: Vec<usize> = bounds.iter().map(|(a, b)| b - a).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "unbalanced split {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), n_chunks);
        }
    }
}

#[test]
fn descriptors_are_stable_under_json_round_trip() {
    let data = german_credit(12, 3);
    let row = data.row(0).to_vec();
    let method = ToyMethod { draws: 17 };
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(42).with_workers(3));
    for d in build_descriptors(&method, &req, toy_model_json(), 4).unwrap() {
        let text = d.to_json_string();
        let parsed = ShardDescriptor::from_json_str(&text).unwrap();
        assert_eq!(parsed, d, "round trip must preserve every field");
        assert_eq!(parsed.to_json_string(), text, "canonical text must be a fixed point");
    }
}

#[test]
fn results_are_stable_under_json_round_trip() {
    let data = german_credit(12, 4);
    let method = ToyMethod { draws: 11 };
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(5));
    for d in build_descriptors(&method, &req, toy_model_json(), 3).unwrap() {
        let result = execute_descriptor(&d, &method, &NullModel).unwrap();
        let text = result.to_json_string();
        let parsed = ShardResult::from_json_str(&text).unwrap();
        assert_eq!(parsed, result);
        assert_eq!(parsed.to_json_string(), text);
    }
}

#[test]
fn merging_in_any_shard_order_is_byte_identical() {
    let data = german_credit(12, 6);
    let method = ToyMethod { draws: 23 };
    let model = NullModel;
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(77).with_workers(2));
    let reference = method.explain(&model, &req).unwrap().to_json_string();

    for n_shards in [1usize, 2, 4, 7] {
        let descs = build_descriptors(&method, &req, toy_model_json(), n_shards).unwrap();
        let results: Vec<ShardResult> =
            descs.iter().map(|d| execute_descriptor(d, &method, &model).unwrap()).collect();
        // Arrival order must not matter: identity, reversed, and every
        // rotation all merge to the same bytes.
        let mut orders: Vec<Vec<ShardResult>> = vec![results.clone()];
        let mut reversed = results.clone();
        reversed.reverse();
        orders.push(reversed);
        for rot in 1..results.len() {
            let mut rotated = results.clone();
            rotated.rotate_left(rot);
            orders.push(rotated);
        }
        for order in orders {
            let merged = merge_shard_results(&method, &model, &req, order).unwrap();
            assert_eq!(
                merged.to_json_string(),
                reference,
                "n_shards={n_shards} diverged from the unsharded run"
            );
        }
    }
}

#[test]
fn in_process_sharding_matches_at_every_shard_count() {
    let data = german_credit(12, 8);
    let method = ToyMethod { draws: 29 };
    let model = NullModel;
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(3).with_workers(2));
    let reference = method.explain(&model, &req).unwrap().to_json_string();
    for n_shards in [1usize, 2, 4, 7, 11, 29] {
        let sharded = explain_sharded(&method, &model, &req, n_shards).unwrap();
        assert_eq!(sharded.to_json_string(), reference, "n_shards={n_shards}");
    }
}

#[test]
fn incomplete_duplicate_and_mixed_result_sets_are_typed_errors() {
    let data = german_credit(12, 9);
    let method = ToyMethod { draws: 12 };
    let model = NullModel;
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(1));
    let descs = build_descriptors(&method, &req, toy_model_json(), 3).unwrap();
    let results: Vec<ShardResult> =
        descs.iter().map(|d| execute_descriptor(d, &method, &model).unwrap()).collect();

    let missing = results[..2].to_vec();
    assert!(matches!(
        merge_shard_results(&method, &model, &req, missing),
        Err(XaiError::Parse { .. })
    ));

    let mut duplicated = results.clone();
    duplicated[2] = duplicated[0].clone();
    assert!(matches!(
        merge_shard_results(&method, &model, &req, duplicated),
        Err(XaiError::Parse { .. })
    ));

    let mut mixed = results.clone();
    mixed[1].fingerprint = "0000000000000000".into();
    assert!(matches!(
        merge_shard_results(&method, &model, &req, mixed),
        Err(XaiError::Parse { .. })
    ));
}

#[test]
fn requests_with_borrowed_state_cannot_become_descriptors() {
    let data = german_credit(12, 10);
    let background = german_credit(6, 11);
    let method = ToyMethod { draws: 8 };
    let req = ExplainRequest::new(&data)
        .background(background.x())
        .plan(RunConfig::seeded(2));
    assert!(matches!(
        build_descriptors(&method, &req, toy_model_json(), 2),
        Err(XaiError::Unsupported { .. })
    ));
}
