//! Fault-tolerant multi-node shard transport (DESIGN.md §13).
//!
//! The shard layer ([`crate::shard`]) made every sampled estimator a set
//! of self-contained, wire-ready [`ShardDescriptor`]s whose partials
//! merge **bit-identically** to the unsharded run. This module moves
//! those descriptors between machines: a zero-dependency length-prefixed
//! TCP protocol (std `TcpListener`/`TcpStream` only) carries one
//! descriptor per connection to a remote `xai-shard-worker --listen`
//! daemon and one [`ShardResult`] — or a typed shard error envelope —
//! back.
//!
//! Connections are **reused**: each endpoint keeps a pool of idle
//! persistent framed sessions, so a runner shipping many descriptors
//! pays one TCP handshake per concurrent stream, not one per
//! descriptor. A shard-level [`crate::backend::ShardCache`] keyed on
//! (model fingerprint, descriptor hash) answers repeated, retried, or
//! hedged shards without touching the network at all — sound because
//! shard execution is deterministic.
//!
//! The whole design is failure-first, because on a real cluster workers
//! are slow, dead, or lying:
//!
//! - **Frames** ([`write_frame`]/[`read_frame`]) are
//!   `magic ‖ length ‖ payload`; anything else — wrong magic, an absurd
//!   length, truncation — is detected immediately and typed precisely
//!   (garbage is [`XaiError::Parse`], truncation is [`XaiError::Io`]
//!   with [`IoKind::ShortRead`]).
//! - **Retry** is governed by a typed [`RetryPolicy`]: bounded attempts,
//!   exponential backoff, and *deterministic seeded jitter* (SplitMix64
//!   over `child_seed(jitter_seed, shard, attempt)`) so two coordinators
//!   never thundering-herd in lockstep yet every schedule is replayable.
//! - **Hedging**: a shard whose response is slower than
//!   [`ClusterConfig::hedge_after`] is re-dispatched to a second
//!   endpoint; the first valid result wins. This is safe *because* shard
//!   execution is deterministic — any worker can re-run any shard and the
//!   bytes are canonical, so duplicated work can never disagree.
//! - **Circuit breaking**: per-endpoint consecutive-failure counters trip
//!   an endpoint open; after [`ClusterConfig::breaker_cooldown`] one
//!   half-open probe is admitted, and its outcome either re-closes or
//!   re-opens the breaker. Shards route around open endpoints, so a dead
//!   machine stops eating retry budget.
//! - **Graceful degradation**: when the entire cluster is unreachable and
//!   [`FallbackPolicy::InProcess`] allows it, the run falls back to the
//!   local [`crate::backend::dispatch_local`] runner and the outcome carries a
//!   `degraded` marker. The *bytes* of the explanation are identical
//!   either way — degradation changes where work ran, never what it
//!   computed.
//!
//! Failure classes stay distinguishable end to end: connection refused is
//! `Io`/[`IoKind::Refused`], a mid-stream disconnect is `Io`/
//! [`IoKind::Reset`] or [`IoKind::ShortRead`], a garbage frame is
//! [`XaiError::Parse`], a worker that exceeds the response deadline is
//! [`XaiError::BudgetExceeded`], and a typed error envelope from the
//! worker ([`XaiError::WorkerPanic`], [`XaiError::ModelFault`], …)
//! passes through unchanged. Envelope errors are *execution* failures —
//! deterministic properties of the shard — so they are never retried and
//! never trigger fallback; transport failures are environmental, so they
//! are retried, re-routed, hedged, and ultimately degradable.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use xai_rand::{child_seed, SplitMix64};

use crate::backend::{BackendJob, ShardCache};
use crate::error::{IoKind, XaiError, XaiResult};
use crate::explainer::{ExplainRequest, Explanation, ModelOracle};
use crate::report::Json;
use crate::shard::{
    error_from_json, error_to_json, is_error_envelope, wire_error, ShardDescriptor, ShardResult,
    ShardableExplainer,
};

// ---------------------------------------------------------------------------
// The wire frame
// ---------------------------------------------------------------------------

/// Frame magic: four fixed bytes so a stray HTTP client (or a worker
/// writing garbage) is rejected on the first read, not after buffering
/// an attacker-chosen length.
pub const FRAME_MAGIC: [u8; 4] = *b"XAI1";

/// Hard ceiling on a frame payload. Descriptors carry whole datasets, so
/// the limit is generous — but a garbage length field must never make
/// the peer allocate unbounded memory.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Writes one `magic ‖ u32-be length ‖ payload` frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8], what: &str) -> XaiResult<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(wire_error(format!(
            "{what}: frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            payload.len()
        )));
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)
        .map_err(|e| XaiError::from_io(&e, format_args!("{what}: writing frame header")))?;
    w.write_all(payload)
        .map_err(|e| XaiError::from_io(&e, format_args!("{what}: writing frame payload")))?;
    w.flush().map_err(|e| XaiError::from_io(&e, format_args!("{what}: flushing frame")))
}

/// Reads one frame, enforcing magic and the length cap. Truncation at
/// any point is `Io`/[`IoKind::ShortRead`]; an OS read deadline is
/// `Io`/[`IoKind::Timeout`]; a wrong magic or absurd length is a typed
/// [`XaiError::Parse`] (the peer is speaking, but not our protocol).
pub fn read_frame(r: &mut impl Read, what: &str) -> XaiResult<Vec<u8>> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)
        .map_err(|e| XaiError::from_io(&e, format_args!("{what}: reading frame header")))?;
    read_frame_body(r, header, what)
}

/// Reads one frame, or `None` when the peer closed the connection
/// cleanly *before any header byte* — the signal that a persistent
/// session is done. EOF mid-header is still a short read, exactly as in
/// [`read_frame`].
pub fn read_frame_or_eof(r: &mut impl Read, what: &str) -> XaiResult<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                return Err(XaiError::from_io(&e, format_args!("{what}: reading frame header")))
            }
        }
    }
    let mut header = [0u8; 8];
    header[0] = first[0];
    r.read_exact(&mut header[1..])
        .map_err(|e| XaiError::from_io(&e, format_args!("{what}: reading frame header")))?;
    read_frame_body(r, header, what).map(Some)
}

/// Validates a frame header and reads the payload behind it.
fn read_frame_body(r: &mut impl Read, header: [u8; 8], what: &str) -> XaiResult<Vec<u8>> {
    if header[..4] != FRAME_MAGIC {
        return Err(wire_error(format!(
            "{what}: bad frame magic {:02x}{:02x}{:02x}{:02x} (garbage frame)",
            header[0], header[1], header[2], header[3]
        )));
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(wire_error(format!(
            "{what}: frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap (garbage frame)"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| XaiError::from_io(&e, format_args!("{what}: reading {len}-byte frame payload")))?;
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Retry policy: bounded attempts, exponential backoff, seeded jitter
// ---------------------------------------------------------------------------

/// How a shard's transport attempts are paced. Attempts are bounded,
/// backoff grows exponentially up to a cap, and jitter is drawn from a
/// seeded SplitMix64 stream keyed on `(jitter_seed, shard, attempt)` —
/// deterministic, so a fault schedule replays identically, yet distinct
/// across shards so synchronized retries spread out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total dispatch attempts per shard (>= 1). Hedged duplicates do not
    /// count against this bound.
    pub max_attempts: usize,
    /// Backoff before the second attempt; doubles each further attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep, jitter included.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based count of failures
    /// so far) of `shard`: `min(base · 2^attempt, max) + jitter`, capped
    /// at `max_backoff`. Pure — same inputs, same duration.
    pub fn backoff(&self, shard: usize, attempt: usize) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(2u32.saturating_pow(attempt.min(16) as u32))
            .min(self.max_backoff);
        let mut stream =
            SplitMix64::new(child_seed(child_seed(self.jitter_seed, shard as u64), attempt as u64));
        let frac = (stream.next() >> 11) as f64 / (1u64 << 53) as f64;
        (exp + self.base_backoff.mul_f64(frac)).min(self.max_backoff)
    }
}

// ---------------------------------------------------------------------------
// Endpoint health: consecutive-failure circuit breaker with half-open probes
// ---------------------------------------------------------------------------

/// Where an endpoint's circuit breaker stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are routed elsewhere until the cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome re-closes or re-opens.
    HalfOpen,
}

/// Point-in-time view of one endpoint's health, for tests and operators.
#[derive(Clone, Debug)]
pub struct EndpointHealth {
    /// The endpoint address as configured.
    pub addr: String,
    /// Breaker state at snapshot time.
    pub state: BreakerState,
    /// Consecutive transport failures since the last success.
    pub consecutive_failures: usize,
    /// Total successful round trips.
    pub successes: u64,
    /// Total failed round trips.
    pub failures: u64,
    /// Times the breaker tripped open.
    pub trips: u64,
}

struct EndpointSlot {
    state: BreakerState,
    opened_at: Option<Instant>,
    consecutive_failures: usize,
    successes: u64,
    failures: u64,
    trips: u64,
}

/// Shared per-endpoint health book-keeping for one [`ClusterRunner`].
pub struct HealthTracker {
    addrs: Vec<String>,
    threshold: usize,
    cooldown: Duration,
    slots: Mutex<Vec<EndpointSlot>>,
}

impl HealthTracker {
    /// A tracker over `addrs` tripping after `threshold` consecutive
    /// failures, probing again after `cooldown`.
    pub fn new(addrs: Vec<String>, threshold: usize, cooldown: Duration) -> Self {
        assert!(threshold >= 1, "breaker threshold must be at least 1");
        let slots = addrs
            .iter()
            .map(|_| EndpointSlot {
                state: BreakerState::Closed,
                opened_at: None,
                consecutive_failures: 0,
                successes: 0,
                failures: 0,
                trips: 0,
            })
            .collect();
        HealthTracker { addrs, threshold, cooldown, slots: Mutex::new(slots) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<EndpointSlot>> {
        self.slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether endpoint `i` may receive a request right now. A closed
    /// breaker admits; an open one admits a single half-open probe once
    /// the cooldown has elapsed; a half-open one is already probing, so
    /// further traffic keeps routing around it.
    pub fn admit(&self, i: usize) -> bool {
        let mut slots = self.lock();
        let slot = &mut slots[i];
        match slot.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let due = slot
                    .opened_at
                    .map(|t| t.elapsed() >= self.cooldown)
                    .unwrap_or(true);
                if due {
                    slot.state = BreakerState::HalfOpen;
                }
                due
            }
        }
    }

    /// Records a successful round trip: the breaker re-closes.
    pub fn record_success(&self, i: usize) {
        let mut slots = self.lock();
        let slot = &mut slots[i];
        slot.successes += 1;
        slot.consecutive_failures = 0;
        slot.state = BreakerState::Closed;
        slot.opened_at = None;
    }

    /// Records a transport failure: a failed half-open probe re-opens
    /// immediately; a closed breaker trips once `threshold` consecutive
    /// failures accumulate.
    pub fn record_failure(&self, i: usize) {
        let mut slots = self.lock();
        let slot = &mut slots[i];
        slot.failures += 1;
        slot.consecutive_failures += 1;
        let trip = match slot.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => slot.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            slot.state = BreakerState::Open;
            slot.opened_at = Some(Instant::now());
            slot.trips += 1;
        }
    }

    /// Snapshot of every endpoint's health.
    pub fn snapshot(&self) -> Vec<EndpointHealth> {
        let slots = self.lock();
        self.addrs
            .iter()
            .zip(slots.iter())
            .map(|(addr, s)| EndpointHealth {
                addr: addr.clone(),
                state: s.state,
                consecutive_failures: s.consecutive_failures,
                successes: s.successes,
                failures: s.failures,
                trips: s.trips,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Cluster configuration
// ---------------------------------------------------------------------------

/// What to do when the cluster is entirely unavailable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Re-run the whole plan on the local in-process runner and mark the
    /// outcome `degraded`. The bytes are identical — determinism makes
    /// the fallback invisible in the result, visible in the marker.
    InProcess,
    /// Surface the transport error to the caller.
    Fail,
}

/// Configuration for a [`ClusterRunner`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Worker daemon endpoints, `"host:port"`.
    pub endpoints: Vec<String>,
    /// TCP connect deadline per attempt.
    pub connect_timeout: Duration,
    /// Socket read/write deadline. A worker that takes longer than this
    /// to answer is treated as past its deadline
    /// ([`XaiError::BudgetExceeded`]) and re-dispatched.
    pub io_timeout: Duration,
    /// Retry pacing (attempts, backoff, seeded jitter).
    pub retry: RetryPolicy,
    /// Straggler threshold: when a response takes longer than this, the
    /// shard is hedged onto a second endpoint and the first valid result
    /// wins. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Consecutive transport failures before an endpoint's breaker trips.
    pub breaker_threshold: usize,
    /// How long a tripped breaker waits before admitting a half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// Behaviour when every endpoint is unavailable.
    pub fallback: FallbackPolicy,
    /// Capacity of the shard-level result cache
    /// ([`crate::backend::ShardCache`]): repeated, retried, or hedged
    /// shards with an identical (fingerprint, descriptor) key are
    /// answered from cache instead of the network. Zero disables it.
    pub shard_cache_capacity: usize,
}

impl ClusterConfig {
    /// A config over `endpoints` with production-shaped defaults: 2 s
    /// connects, 60 s responses, three attempts with 50 ms–2 s backoff,
    /// no hedging, breaker at 3 consecutive failures with a 1 s cooldown,
    /// in-process fallback, and a 256-entry shard cache.
    pub fn new<I, S>(endpoints: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ClusterConfig {
            endpoints: endpoints.into_iter().map(Into::into).collect(),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(60),
            retry: RetryPolicy::default(),
            hedge_after: None,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            fallback: FallbackPolicy::InProcess,
            shard_cache_capacity: 256,
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster statistics
// ---------------------------------------------------------------------------

/// Counters describing what a [`ClusterRunner`] did. Scheduling-dependent
/// (how many retries a flaky endpoint cost), but the *result bytes* never
/// are.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Transport dispatches, hedges included.
    pub attempts: u64,
    /// Attempt loops entered beyond each shard's first.
    pub retries: u64,
    /// Hedge dispatches launched for stragglers.
    pub hedges: u64,
    /// Shards won by the hedge rather than the primary.
    pub hedge_wins: u64,
    /// Transport-class failures observed (refused, reset, short read,
    /// timeout, garbage frame, deadline).
    pub transport_failures: u64,
    /// Breaker trips across all endpoints.
    pub breaker_trips: u64,
    /// Whether the last `explain` fell back to the in-process runner.
    pub degraded: bool,
    /// Fresh TCP connections opened (handshakes paid).
    pub connections_opened: u64,
    /// Round trips that started on a pooled persistent session.
    pub sessions_reused: u64,
    /// Shards answered from the shard-level result cache.
    pub shard_cache_hits: u64,
    /// Shards that missed the shard-level result cache.
    pub shard_cache_misses: u64,
}

#[derive(Default)]
struct Counters {
    attempts: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    transport_failures: AtomicU64,
    degraded: AtomicU64,
    connections_opened: AtomicU64,
    sessions_reused: AtomicU64,
}

// ---------------------------------------------------------------------------
// Persistent sessions
// ---------------------------------------------------------------------------

/// Idle persistent connections to one endpoint. A round trip checks a
/// stream out, and a *healthy* round trip (success or a typed execution
/// envelope) checks it back in; transport failures drop the stream, so
/// the pool only ever holds connections whose last frame exchange was
/// clean.
struct SessionPool {
    idle: Mutex<Vec<TcpStream>>,
}

/// Idle streams kept per endpoint. Beyond this, returned streams are
/// simply closed — enough to cover the executor's concurrency without
/// hoarding sockets.
const MAX_IDLE_SESSIONS: usize = 8;

impl SessionPool {
    fn new() -> Self {
        SessionPool { idle: Mutex::new(Vec::new()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TcpStream>> {
        self.idle.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.lock().pop()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.lock();
        if idle.len() < MAX_IDLE_SESSIONS {
            idle.push(stream);
        }
    }
}

// ---------------------------------------------------------------------------
// Failure classification
// ---------------------------------------------------------------------------

/// Why a shard could not be completed over the wire. Transport failures
/// are environmental (retryable, hedgeable, degradable); execution
/// failures came back in a typed envelope from a worker that ran the
/// shard — deterministic, so retrying or falling back cannot change them.
pub(crate) enum ShardFailure {
    Transport(XaiError),
    Execution(XaiError),
}

impl ShardFailure {
    pub(crate) fn into_error(self) -> XaiError {
        match self {
            ShardFailure::Transport(e) | ShardFailure::Execution(e) => e,
        }
    }

    /// Whether this failure is a deterministic execution envelope (never
    /// retried, never degraded) rather than an environmental one.
    pub(crate) fn is_execution(&self) -> bool {
        matches!(self, ShardFailure::Execution(_))
    }
}

// ---------------------------------------------------------------------------
// One TCP round trip
// ---------------------------------------------------------------------------

/// Ships `payload` (a descriptor's canonical JSON) to `addr` and decodes
/// the response, preferring an idle persistent session from `sessions`
/// over a fresh TCP connect. Streams return to the pool after every
/// healthy exchange (including typed execution envelopes — the
/// *connection* worked). A daemon may close an idle pooled stream at any
/// time, so a transport failure on a reused stream gets one transparent
/// fresh-connection retry; failures on fresh connections always surface.
/// Every failure mode maps onto a distinguishable class — see the module
/// docs.
fn request_once(
    addr: SocketAddr,
    label: &str,
    payload: &[u8],
    shard: usize,
    connect_timeout: Duration,
    io_timeout: Duration,
    sessions: &SessionPool,
    counters: &Counters,
) -> Result<ShardResult, ShardFailure> {
    let what = format!("shard {shard} -> {label}");
    if let Some(stream) = sessions.checkout() {
        counters.sessions_reused.fetch_add(1, Ordering::Relaxed);
        match roundtrip(&stream, payload, shard, io_timeout, &what) {
            Ok(result) => {
                sessions.checkin(stream);
                return Ok(result);
            }
            Err(ShardFailure::Execution(e)) => {
                sessions.checkin(stream);
                return Err(ShardFailure::Execution(e));
            }
            // A stale session (the daemon closed it while idle); drop
            // the stream and fall through to a fresh connection.
            Err(ShardFailure::Transport(_)) => {}
        }
    }
    let stream = TcpStream::connect_timeout(&addr, connect_timeout)
        .map_err(|e| {
            ShardFailure::Transport(XaiError::from_io(&e, format_args!("{what}: connect")))
        })?;
    counters.connections_opened.fetch_add(1, Ordering::Relaxed);
    match roundtrip(&stream, payload, shard, io_timeout, &what) {
        Ok(result) => {
            sessions.checkin(stream);
            Ok(result)
        }
        Err(ShardFailure::Execution(e)) => {
            sessions.checkin(stream);
            Err(ShardFailure::Execution(e))
        }
        Err(failure) => Err(failure),
    }
}

/// One framed exchange on an established stream.
fn roundtrip(
    stream: &TcpStream,
    payload: &[u8],
    shard: usize,
    io_timeout: Duration,
    what: &str,
) -> Result<ShardResult, ShardFailure> {
    let transport = ShardFailure::Transport;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    write_frame(&mut &*stream, payload, what).map_err(ShardFailure::Transport)?;
    let bytes = match read_frame(&mut &*stream, what) {
        Ok(bytes) => bytes,
        // An expired read deadline while waiting for the response is the
        // worker blowing its per-shard deadline, not a socket mishap.
        Err(XaiError::Io { kind: IoKind::Timeout, .. }) => {
            return Err(transport(XaiError::BudgetExceeded {
                context: format!("{what}: no response within the {io_timeout:?} deadline"),
                completed: 0,
            }))
        }
        Err(e) => return Err(transport(e)),
    };
    let text = String::from_utf8(bytes)
        .map_err(|_| transport(wire_error(format!("{what}: response is not UTF-8"))))?;
    let json = crate::json_parse::parse_json(&text).map_err(|_| {
        transport(wire_error(format!(
            "{what}: unparseable response frame ({} bytes)",
            text.len()
        )))
    })?;
    if is_error_envelope(&json) {
        let err = match error_from_json(&json).map_err(ShardFailure::Transport)? {
            // The worker may not know its shard index at panic time.
            XaiError::WorkerPanic { message, .. } => XaiError::WorkerPanic { task: shard, message },
            other => other,
        };
        return Err(ShardFailure::Execution(err));
    }
    let result = ShardResult::from_json(&json).map_err(ShardFailure::Transport)?;
    if result.shard != shard {
        return Err(transport(wire_error(format!(
            "{what}: worker answered for shard {} (lying worker)",
            result.shard
        ))));
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// The cluster runner
// ---------------------------------------------------------------------------

/// The outcome of a cluster-transported explanation: the explanation
/// itself (bit-identical to the unsharded run whether it came over the
/// wire or from the fallback), whether the run degraded to in-process
/// execution, and the transport statistics.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// The merged explanation.
    pub explanation: Explanation,
    /// True when the cluster was unavailable and the run fell back to
    /// the local in-process runner under [`FallbackPolicy::InProcess`].
    pub degraded: bool,
    /// Transport counters at completion.
    pub stats: ClusterStats,
}

/// Failure-first coordinator for shard execution across TCP endpoints.
/// See the module docs for the supervision design.
pub struct ClusterRunner {
    config: ClusterConfig,
    addrs: Vec<SocketAddr>,
    health: HealthTracker,
    counters: Arc<Counters>,
    sessions: Vec<Arc<SessionPool>>,
    shard_cache: Option<ShardCache>,
}

impl ClusterRunner {
    /// Builds a runner, resolving every endpoint. Unparseable endpoint
    /// strings are typed [`XaiError::Parse`] errors; an empty endpoint
    /// list is [`XaiError::Unsupported`].
    pub fn new(config: ClusterConfig) -> XaiResult<ClusterRunner> {
        if config.endpoints.is_empty() {
            return Err(XaiError::Unsupported {
                context: "cluster transport needs at least one endpoint".into(),
            });
        }
        assert!(config.retry.max_attempts >= 1, "need at least one attempt per shard");
        let addrs = config
            .endpoints
            .iter()
            .map(|ep| {
                ep.parse::<SocketAddr>().map_err(|e| {
                    wire_error(format!("cluster endpoint '{ep}' is not a socket address: {e}"))
                })
            })
            .collect::<XaiResult<Vec<SocketAddr>>>()?;
        let health = HealthTracker::new(
            config.endpoints.clone(),
            config.breaker_threshold,
            config.breaker_cooldown,
        );
        let sessions = addrs.iter().map(|_| Arc::new(SessionPool::new())).collect();
        let shard_cache = (config.shard_cache_capacity > 0)
            .then(|| ShardCache::new(config.shard_cache_capacity));
        Ok(ClusterRunner {
            config,
            addrs,
            health,
            counters: Arc::new(Counters::default()),
            sessions,
            shard_cache,
        })
    }

    /// The configuration this runner was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current per-endpoint health (breaker states, counters).
    pub fn health(&self) -> Vec<EndpointHealth> {
        self.health.snapshot()
    }

    /// Current transport counters.
    pub fn stats(&self) -> ClusterStats {
        let cache = self.shard_cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        ClusterStats {
            attempts: self.counters.attempts.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            hedges: self.counters.hedges.load(Ordering::Relaxed),
            hedge_wins: self.counters.hedge_wins.load(Ordering::Relaxed),
            transport_failures: self.counters.transport_failures.load(Ordering::Relaxed),
            breaker_trips: self.health.snapshot().iter().map(|h| h.trips).sum(),
            degraded: self.counters.degraded.load(Ordering::Relaxed) > 0,
            connections_opened: self.counters.connections_opened.load(Ordering::Relaxed),
            sessions_reused: self.counters.sessions_reused.load(Ordering::Relaxed),
            shard_cache_hits: cache.hits,
            shard_cache_misses: cache.misses,
        }
    }

    /// Marks the runner's last run as degraded (set by the backend layer
    /// when a job falls back to in-process execution).
    pub(crate) fn mark_degraded(&self) {
        self.counters.degraded.store(1, Ordering::Relaxed);
    }

    /// First admittable endpoint scanning from `start`, skipping
    /// `exclude`. `None` when every breaker is open and cooling down.
    fn pick_endpoint(&self, start: usize, exclude: Option<usize>) -> Option<usize> {
        let n = self.addrs.len();
        (0..n).map(|k| (start + k) % n).find(|&i| Some(i) != exclude && self.health.admit(i))
    }

    /// Launches one round trip on a detached thread; the result arrives
    /// on `tx` tagged with the endpoint index. Detached is deliberate:
    /// a hedged loser must not block the winner, and every socket
    /// operation carries a deadline, so the thread always terminates.
    fn launch(
        &self,
        endpoint: usize,
        payload: &Arc<[u8]>,
        shard: usize,
        tx: &mpsc::Sender<(usize, Result<ShardResult, ShardFailure>)>,
    ) {
        let addr = self.addrs[endpoint];
        let label = self.config.endpoints[endpoint].clone();
        let payload = Arc::clone(payload);
        let (connect_timeout, io_timeout) = (self.config.connect_timeout, self.config.io_timeout);
        let sessions = Arc::clone(&self.sessions[endpoint]);
        let counters = Arc::clone(&self.counters);
        let tx = tx.clone();
        self.counters.attempts.fetch_add(1, Ordering::Relaxed);
        std::thread::spawn(move || {
            let outcome = request_once(
                addr,
                &label,
                &payload,
                shard,
                connect_timeout,
                io_timeout,
                &sessions,
                &counters,
            );
            let _ = tx.send((endpoint, outcome));
        });
    }

    /// Supervises one shard to completion, consulting the shard cache
    /// first: a hit skips the network entirely, and a fresh success is
    /// inserted so a later retry, hedge, or repeat of the same
    /// (fingerprint, descriptor) key is answered locally.
    fn run_shard(&self, desc: &ShardDescriptor) -> Result<ShardResult, ShardFailure> {
        if let Some(cache) = &self.shard_cache {
            if let Some(result) = cache.get(desc) {
                return Ok(result);
            }
        }
        let outcome = self.run_shard_transport(desc);
        if let (Some(cache), Ok(result)) = (&self.shard_cache, &outcome) {
            cache.insert(desc, result);
        }
        outcome
    }

    /// Supervises one shard over the wire: retry with backoff across
    /// healthy endpoints, hedge stragglers, classify failures.
    fn run_shard_transport(&self, desc: &ShardDescriptor) -> Result<ShardResult, ShardFailure> {
        let payload: Arc<[u8]> = desc.to_json_string().into_bytes().into();
        let shard = desc.shard;
        // Upper bound on one round trip; recv waits are always bounded by
        // this, so a wedged socket can never wedge the supervisor.
        let trip_bound =
            self.config.connect_timeout + self.config.io_timeout * 2 + Duration::from_millis(500);
        let mut last: Option<ShardFailure> = None;
        for attempt in 0..self.config.retry.max_attempts {
            if attempt > 0 {
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.config.retry.backoff(shard, attempt - 1));
            }
            let Some(primary) = self.pick_endpoint(shard + attempt, None) else {
                // Every breaker is open and cooling down. Keep the real
                // failure that tripped them (if any) rather than masking
                // it with this synthetic refusal.
                if last.is_none() {
                    last = Some(ShardFailure::Transport(XaiError::io(
                        IoKind::Refused,
                        format!(
                            "shard {shard}: no admittable endpoint (all circuit breakers open)"
                        ),
                    )));
                }
                continue;
            };
            let (tx, rx) = mpsc::channel();
            self.launch(primary, &payload, shard, &tx);
            let mut inflight = 1usize;
            let mut hedged = false;
            let started = Instant::now();

            // Straggler hedge: if the primary has not answered within
            // `hedge_after`, duplicate the shard onto a second endpoint.
            if let Some(threshold) = self.config.hedge_after {
                match rx.recv_timeout(threshold) {
                    Ok((ep, Ok(result))) => {
                        self.health.record_success(ep);
                        return Ok(result);
                    }
                    Ok((ep, Err(failure))) => {
                        match failure {
                            ShardFailure::Execution(e) => {
                                // The endpoint worked; the shard itself
                                // failed — deterministic, don't retry.
                                self.health.record_success(ep);
                                return Err(ShardFailure::Execution(e));
                            }
                            ShardFailure::Transport(e) => {
                                self.health.record_failure(ep);
                                self.counters.transport_failures.fetch_add(1, Ordering::Relaxed);
                                last = Some(ShardFailure::Transport(e));
                                continue;
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if let Some(secondary) =
                            self.pick_endpoint(shard + attempt + 1, Some(primary))
                        {
                            self.launch(secondary, &payload, shard, &tx);
                            self.counters.hedges.fetch_add(1, Ordering::Relaxed);
                            inflight += 1;
                            hedged = true;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("tx held locally"),
                }
            }

            // Collect until a result wins or every in-flight dispatch of
            // this attempt has failed.
            while inflight > 0 {
                let remaining = trip_bound.saturating_sub(started.elapsed());
                match rx.recv_timeout(remaining) {
                    Ok((ep, Ok(result))) => {
                        self.health.record_success(ep);
                        if hedged && ep != primary {
                            self.counters.hedge_wins.fetch_add(1, Ordering::Relaxed);
                        }
                        return Ok(result);
                    }
                    Ok((ep, Err(ShardFailure::Execution(e)))) => {
                        self.health.record_success(ep);
                        return Err(ShardFailure::Execution(e));
                    }
                    Ok((ep, Err(ShardFailure::Transport(e)))) => {
                        self.health.record_failure(ep);
                        self.counters.transport_failures.fetch_add(1, Ordering::Relaxed);
                        last = Some(ShardFailure::Transport(e));
                        inflight -= 1;
                    }
                    Err(_) => {
                        // The trip bound elapsed with sockets still out —
                        // count it as a blown deadline and move on; the
                        // detached threads die on their own timeouts.
                        self.counters.transport_failures.fetch_add(1, Ordering::Relaxed);
                        last = Some(ShardFailure::Transport(XaiError::BudgetExceeded {
                            context: format!(
                                "shard {shard}: attempt {attempt} exceeded the {trip_bound:?} \
                                 round-trip bound"
                            ),
                            completed: 0,
                        }));
                        break;
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ShardFailure::Transport(XaiError::io(
                IoKind::Other,
                format!("shard {shard}: no transport attempt was possible"),
            ))
        }))
    }

    /// Runs every descriptor, keeping the transport/execution failure
    /// classification — the dispatch core shared with
    /// [`crate::backend::execute_cluster`].
    pub(crate) fn run_classified(
        &self,
        descs: &[ShardDescriptor],
    ) -> Result<Vec<ShardResult>, ShardFailure> {
        let outcomes: Vec<Result<ShardResult, ShardFailure>> = std::thread::scope(|scope| {
            let handles: Vec<_> =
                descs.iter().map(|d| scope.spawn(move || self.run_shard(d))).collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(ShardFailure::Transport(XaiError::io(
                            IoKind::Other,
                            "shard supervisor thread panicked".to_string(),
                        )))
                    })
                })
                .collect()
        });
        // Sequence in shard order so the lowest-indexed failing shard
        // wins deterministically, independent of scheduling.
        outcomes.into_iter().collect()
    }

    /// Executes pre-built descriptors across the cluster and returns the
    /// results in shard order. The transport primitive under
    /// [`ClusterRunner::explain`]; no fallback is applied here.
    pub fn run_descriptors(&self, descs: &[ShardDescriptor]) -> XaiResult<Vec<ShardResult>> {
        self.run_classified(descs).map_err(ShardFailure::into_error)
    }

    /// The whole story: cut the request into `n_shards` descriptors, ship
    /// them to the cluster with retry/hedging/breaker supervision, merge
    /// the results bit-identically to the unsharded run — and, when the
    /// cluster is entirely unavailable and policy allows, fall back to
    /// the in-process runner with a `degraded` marker. A thin constructor
    /// over the shared backend core
    /// ([`crate::backend::execute_cluster`]).
    ///
    /// `model_json` is the model's persisted form (it travels inside each
    /// descriptor); requests carrying borrowed background/test/utility
    /// state are rejected exactly as in
    /// [`crate::shard::build_descriptors`].
    pub fn explain(
        &self,
        explainer: &dyn ShardableExplainer,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        model_json: Json,
        n_shards: usize,
    ) -> XaiResult<ClusterOutcome> {
        let job =
            BackendJob::new(explainer, model, req, n_shards).with_model_json(model_json);
        let outcome = crate::backend::execute_cluster(self, &job)?;
        Ok(ClusterOutcome {
            explanation: outcome.explanation,
            degraded: outcome.degraded,
            stats: self.stats(),
        })
    }
}

/// One-shot convenience over [`ClusterRunner::explain`].
pub fn explain_cluster(
    explainer: &dyn ShardableExplainer,
    model: &dyn ModelOracle,
    req: &ExplainRequest<'_>,
    model_json: Json,
    n_shards: usize,
    config: &ClusterConfig,
) -> XaiResult<ClusterOutcome> {
    ClusterRunner::new(config.clone())?.explain(explainer, model, req, model_json, n_shards)
}

// ---------------------------------------------------------------------------
// The daemon side of one connection
// ---------------------------------------------------------------------------

/// Serves one accepted connection as a persistent framed session: read
/// descriptor frames until the peer closes cleanly, executing each via
/// `execute` and answering with a result frame — or a typed error
/// envelope frame, so the peer always learns *why*. Returns the number
/// of frames served. The executor is a closure because only the facade
/// crate knows how to rebuild models and methods; panics inside it must
/// already be caught there.
pub fn serve_connection(
    stream: &TcpStream,
    io_timeout: Duration,
    execute: &dyn Fn(&str) -> XaiResult<ShardResult>,
) -> XaiResult<u64> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let what = "shard daemon";
    let mut served = 0u64;
    loop {
        let Some(bytes) = read_frame_or_eof(&mut &*stream, what)? else {
            return Ok(served);
        };
        let reply = match String::from_utf8(bytes) {
            Ok(text) => match execute(&text) {
                Ok(result) => result.to_json_string(),
                Err(e) => error_to_json(&e).to_json(),
            },
            Err(_) => error_to_json(&wire_error(format!("{what}: request frame is not UTF-8")))
                .to_json(),
        };
        write_frame(&mut &*stream, reply.as_bytes(), what)?;
        served += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello shard", "test").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor, "test").unwrap(), b"hello shard");
    }

    #[test]
    fn empty_frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"", "test").unwrap();
        assert_eq!(read_frame(&mut Cursor::new(buf), "test").unwrap(), b"");
    }

    #[test]
    fn bad_magic_is_a_parse_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload", "test").unwrap();
        buf[0] = b'H'; // an HTTP client, say
        let err = read_frame(&mut Cursor::new(buf), "test").unwrap_err();
        assert!(matches!(err, XaiError::Parse { .. }), "{err}");
    }

    #[test]
    fn absurd_length_is_a_parse_error_not_an_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf), "test").unwrap_err();
        assert!(matches!(err, XaiError::Parse { .. }), "{err}");
    }

    #[test]
    fn truncation_is_a_short_read_at_any_cut() {
        let mut full = Vec::new();
        write_frame(&mut full, b"0123456789", "test").unwrap();
        for cut in [0, 3, 8, full.len() - 1] {
            let err = read_frame(&mut Cursor::new(full[..cut].to_vec()), "test").unwrap_err();
            assert!(
                matches!(err, XaiError::Io { kind: IoKind::ShortRead, .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 7,
        };
        for shard in 0..4 {
            let mut previous_exp = Duration::ZERO;
            for attempt in 0..6 {
                let a = policy.backoff(shard, attempt);
                let b = policy.backoff(shard, attempt);
                assert_eq!(a, b, "jitter must be a pure function of (seed, shard, attempt)");
                assert!(a <= policy.max_backoff, "backoff {a:?} above cap");
                // The deterministic exponential part grows until capped.
                let exp = policy
                    .base_backoff
                    .saturating_mul(2u32.saturating_pow(attempt as u32))
                    .min(policy.max_backoff);
                assert!(exp >= previous_exp);
                assert!(a >= exp, "jitter only adds");
                previous_exp = exp;
            }
        }
        // Different shards see different jitter (no herd in lockstep).
        let jitters: Vec<Duration> = (0..8).map(|s| policy.backoff(s, 0)).collect();
        assert!(jitters.windows(2).any(|w| w[0] != w[1]), "{jitters:?}");
    }

    #[test]
    fn breaker_trips_after_threshold_and_halfopen_probes() {
        let health =
            HealthTracker::new(vec!["a:1".into(), "b:2".into()], 2, Duration::ZERO);
        assert!(health.admit(0));
        health.record_failure(0);
        assert!(health.admit(0), "one failure below threshold keeps the breaker closed");
        health.record_failure(0);
        let snap = health.snapshot();
        assert_eq!(snap[0].state, BreakerState::Open);
        assert_eq!(snap[0].trips, 1);
        assert_eq!(snap[1].state, BreakerState::Closed, "endpoints are independent");

        // Cooldown ZERO: the next admit is the half-open probe; a second
        // caller keeps being routed around while the probe is out.
        assert!(health.admit(0));
        assert_eq!(health.snapshot()[0].state, BreakerState::HalfOpen);
        assert!(!health.admit(0));

        // Probe fails -> re-open (and a second trip); probe succeeds -> closed.
        health.record_failure(0);
        assert_eq!(health.snapshot()[0].state, BreakerState::Open);
        assert_eq!(health.snapshot()[0].trips, 2);
        assert!(health.admit(0));
        health.record_success(0);
        let snap = health.snapshot();
        assert_eq!(snap[0].state, BreakerState::Closed);
        assert_eq!(snap[0].consecutive_failures, 0);
    }

    #[test]
    fn empty_endpoint_list_is_unsupported_and_bad_addresses_are_parse_errors() {
        let err = ClusterRunner::new(ClusterConfig::new(Vec::<String>::new()))
            .err()
            .expect("empty endpoint list must be rejected");
        assert!(matches!(err, XaiError::Unsupported { .. }), "{err}");
        let err = ClusterRunner::new(ClusterConfig::new(["not-an-address"]))
            .err()
            .expect("bad address must be rejected");
        assert!(matches!(err, XaiError::Parse { .. }), "{err}");
    }
}
