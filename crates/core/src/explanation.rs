//! Shared explanation output types.
//!
//! Each family of methods in the tutorial produces a characteristic output
//! form; the concrete explainers across the workspace all emit these types
//! so downstream code (reports, evaluation, examples) is method-agnostic.

use std::fmt;

/// A real-valued importance score per feature (§2.1).
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureAttribution {
    /// Feature names, in column order.
    pub feature_names: Vec<String>,
    /// One signed score per feature.
    pub values: Vec<f64>,
    /// The reference output the scores are measured against (e.g. the mean
    /// prediction for Shapley-style methods, the surrogate intercept for
    /// LIME).
    pub baseline: f64,
    /// The model output being explained.
    pub prediction: f64,
}

impl FeatureAttribution {
    /// Builds an attribution; names and values must align.
    pub fn new(feature_names: Vec<String>, values: Vec<f64>, baseline: f64, prediction: f64) -> Self {
        assert_eq!(feature_names.len(), values.len(), "name/value arity mismatch");
        Self { feature_names, values, baseline, prediction }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when there are no features.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Feature indices sorted by |score| descending.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&a, &b| {
            self.values[b].abs().total_cmp(&self.values[a].abs()).then(a.cmp(&b))
        });
        idx
    }

    /// The `k` most important `(name, value)` pairs.
    pub fn top_k(&self, k: usize) -> Vec<(&str, f64)> {
        self.ranking()
            .into_iter()
            .take(k)
            .map(|i| (self.feature_names[i].as_str(), self.values[i]))
            .collect()
    }

    /// Additivity gap `|baseline + Σ values − prediction|`; ~0 for methods
    /// that satisfy the efficiency axiom (§2.1.2).
    pub fn efficiency_gap(&self) -> f64 {
        (self.baseline + self.values.iter().sum::<f64>() - self.prediction).abs()
    }

    /// Attribution of a feature by name.
    pub fn value_of(&self, name: &str) -> Option<f64> {
        self.feature_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }
}

impl fmt::Display for FeatureAttribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "prediction {:.4} (baseline {:.4}); contributions:",
            self.prediction, self.baseline
        )?;
        for i in self.ranking() {
            writeln!(f, "  {:>24}: {:+.4}", self.feature_names[i], self.values[i])?;
        }
        Ok(())
    }
}

/// Comparison operator in a rule condition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// `feature <= value`.
    Le,
    /// `feature > value`.
    Gt,
    /// `feature == value` (categorical code).
    Eq,
}

/// One clause of a rule, e.g. `age > 30`.
#[derive(Clone, Debug, PartialEq)]
pub struct Condition {
    /// Feature column index.
    pub feature: usize,
    /// Feature name for display.
    pub feature_name: String,
    /// Comparison operator.
    pub op: Op,
    /// Threshold / category code.
    pub value: f64,
}

impl Condition {
    /// Whether a raw row satisfies this condition.
    pub fn matches(&self, row: &[f64]) -> bool {
        let v = row[self.feature];
        match self.op {
            Op::Le => v <= self.value,
            Op::Gt => v > self.value,
            Op::Eq => (v - self.value).abs() < 1e-9,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Eq => "=",
        };
        write!(f, "{} {} {:.4}", self.feature_name, op, self.value)
    }
}

/// A conjunctive rule with its measured quality (§2.2).
#[derive(Clone, Debug, PartialEq)]
pub struct RuleExplanation {
    /// The clauses, all of which must hold.
    pub conditions: Vec<Condition>,
    /// The outcome the rule anchors/predicts.
    pub prediction: f64,
    /// P(model output = prediction | rule holds), estimated.
    pub precision: f64,
    /// Fraction of the data distribution the rule applies to.
    pub coverage: f64,
}

impl RuleExplanation {
    /// Whether the rule applies to a row.
    pub fn matches(&self, row: &[f64]) -> bool {
        self.conditions.iter().all(|c| c.matches(row))
    }

    /// Number of clauses; rules longer than ~5 are flagged by the tutorial
    /// as incomprehensible.
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// True when the rule is the empty (always-true) rule.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }
}

impl fmt::Display for RuleExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let clauses: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
        write!(
            f,
            "IF {} THEN predict {:.2} (precision {:.3}, coverage {:.3})",
            if clauses.is_empty() { "TRUE".to_string() } else { clauses.join(" AND ") },
            self.prediction,
            self.precision,
            self.coverage
        )
    }
}

/// A contrastive example with bookkeeping (§2.1.4).
#[derive(Clone, Debug, PartialEq)]
pub struct Counterfactual {
    /// The instance being explained.
    pub original: Vec<f64>,
    /// The counterfactual instance.
    pub counterfactual: Vec<f64>,
    /// Model output on the original.
    pub original_output: f64,
    /// Model output on the counterfactual.
    pub counterfactual_output: f64,
    /// Indices of features that changed.
    pub changed_features: Vec<usize>,
    /// Distance in the method's metric (usually MAD-weighted L1).
    pub distance: f64,
}

impl Counterfactual {
    /// Builds a counterfactual, deriving `changed_features` automatically.
    pub fn new(
        original: Vec<f64>,
        counterfactual: Vec<f64>,
        original_output: f64,
        counterfactual_output: f64,
        distance: f64,
    ) -> Self {
        assert_eq!(original.len(), counterfactual.len());
        let changed_features = original
            .iter()
            .zip(&counterfactual)
            .enumerate()
            .filter(|(_, (a, b))| (*a - *b).abs() > 1e-12)
            .map(|(i, _)| i)
            .collect();
        Self {
            original,
            counterfactual,
            original_output,
            counterfactual_output,
            changed_features,
            distance,
        }
    }

    /// Number of changed features (sparsity; fewer is more interpretable).
    pub fn sparsity(&self) -> usize {
        self.changed_features.len()
    }

    /// True when the counterfactual actually crosses the 0.5 decision
    /// boundary relative to the original.
    pub fn is_valid(&self) -> bool {
        (self.original_output >= 0.5) != (self.counterfactual_output >= 0.5)
    }
}

/// Scores over training examples (§2.3): Data Shapley values, influence
/// scores, tuple Shapley values, ….
#[derive(Clone, Debug, PartialEq)]
pub struct DataAttribution {
    /// One score per training example, aligned with the training set.
    pub values: Vec<f64>,
    /// What the score measures ("data shapley (accuracy)", "influence on
    /// test loss", …).
    pub measure: String,
}

impl DataAttribution {
    /// Training indices sorted by score descending (most valuable first).
    pub fn ranking_desc(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.values.len()).collect();
        idx.sort_by(|&a, &b| {
            self.values[b].total_cmp(&self.values[a]).then(a.cmp(&b))
        });
        idx
    }

    /// Training indices sorted ascending (most harmful first).
    pub fn ranking_asc(&self) -> Vec<usize> {
        let mut idx = self.ranking_desc();
        idx.reverse();
        idx
    }

    /// Precision@k against a known set of "guilty" indices — the standard
    /// debugging score: of the k most harmful points, how many are truly
    /// corrupted?
    pub fn precision_at_k(&self, guilty: &[usize], k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let suspects = self.ranking_asc();
        let hits = suspects
            .iter()
            .take(k)
            .filter(|i| guilty.contains(i))
            .count();
        hits as f64 / k.min(suspects.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_ranking_and_topk() {
        let fa = FeatureAttribution::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![0.1, -0.9, 0.5],
            0.3,
            0.0,
        );
        assert_eq!(fa.ranking(), vec![1, 2, 0]);
        let top = fa.top_k(2);
        assert_eq!(top[0], ("b", -0.9));
        assert_eq!(top[1], ("c", 0.5));
        assert_eq!(fa.value_of("c"), Some(0.5));
        assert_eq!(fa.value_of("zz"), None);
    }

    #[test]
    fn efficiency_gap() {
        let fa = FeatureAttribution::new(
            vec!["a".into(), "b".into()],
            vec![0.2, 0.3],
            0.5,
            1.0,
        );
        assert!(fa.efficiency_gap() < 1e-12);
        let bad = FeatureAttribution::new(vec!["a".into()], vec![0.2], 0.5, 1.0);
        assert!((bad.efficiency_gap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn conditions_and_rules() {
        let rule = RuleExplanation {
            conditions: vec![
                Condition { feature: 0, feature_name: "age".into(), op: Op::Gt, value: 30.0 },
                Condition { feature: 1, feature_name: "housing".into(), op: Op::Eq, value: 1.0 },
            ],
            prediction: 1.0,
            precision: 0.97,
            coverage: 0.2,
        };
        assert!(rule.matches(&[40.0, 1.0]));
        assert!(!rule.matches(&[40.0, 0.0]));
        assert!(!rule.matches(&[30.0, 1.0])); // Gt is strict
        let s = rule.to_string();
        assert!(s.contains("age > 30"));
        assert!(s.contains("AND"));
        assert_eq!(rule.len(), 2);
    }

    #[test]
    fn counterfactual_bookkeeping() {
        let cf = Counterfactual::new(
            vec![1.0, 2.0, 3.0],
            vec![1.0, 5.0, 3.0],
            0.3,
            0.7,
            1.5,
        );
        assert_eq!(cf.changed_features, vec![1]);
        assert_eq!(cf.sparsity(), 1);
        assert!(cf.is_valid());
        let invalid = Counterfactual::new(vec![0.0], vec![1.0], 0.3, 0.4, 1.0);
        assert!(!invalid.is_valid());
    }

    #[test]
    fn data_attribution_rankings() {
        let da = DataAttribution {
            values: vec![0.5, -1.0, 0.0, 2.0],
            measure: "test".into(),
        };
        assert_eq!(da.ranking_desc(), vec![3, 0, 2, 1]);
        assert_eq!(da.ranking_asc(), vec![1, 2, 0, 3]);
        // Most harmful = index 1; guilty set {1, 2}.
        assert_eq!(da.precision_at_k(&[1, 2], 2), 1.0);
        assert_eq!(da.precision_at_k(&[3], 2), 0.0);
        assert_eq!(da.precision_at_k(&[], 0), 1.0);
    }
}
