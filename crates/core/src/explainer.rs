//! The unified explainer layer (DESIGN.md §9): one object-safe trait and
//! one execution plan over every explanation family in the workspace.
//!
//! PRs 1–4 grew each estimator a thicket of free-function twins — up to
//! eight public entry points per method (`kernel_shap`, `_batched`,
//! `_parallel`, `_batched_parallel`, plus `try_*` of each). This module
//! collapses that surface into a single shape:
//!
//! - [`Explainer`] — `card()` (taxonomy metadata) + `explain()` (run it);
//! - [`RunConfig`] (alias [`ExecPlan`]) — seed, worker count, batch
//!   switch, [`SampleBudget`], and [`DegradationPolicy`] in one value, so
//!   the scalar/batched/parallel/budgeted variants become *configuration*
//!   of one code path instead of separate functions;
//! - [`ExplainRequest`] — the inputs every family draws from (dataset,
//!   instance, background, held-out test set, utility, feature index);
//! - [`Explanation`] — a sum type over the workspace's output forms;
//! - [`ModelOracle`] — the model surface the trait dispatches on without
//!   `xai-core` depending on `xai-models` (which depends on this crate):
//!   a prediction oracle with optional batch, gradient and downcast
//!   capabilities that model-specific methods can probe at runtime.
//!
//! Determinism contract: for a given method, `RunConfig { seed, workers,
//! batched, .. }` selects exactly the legacy twin that previously served
//! that combination, so results are bit-identical to the old entry points
//! at the same seed (`tests/unified_api.rs` enforces this). As before,
//! batched evaluation never changes draws, while `workers > 1` selects the
//! fixed-chunk parallel sampling streams — worker-count-invariant among
//! themselves but intentionally distinct from the sequential stream.

use std::any::Any;

use crate::error::{SampleBudget, XaiError, XaiResult};
use crate::explanation::{Counterfactual, DataAttribution, FeatureAttribution, RuleExplanation};
use crate::taxonomy::{ExplanationForm, MethodCard};
use xai_data::Dataset;
use xai_linalg::Matrix;

/// How a method should respond when it can only produce a degraded result
/// (e.g. Kernel SHAP / LIME falling back to the ridge-escalation ladder on
/// a singular local system).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DegradationPolicy {
    /// Return the degraded estimate (flagged internally) — the default,
    /// matching the legacy free functions.
    #[default]
    BestEffort,
    /// Refuse: surface [`XaiError::SingularSystem`] instead of returning
    /// an estimate built on an escalated ridge.
    Strict,
}

/// The execution plan for one `explain` call: every switch that used to
/// pick between free-function twins, in one value.
///
/// | field | legacy twin it replaces |
/// |---|---|
/// | `seed` | the `seed` argument threaded through every estimator |
/// | `workers` | `*_parallel` (`> 1`) vs sequential (`== 1`) |
/// | `batched` | `*_batched` coalition/neighbourhood materialization |
/// | `budget` | `*_budgeted` best-effort estimation |
/// | `degradation` | (new) strict rejection of ridge-escalated solves |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// PRNG seed for every stochastic draw the method makes.
    pub seed: u64,
    /// Worker threads; `1` selects the sequential sampling stream,
    /// `> 1` the fixed-chunk parallel streams (worker-count-invariant).
    pub workers: usize,
    /// Route model evaluation through the batched kernels
    /// (bit-identical to scalar evaluation at the same seed).
    pub batched: bool,
    /// Evaluation/wall-clock budget for Monte-Carlo methods.
    pub budget: SampleBudget,
    /// What to do when only a degraded estimate is available.
    pub degradation: DegradationPolicy,
    /// Where the run executes ([`crate::backend::BackendChoice`]):
    /// in-process (the default), the OS-process pool, or the TCP
    /// cluster. Backends are bit-identical; this picks a substrate, not
    /// a result.
    pub backend: crate::backend::BackendChoice,
}

/// The tentpole alias: an execution plan *is* a run configuration.
pub type ExecPlan = RunConfig;

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            workers: 1,
            batched: false,
            budget: SampleBudget::unlimited(),
            degradation: DegradationPolicy::BestEffort,
            backend: crate::backend::BackendChoice::Local,
        }
    }
}

impl RunConfig {
    /// Sequential, unbatched, unlimited plan at `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker count (`>= 1`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "RunConfig workers must be >= 1");
        self.workers = workers;
        self
    }

    /// Toggles batched model evaluation.
    pub fn with_batched(mut self, batched: bool) -> Self {
        self.batched = batched;
        self
    }

    /// Attaches a sample budget.
    pub fn with_budget(mut self, budget: SampleBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Switches to [`DegradationPolicy::Strict`].
    pub fn strict(mut self) -> Self {
        self.degradation = DegradationPolicy::Strict;
        self
    }

    /// Selects the execution backend.
    pub fn with_backend(mut self, backend: crate::backend::BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// True when the plan selects the parallel sampling streams.
    pub fn parallel(&self) -> bool {
        self.workers > 1
    }

    /// True when a finite budget is attached.
    pub fn budgeted(&self) -> bool {
        !self.budget.is_unlimited()
    }
}

/// The model surface the unified layer dispatches on.
///
/// `xai-models` depends on `xai-core`, so the trait lives here and is
/// implemented there for every concrete model (classifiers expose their
/// positive-class probability, regressors their prediction — the same
/// convention as the legacy `proba_fn`/`regress_fn` adapters). Methods
/// that need more than a prediction oracle probe the optional
/// capabilities: [`gradient`](ModelOracle::gradient) for saliency/Wachter,
/// [`as_any`](ModelOracle::as_any) for structure-walking methods
/// (TreeSHAP, provenance) that downcast to a concrete model type.
pub trait ModelOracle: Sync {
    /// Input dimensionality.
    fn n_features(&self) -> usize;

    /// Scalar prediction (probability of the positive class for
    /// classifiers, predicted value for regressors).
    fn predict(&self, x: &[f64]) -> f64;

    /// Batched prediction over the rows of `rows`; overridden by concrete
    /// models to hit their vectorized kernels, so the batched trait path
    /// is bit-identical to the legacy `batch_*_fn` adapters.
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        rows.iter_rows().map(|r| self.predict(r)).collect()
    }

    /// Masked (zero-copy) coalition prediction, DESIGN.md §12. For each
    /// mask in `masks`, scores every background row's coalition view —
    /// `instance[k]` where bit `k` is set, the background value otherwise —
    /// and appends `background.rows()` predictions per mask to `out`
    /// (coalition-major). `out` is cleared first.
    ///
    /// The default gathers each view into an arena-leased scratch matrix
    /// and calls [`predict_batch`](ModelOracle::predict_batch), so it is
    /// bit-identical to materialized evaluation for any model whose batch
    /// path honours the row-independence contract. Models in `xai-models`
    /// override this with truly zero-copy masked kernels.
    ///
    /// # Panics
    /// Panics when arities disagree or `background.cols() > 64`.
    fn predict_masked(&self, instance: &[f64], background: &Matrix, masks: &[u64], out: &mut Vec<f64>) {
        let (b, d) = background.shape();
        assert_eq!(instance.len(), d, "predict_masked instance arity mismatch");
        assert!(d <= 64, "predict_masked supports at most 64 features, got {d}");
        out.clear();
        out.reserve(masks.len() * b);
        xai_linalg::arena::with_scratch_matrix(b, d, |scratch| {
            for &mask in masks {
                for bi in 0..b {
                    let src = background.row(bi);
                    let dst = scratch.row_mut(bi);
                    for (k, s) in dst.iter_mut().enumerate() {
                        *s = if mask >> k & 1 == 1 { instance[k] } else { src[k] };
                    }
                }
                out.extend_from_slice(&self.predict_batch(scratch));
            }
        });
    }

    /// Gradient of the prediction w.r.t. the input, when the model is
    /// differentiable.
    fn gradient(&self, x: &[f64]) -> Option<Vec<f64>> {
        let _ = x;
        None
    }

    /// Runtime downcast hook for model-specific methods.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }
}

impl<M: ModelOracle + ?Sized> ModelOracle for &M {
    fn n_features(&self) -> usize {
        (**self).n_features()
    }
    fn predict(&self, x: &[f64]) -> f64 {
        (**self).predict(x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        (**self).predict_batch(rows)
    }
    fn predict_masked(&self, instance: &[f64], background: &Matrix, masks: &[u64], out: &mut Vec<f64>) {
        (**self).predict_masked(instance, background, masks, out)
    }
    fn gradient(&self, x: &[f64]) -> Option<Vec<f64>> {
        (**self).gradient(x)
    }
    fn as_any(&self) -> Option<&dyn Any> {
        (**self).as_any()
    }
}

/// A closure-backed [`ModelOracle`] for black boxes that exist only as a
/// prediction function (SQL scorers, remote services, test stubs).
pub struct FnOracle<F> {
    n_features: usize,
    f: F,
}

impl<F: Fn(&[f64]) -> f64 + Sync> FnOracle<F> {
    /// Wraps `f` as an oracle over `n_features` inputs.
    pub fn new(n_features: usize, f: F) -> Self {
        Self { n_features, f }
    }
}

impl<F: Fn(&[f64]) -> f64 + Sync> ModelOracle for FnOracle<F> {
    fn n_features(&self) -> usize {
        self.n_features
    }
    fn predict(&self, x: &[f64]) -> f64 {
        (self.f)(x)
    }
}

/// Training-set utility `v(S)` for data-valuation methods (§2.3): the
/// performance of a model trained on the subset `S` of training indices.
///
/// Lives here (rather than in `xai-datavalue`, which re-exports it) so the
/// unified request type can carry `&dyn Utility` without a crate cycle.
pub trait Utility {
    /// Utility of training on `subset` (indices into the training set).
    fn eval(&self, subset: &[usize]) -> f64;

    /// Number of training points being valued.
    fn n_train(&self) -> usize;
}

impl<U: Utility + ?Sized> Utility for &U {
    fn eval(&self, subset: &[usize]) -> f64 {
        (**self).eval(subset)
    }
    fn n_train(&self) -> usize {
        (**self).n_train()
    }
}

/// Everything an [`Explainer`] may draw on, plus the [`RunConfig`].
///
/// One request type serves all five output forms; each method reads the
/// fields it needs and reports [`XaiError::Unsupported`] when a required
/// field is absent (e.g. a local method without an `instance`).
#[derive(Clone, Copy)]
pub struct ExplainRequest<'a> {
    /// The dataset the explanation is grounded in (training set for
    /// valuation methods, background/sampling population otherwise).
    pub data: &'a Dataset,
    /// The instance under explanation (local methods).
    pub instance: Option<&'a [f64]>,
    /// Background matrix for coalition methods; defaults to `data.x()`.
    pub background: Option<&'a Matrix>,
    /// Held-out set for utility construction (valuation methods).
    pub test: Option<&'a Dataset>,
    /// Explicit training-set utility; when absent, valuation methods
    /// build a default utility from `data`/`test`.
    pub utility: Option<&'a (dyn Utility + Sync)>,
    /// Feature index for per-feature curves (PDP/ICE).
    pub feature: Option<usize>,
    /// Shared cross-request coalition memo (DESIGN.md §12). When present,
    /// coalition methods consult it before calling the model and publish
    /// fresh values back; absent means every coalition is evaluated live.
    pub memo: Option<crate::memo::MemoHandle<'a>>,
    /// The execution plan.
    pub plan: RunConfig,
}

impl<'a> ExplainRequest<'a> {
    /// A request grounded in `data` with the default plan.
    pub fn new(data: &'a Dataset) -> Self {
        Self {
            data,
            instance: None,
            background: None,
            test: None,
            utility: None,
            feature: None,
            memo: None,
            plan: RunConfig::default(),
        }
    }

    /// Sets the instance under explanation.
    pub fn instance(mut self, x: &'a [f64]) -> Self {
        self.instance = Some(x);
        self
    }

    /// Sets an explicit background matrix.
    pub fn background(mut self, m: &'a Matrix) -> Self {
        self.background = Some(m);
        self
    }

    /// Sets the held-out test set.
    pub fn test(mut self, d: &'a Dataset) -> Self {
        self.test = Some(d);
        self
    }

    /// Sets an explicit training-set utility.
    pub fn utility(mut self, u: &'a (dyn Utility + Sync)) -> Self {
        self.utility = Some(u);
        self
    }

    /// Sets the feature index for curve methods.
    pub fn feature(mut self, j: usize) -> Self {
        self.feature = Some(j);
        self
    }

    /// Attaches a shared coalition memo.
    pub fn memo(mut self, handle: crate::memo::MemoHandle<'a>) -> Self {
        self.memo = Some(handle);
        self
    }

    /// Sets the execution plan.
    pub fn plan(mut self, plan: RunConfig) -> Self {
        self.plan = plan;
        self
    }

    /// The instance, or [`XaiError::Unsupported`] naming the method.
    pub fn need_instance(&self, method: &str) -> XaiResult<&'a [f64]> {
        self.instance.ok_or_else(|| XaiError::Unsupported {
            context: format!("{method} is a local method and needs ExplainRequest::instance"),
        })
    }

    /// Explicit background, falling back to the dataset's design matrix.
    pub fn background_or_data(&self) -> &'a Matrix {
        self.background.unwrap_or_else(|| self.data.x())
    }

    /// Test set for utility construction, falling back to `data`.
    pub fn test_or_data(&self) -> &'a Dataset {
        self.test.unwrap_or(self.data)
    }

    /// Owned feature names from the dataset schema.
    pub fn feature_names(&self) -> Vec<String> {
        self.data.schema().names().into_iter().map(str::to_string).collect()
    }
}

/// A partial-dependence / ICE curve in the unified output type: the
/// model's mean response as one feature sweeps a grid.
#[derive(Clone, Debug, PartialEq)]
pub struct CurveExplanation {
    /// The swept feature's column index.
    pub feature: usize,
    /// Grid of values the feature was set to.
    pub grid: Vec<f64>,
    /// Mean model response at each grid point (the PDP curve).
    pub values: Vec<f64>,
    /// Per-row response curves (ICE), when kept.
    pub ice: Option<Vec<Vec<f64>>>,
}

/// The sum type over every output form an [`Explainer`] can produce.
#[derive(Clone, Debug)]
pub enum Explanation {
    /// Per-feature attribution scores.
    Attribution(FeatureAttribution),
    /// If-then rules (anchors, decision sets).
    Rules(Vec<RuleExplanation>),
    /// Contrastive examples / recourse actions.
    Counterfactuals(Vec<Counterfactual>),
    /// Scores over training examples.
    DataValuation(DataAttribution),
    /// Per-feature response curves (PDP/ICE).
    Curve(CurveExplanation),
}

impl Explanation {
    /// The taxonomy form this explanation takes (curves report as
    /// [`ExplanationForm::FeatureAttribution`], matching their card).
    pub fn form(&self) -> ExplanationForm {
        match self {
            Explanation::Attribution(_) | Explanation::Curve(_) => {
                ExplanationForm::FeatureAttribution
            }
            Explanation::Rules(_) => ExplanationForm::Rules,
            Explanation::Counterfactuals(_) => ExplanationForm::Counterfactual,
            Explanation::DataValuation(_) => ExplanationForm::DataValuation,
        }
    }

    /// The attribution, if this is one.
    pub fn as_attribution(&self) -> Option<&FeatureAttribution> {
        match self {
            Explanation::Attribution(a) => Some(a),
            _ => None,
        }
    }

    /// The rules, if this is a rule explanation.
    pub fn as_rules(&self) -> Option<&[RuleExplanation]> {
        match self {
            Explanation::Rules(r) => Some(r),
            _ => None,
        }
    }

    /// The counterfactuals, if any.
    pub fn as_counterfactuals(&self) -> Option<&[Counterfactual]> {
        match self {
            Explanation::Counterfactuals(c) => Some(c),
            _ => None,
        }
    }

    /// The data valuation, if this is one.
    pub fn as_valuation(&self) -> Option<&DataAttribution> {
        match self {
            Explanation::DataValuation(d) => Some(d),
            _ => None,
        }
    }

    /// The curve, if this is one.
    pub fn as_curve(&self) -> Option<&CurveExplanation> {
        match self {
            Explanation::Curve(c) => Some(c),
            _ => None,
        }
    }
}

/// One explanation method, runnable and self-describing.
///
/// Object-safe by construction: the `Registry` stores
/// `Arc<dyn Explainer>` and `Registry::resolve` hands live explainers
/// back to callers who selected them by taxonomy position.
pub trait Explainer: Send + Sync {
    /// This method's taxonomy card.
    fn card(&self) -> MethodCard;

    /// Runs the method against `model` as configured by `req.plan`.
    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation>;

    /// The shard-plan view of this method, when its random draws
    /// partition into deterministic shards (DESIGN.md §11). Methods with
    /// a fixed chunk grid override this with `Some(self)`; the default
    /// opts out.
    fn as_shardable(&self) -> Option<&dyn crate::shard::ShardableExplainer> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::circles;

    #[test]
    fn run_config_builder_covers_every_switch() {
        let plan = RunConfig::seeded(7)
            .with_workers(4)
            .with_batched(true)
            .with_budget(SampleBudget::with_max_evals(100))
            .strict();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.workers, 4);
        assert!(plan.batched && plan.parallel() && plan.budgeted());
        assert_eq!(plan.degradation, DegradationPolicy::Strict);
        let default = RunConfig::default();
        assert!(!default.parallel() && !default.batched && !default.budgeted());
        assert_eq!(default.degradation, DegradationPolicy::BestEffort);
    }

    #[test]
    #[should_panic(expected = "workers must be >= 1")]
    fn zero_workers_is_rejected() {
        let _ = RunConfig::default().with_workers(0);
    }

    #[test]
    fn fn_oracle_predicts_and_batches() {
        let oracle = FnOracle::new(2, |x: &[f64]| x[0] + 2.0 * x[1]);
        assert_eq!(oracle.n_features(), 2);
        assert_eq!(oracle.predict(&[1.0, 2.0]), 5.0);
        let rows = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(oracle.predict_batch(&rows), vec![1.0, 2.0]);
        assert!(oracle.gradient(&[0.0, 0.0]).is_none());
        assert!(oracle.as_any().is_none());
        // The reference blanket impl forwards everything.
        let by_ref: &dyn ModelOracle = &&oracle;
        assert_eq!(by_ref.predict(&[1.0, 2.0]), 5.0);
    }

    #[test]
    fn request_builder_and_accessors() {
        let data = circles(40, 3, 0.05);
        let row = data.row(0).to_vec();
        let req = ExplainRequest::new(&data)
            .instance(&row)
            .feature(1)
            .plan(RunConfig::seeded(3));
        assert_eq!(req.need_instance("LIME").unwrap(), &row[..]);
        assert_eq!(req.feature, Some(1));
        assert_eq!(req.plan.seed, 3);
        assert_eq!(req.background_or_data().rows(), data.x().rows());
        assert_eq!(req.test_or_data().n_rows(), data.n_rows());
        assert_eq!(req.feature_names().len(), data.x().cols());

        let bare = ExplainRequest::new(&data);
        let err = bare.need_instance("Kernel SHAP").unwrap_err();
        assert!(matches!(err, XaiError::Unsupported { ref context } if context.contains("Kernel SHAP")));
    }

    #[test]
    fn explanation_forms_and_accessors() {
        let attr = FeatureAttribution::new(
            vec!["a".into(), "b".into()],
            vec![0.5, -0.25],
            0.0,
            0.25,
        );
        let e = Explanation::Attribution(attr);
        assert_eq!(e.form(), ExplanationForm::FeatureAttribution);
        assert!(e.as_attribution().is_some());
        assert!(e.as_rules().is_none() && e.as_curve().is_none());

        let c = Explanation::Curve(CurveExplanation {
            feature: 0,
            grid: vec![0.0, 1.0],
            values: vec![0.1, 0.9],
            ice: None,
        });
        assert_eq!(c.form(), ExplanationForm::FeatureAttribution);
        assert!(c.as_curve().is_some() && c.as_attribution().is_none());

        let r = Explanation::Rules(vec![]);
        assert_eq!(r.form(), ExplanationForm::Rules);
        let cf = Explanation::Counterfactuals(vec![]);
        assert_eq!(cf.form(), ExplanationForm::Counterfactual);
    }

    #[test]
    fn utility_blanket_impl_forwards() {
        struct Fixed;
        impl Utility for Fixed {
            fn eval(&self, subset: &[usize]) -> f64 {
                subset.len() as f64
            }
            fn n_train(&self) -> usize {
                5
            }
        }
        let u = Fixed;
        let by_ref: &dyn Utility = &&u;
        assert_eq!(by_ref.eval(&[0, 1, 2]), 3.0);
        assert_eq!(by_ref.n_train(), 5);
    }
}
