//! # xai-core
//!
//! The unifying layer of the `xai` workspace: everything here is shared by
//! every method crate and by downstream users.
//!
//! - [`taxonomy`] — the tutorial's organizing dimensions (intrinsic vs
//!   post-hoc, model-agnostic vs model-specific, local vs global vs
//!   training-data) as types, plus a queryable [`taxonomy::Registry`] of
//!   all implemented methods;
//! - [`explainer`] — the unified layer (DESIGN.md §9): the object-safe
//!   [`explainer::Explainer`] trait, the [`explainer::RunConfig`] execution
//!   plan, and the [`explainer::ModelOracle`] model surface that every
//!   method family is driven through;
//! - [`explanation`] — the four output forms: feature attributions, rules,
//!   counterfactuals, and data attributions;
//! - [`eval`] — automated faithfulness (deletion/insertion), fidelity and
//!   stability protocols;
//! - [`report`] — a dependency-free JSON writer so explanations can leave
//!   the process;
//! - [`error`] — the unified [`XaiError`] taxonomy behind every fallible
//!   `try_*` entry point, plus [`SampleBudget`] for best-effort
//!   Monte-Carlo estimation;
//! - [`validate`] — up-front NaN/Inf and degenerate-background rejection;
//! - [`serve`] — the explanation-serving engine (DESIGN.md §10): requests
//!   as JSON data, a worker pool with admission control, and a
//!   fingerprint-keyed LRU result cache;
//! - [`memo`] — the shared cross-request coalition memo (DESIGN.md §12):
//!   coalition values keyed on (model, background, instance, mask)
//!   fingerprints so repeated serve traffic skips oracle calls;
//! - [`shard`] — deterministic shard plans (DESIGN.md §11): an
//!   estimator's random draws partitioned into serializable
//!   [`shard::ShardDescriptor`]s whose partials merge bit-identically to
//!   the unsharded run, in-process or across worker processes;
//! - [`transport`] — the multi-node shard transport (DESIGN.md §13): a
//!   zero-dependency length-prefixed TCP protocol shipping descriptors to
//!   remote daemons, wrapped in a failure-first [`transport::ClusterRunner`]
//!   with retry, hedging, circuit breaking, and graceful in-process
//!   degradation;
//! - [`backend`] — the unified execution substrate (DESIGN.md §14): the
//!   object-safe [`backend::ExecutionBackend`] trait with
//!   [`backend::LocalBackend`], [`backend::ProcessPoolBackend`] and
//!   [`backend::ClusterBackend`] implementations, all merging shard
//!   partials bit-identically, plus the shard-level result cache.

pub mod backend;
pub mod error;
pub mod eval;
pub mod explainer;
pub mod json_parse;
pub mod explanation;
pub mod memo;
pub mod report;
pub mod serve;
pub mod shard;
pub mod taxonomy;
pub mod transport;
pub mod validate;

pub use backend::{
    dispatch_local, execute_cluster, BackendChoice, BackendJob, BackendKind, BackendOutcome,
    ClusterBackend, ExecutionBackend, LocalBackend, PoolConfig, ProcessPoolBackend, ShardCache,
    ShardCacheStats,
};
pub use error::{catch_model, BudgetMeter, IoKind, SampleBudget, XaiError, XaiResult};
pub use explainer::{
    CurveExplanation, DegradationPolicy, ExecPlan, ExplainRequest, Explainer, Explanation,
    FnOracle, ModelOracle, RunConfig, Utility,
};
pub use explanation::{
    Condition, Counterfactual, DataAttribution, FeatureAttribution, Op, RuleExplanation,
};
pub use json_parse::{parse_json, ParseError};
pub use memo::{fingerprint_f64s, CoalitionMemo, GameKey, MemoHandle, MemoStats};
pub use report::{Json, ToReport};
pub use serve::{
    fingerprint_bytes, ExplanationService, ServeRequest, ServeResponse, ServeStats, ServiceConfig,
};
pub use shard::{
    build_descriptors, execute_descriptor, explain_sharded, merge_shard_results, shard_chunk_ranges,
    DrawGrid, ShardDescriptor, ShardResult, ShardableExplainer,
};
pub use transport::{
    explain_cluster, read_frame, serve_connection, write_frame, BreakerState, ClusterConfig,
    ClusterOutcome, ClusterRunner, ClusterStats, EndpointHealth, FallbackPolicy, HealthTracker,
    RetryPolicy, FRAME_MAGIC, MAX_FRAME_BYTES,
};
pub use taxonomy::{
    method_card, workspace_registry, Access, ExplanationForm, MethodCard, Registry, Scope,
    SharedExplainer, Stage, WORKSPACE_CARDS,
};
