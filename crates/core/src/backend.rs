//! Unified execution backends (DESIGN.md §14).
//!
//! Three runners grew side by side — the in-process shard runner
//! ([`crate::shard::explain_sharded`]), the OS-process pool (the facade's
//! `explain_process_pool`), and the TCP cluster
//! ([`crate::transport::ClusterRunner`]) — each hand-rolling the same
//! "cut the request into [`ShardDescriptor`]s, execute them somewhere,
//! merge the partials bit-identically" loop. This module owns that
//! contract once: [`ExecutionBackend`] is an object-safe trait over a
//! [`BackendJob`] (explainer + model + request + shard count), and
//! [`LocalBackend`], [`ProcessPoolBackend`] and [`ClusterBackend`] are
//! its three implementations. The legacy entry points are thin
//! constructors over these types; the serving engine
//! ([`crate::serve::ExplanationService`]) routes requests through the
//! same trait, selected by the typed [`BackendChoice`] travelling inside
//! every [`crate::explainer::RunConfig`].
//!
//! The invariant every backend upholds: **the explanation bytes are
//! identical to the unsharded `Explainer::explain` run** (on the
//! `workers > 1` parallel path, which shares the chunk grid) for every
//! shard count, every backend, and every fault schedule. Where work runs
//! is an operational choice; what it computes never is. That determinism
//! is also what makes the [`ShardCache`] sound: a shard's result is a
//! pure function of (model fingerprint, descriptor bytes), so a hedged,
//! retried, or repeated shard can be answered from cache without risking
//! a wrong byte.
//!
//! Failure semantics per backend:
//!
//! - [`LocalBackend`]: errors surface exactly as `explain` would raise
//!   them; there is no transport to degrade.
//! - [`ProcessPoolBackend`]: worker failures are typed
//!   ([`XaiError::WorkerPanic`], [`XaiError::ModelFault`],
//!   [`XaiError::Parse`], [`XaiError::BudgetExceeded`] past the wave
//!   deadline) and never silently retried — a pool lives on one machine,
//!   so a deterministic failure would only repeat.
//! - [`ClusterBackend`]: transport failures are retried, hedged and
//!   breaker-routed by the [`ClusterRunner`]; when the whole cluster is
//!   unreachable and [`FallbackPolicy::InProcess`] allows, the job
//!   degrades to [`LocalBackend`] semantics and the outcome carries
//!   `degraded: true`. Execution failures (typed envelopes from a worker
//!   that *ran* the shard) are deterministic and are never retried or
//!   degraded.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{IoKind, XaiError, XaiResult};
use crate::explainer::{ExplainRequest, Explanation, ModelOracle};
use crate::json_parse::parse_json;
use crate::report::Json;
use crate::serve::fingerprint_bytes;
use crate::shard::{
    build_descriptors, error_from_json, is_error_envelope, merge_shard_results,
    shard_chunk_ranges, wire_error, ShardDescriptor, ShardResult, ShardableExplainer,
};
use crate::transport::{ClusterRunner, FallbackPolicy};
use xai_rand::parallel::try_par_map_seeded;

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// The three execution substrates, as a plain discriminant (used as the
/// key under which backends register with the serving engine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendKind {
    /// Threads in this process.
    Local,
    /// `xai-shard-worker` OS processes on this machine.
    ProcessPool,
    /// `xai-shard-worker --listen` daemons over TCP.
    Cluster,
}

impl BackendKind {
    /// The wire name (`"local"`, `"process_pool"`, `"cluster"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Local => "local",
            BackendKind::ProcessPool => "process_pool",
            BackendKind::Cluster => "cluster",
        }
    }
}

/// Where a run should execute, as carried by
/// [`crate::explainer::RunConfig::backend`]. `Local` is the default and
/// the only choice that needs no shard count; the remote choices name
/// how many [`ShardDescriptor`]s the plan is cut into.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// Run in-process (threads); the historical behaviour.
    #[default]
    Local,
    /// Fan out across `shards` worker processes on this machine.
    ProcessPool {
        /// Number of shard descriptors (>= 1).
        shards: usize,
    },
    /// Fan out across `shards` descriptors shipped to TCP daemons.
    Cluster {
        /// Number of shard descriptors (>= 1).
        shards: usize,
    },
}

impl BackendChoice {
    /// A process-pool choice over `shards` descriptors (>= 1).
    pub fn process_pool(shards: usize) -> Self {
        assert!(shards >= 1, "process-pool backend needs at least one shard");
        BackendChoice::ProcessPool { shards }
    }

    /// A cluster choice over `shards` descriptors (>= 1).
    pub fn cluster(shards: usize) -> Self {
        assert!(shards >= 1, "cluster backend needs at least one shard");
        BackendChoice::Cluster { shards }
    }

    /// The substrate this choice names.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendChoice::Local => BackendKind::Local,
            BackendChoice::ProcessPool { .. } => BackendKind::ProcessPool,
            BackendChoice::Cluster { .. } => BackendKind::Cluster,
        }
    }

    /// The shard count for remote choices; `None` for `Local`.
    pub fn shards(&self) -> Option<usize> {
        match self {
            BackendChoice::Local => None,
            BackendChoice::ProcessPool { shards } | BackendChoice::Cluster { shards } => {
                Some(*shards)
            }
        }
    }

    /// Whether this is the in-process default.
    pub fn is_local(&self) -> bool {
        matches!(self, BackendChoice::Local)
    }

    /// Canonical wire form: `{"kind": "...", "shards": N|null}`.
    pub fn to_json(&self) -> Json {
        let shards = match self.shards() {
            Some(n) => Json::Num(n as f64),
            None => Json::Null,
        };
        Json::obj(vec![("kind", Json::str(self.kind().as_str())), ("shards", shards)])
    }

    /// Strict parse of the wire form: unknown fields and kinds are typed
    /// [`XaiError::Parse`] errors; `local` must not carry a shard count;
    /// remote kinds require an integer `shards >= 1`.
    pub fn from_json(json: &Json) -> XaiResult<Self> {
        const WHAT: &str = "ExecPlan backend";
        let Json::Obj(fields) = json else {
            return Err(wire_error(format!("{WHAT}: expected an object")));
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "kind" | "shards") {
                return Err(wire_error(format!("{WHAT}: unknown field '{key}'")));
            }
        }
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| wire_error(format!("{WHAT}: missing string field 'kind'")))?;
        let shards = match json.get("shards") {
            None | Some(Json::Null) => None,
            Some(Json::Num(n)) => {
                if n.fract() != 0.0 || *n < 1.0 || *n > u32::MAX as f64 {
                    return Err(wire_error(format!(
                        "{WHAT}: 'shards' must be an integer >= 1, got {n}"
                    )));
                }
                Some(*n as usize)
            }
            Some(_) => {
                return Err(wire_error(format!("{WHAT}: 'shards' must be a number or null")));
            }
        };
        match (kind, shards) {
            ("local", None) => Ok(BackendChoice::Local),
            ("local", Some(_)) => {
                Err(wire_error(format!("{WHAT}: 'local' does not take a shard count")))
            }
            ("process_pool", Some(shards)) => Ok(BackendChoice::ProcessPool { shards }),
            ("cluster", Some(shards)) => Ok(BackendChoice::Cluster { shards }),
            ("process_pool" | "cluster", None) => {
                Err(wire_error(format!("{WHAT}: '{kind}' requires 'shards'")))
            }
            (other, _) => Err(wire_error(format!("{WHAT}: unknown kind '{other}'"))),
        }
    }
}

// ---------------------------------------------------------------------------
// The job and its outcome
// ---------------------------------------------------------------------------

/// Everything a backend needs to execute one explanation: the shardable
/// method, the live model oracle (used for merging and for in-process
/// execution), the request, the model's persisted JSON (required by the
/// remote backends, whose workers rebuild the model from it), and the
/// shard count.
pub struct BackendJob<'a> {
    /// The method to run.
    pub explainer: &'a dyn ShardableExplainer,
    /// The live model (merge epilogues and local execution call it).
    pub model: &'a dyn ModelOracle,
    /// The request, including its [`crate::explainer::RunConfig`].
    pub req: &'a ExplainRequest<'a>,
    /// The model's persisted JSON, when available. Remote backends
    /// require it; [`LocalBackend`] ignores it.
    pub model_json: Option<Json>,
    /// How many shard descriptors to cut the plan into (>= 1).
    pub n_shards: usize,
}

impl<'a> BackendJob<'a> {
    /// A job over the given method, model and request.
    pub fn new(
        explainer: &'a dyn ShardableExplainer,
        model: &'a dyn ModelOracle,
        req: &'a ExplainRequest<'a>,
        n_shards: usize,
    ) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        BackendJob { explainer, model, req, model_json: None, n_shards }
    }

    /// Attaches the model's persisted JSON (enables remote backends).
    pub fn with_model_json(mut self, model_json: Json) -> Self {
        self.model_json = Some(model_json);
        self
    }

    fn require_model_json(&self, backend: &str) -> XaiResult<Json> {
        self.model_json.clone().ok_or_else(|| XaiError::Unsupported {
            context: format!(
                "{backend} backend needs the model's persisted JSON; \
                 attach it with BackendJob::with_model_json"
            ),
        })
    }
}

/// What a backend produced: the merged explanation (bit-identical across
/// backends), whether the run degraded to in-process execution, and how
/// the shard cache fared during this job.
#[derive(Clone, Debug)]
pub struct BackendOutcome {
    /// The merged explanation.
    pub explanation: Explanation,
    /// True when a cluster job fell back to the in-process runner under
    /// [`FallbackPolicy::InProcess`]. The bytes are identical either way.
    pub degraded: bool,
    /// Shards answered from the shard-level result cache.
    pub shard_cache_hits: u64,
    /// Shards that missed the cache and executed for real.
    pub shard_cache_misses: u64,
}

impl BackendOutcome {
    fn fresh(explanation: Explanation) -> Self {
        BackendOutcome { explanation, degraded: false, shard_cache_hits: 0, shard_cache_misses: 0 }
    }
}

/// The one execution contract: take a job, run its shard plan somewhere,
/// merge bit-identically. Object-safe so the serving engine can hold a
/// heterogeneous registry of `Arc<dyn ExecutionBackend>`.
pub trait ExecutionBackend: Send + Sync {
    /// Which substrate this backend runs on.
    fn kind(&self) -> BackendKind;

    /// Executes the job to a merged explanation. Implementations must
    /// keep the bytes identical to the unsharded `explain` at the same
    /// plan (`workers > 1`), for any shard count and fault schedule.
    fn execute(&self, job: &BackendJob<'_>) -> XaiResult<BackendOutcome>;
}

// ---------------------------------------------------------------------------
// Shard-level result cache
// ---------------------------------------------------------------------------

/// Snapshot of a [`ShardCache`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct ShardCacheState {
    tick: u64,
    entries: HashMap<(u64, u64), (u64, ShardResult)>,
}

/// An LRU cache of [`ShardResult`]s keyed on
/// `(fingerprint hash, descriptor hash)` — see [`descriptor_cache_key`].
/// Because shard execution is deterministic, a cached result is exactly
/// what a worker would recompute, so retried, hedged, or repeated shards
/// can be answered without touching the network. A capacity of zero
/// disables caching entirely.
pub struct ShardCache {
    capacity: usize,
    state: Mutex<ShardCacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The cache key for a descriptor: the FNV-1a hash of its model
/// fingerprint and the FNV-1a hash of its canonical JSON bytes. The
/// descriptor bytes embed the method, config, request, plan, and chunk
/// range, so two keys collide only for byte-identical work (up to hash
/// collisions, which only ever cost a false hit of an identical job).
pub fn descriptor_cache_key(desc: &ShardDescriptor) -> (u64, u64) {
    (
        fingerprint_bytes(desc.fingerprint.as_bytes()),
        fingerprint_bytes(desc.to_json_string().as_bytes()),
    )
}

impl ShardCache {
    /// A cache holding up to `capacity` shard results (0 disables).
    pub fn new(capacity: usize) -> Self {
        ShardCache {
            capacity,
            state: Mutex::new(ShardCacheState { tick: 0, entries: HashMap::new() }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ShardCacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the result for `desc`, counting a hit or miss.
    pub fn get(&self, desc: &ShardDescriptor) -> Option<ShardResult> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let key = descriptor_cache_key(desc);
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        match state.entries.get_mut(&key) {
            Some((used, result)) => {
                *used = tick;
                let result = result.clone();
                drop(state);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            None => {
                drop(state);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts the result for `desc`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, desc: &ShardDescriptor, result: &ShardResult) {
        if self.capacity == 0 {
            return;
        }
        let key = descriptor_cache_key(desc);
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if !state.entries.contains_key(&key) && state.entries.len() >= self.capacity {
            if let Some(oldest) =
                state.entries.iter().min_by_key(|(_, (used, _))| *used).map(|(k, _)| *k)
            {
                state.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        state.entries.insert(key, (tick, result.clone()));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ShardCacheStats {
        ShardCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.lock().entries.len(),
        }
    }
}

/// Splits `descs` into cached results and the descriptors still to run.
/// Returns `(hits, misses)`; merge order is restored later by shard
/// index, so the split does not need to preserve positions.
fn split_cache_hits(
    descs: &[ShardDescriptor],
    cache: Option<&ShardCache>,
) -> (Vec<ShardResult>, Vec<ShardDescriptor>) {
    let Some(cache) = cache else {
        return (Vec::new(), descs.to_vec());
    };
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    for desc in descs {
        match cache.get(desc) {
            Some(result) => hits.push(result),
            None => misses.push(desc.clone()),
        }
    }
    (hits, misses)
}

// ---------------------------------------------------------------------------
// Local backend: threads in this process
// ---------------------------------------------------------------------------

/// The shared dispatch core of the in-process runner: cut the draw grid
/// into `n_shards` ranges, run `explain_chunks` per shard on the seeded
/// fork-join executor, merge in shard order. This *is* the historical
/// `explain_sharded` body; the public function is now a thin delegate.
pub fn dispatch_local(
    explainer: &dyn ShardableExplainer,
    model: &dyn ModelOracle,
    req: &ExplainRequest<'_>,
    n_shards: usize,
) -> XaiResult<Explanation> {
    assert!(n_shards >= 1, "need at least one shard");
    let grid = explainer.draw_grid(req)?;
    let bounds = shard_chunk_ranges(grid.n_chunks(), n_shards);
    let shard_results = try_par_map_seeded(n_shards, 0, req.plan.workers, |s, _rng| {
        let (start, end) = bounds[s];
        explainer.explain_chunks(model, req, start..end)
    })
    .map_err(XaiError::from)?;
    // Sequence in shard order so the lowest-indexed failing shard wins,
    // independent of scheduling.
    let partials = shard_results.into_iter().collect::<XaiResult<Vec<Json>>>()?;
    explainer.merge_chunks(model, req, partials)
}

/// In-process execution: shards become tasks on the fork-join executor.
/// No transport, no cache, no degradation — errors surface exactly as
/// `explain` would raise them.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalBackend;

impl ExecutionBackend for LocalBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Local
    }

    fn execute(&self, job: &BackendJob<'_>) -> XaiResult<BackendOutcome> {
        dispatch_local(job.explainer, job.model, job.req, job.n_shards).map(BackendOutcome::fresh)
    }
}

// ---------------------------------------------------------------------------
// Process-pool backend: xai-shard-worker OS processes
// ---------------------------------------------------------------------------

/// How the process pool launches and supervises its workers.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Path to the `xai-shard-worker` executable.
    pub worker_exe: PathBuf,
    /// Maximum concurrently running worker processes (a wave).
    pub max_procs: usize,
    /// Wall-clock deadline per wave; a straggler past it is killed and
    /// the run fails with [`XaiError::BudgetExceeded`]. `None` waits
    /// indefinitely for well-behaved workers.
    pub deadline: Option<Duration>,
    /// Extra environment variables for every worker (used by the
    /// fault-injection tests; empty in normal operation).
    pub env: Vec<(String, String)>,
}

impl PoolConfig {
    /// A pool over the given worker executable: workers capped at the
    /// executor's default parallelism, a generous 60 s wave deadline.
    pub fn new(worker_exe: impl Into<PathBuf>) -> Self {
        PoolConfig {
            worker_exe: worker_exe.into(),
            max_procs: xai_rand::parallel::default_workers(),
            deadline: Some(Duration::from_secs(60)),
            env: Vec::new(),
        }
    }
}

/// One supervised worker process and the threads shuttling its pipes.
struct Running {
    child: Child,
    shard: usize,
    status: Option<ExitStatus>,
    writer: Option<std::thread::JoinHandle<()>>,
    reader: Option<std::thread::JoinHandle<std::io::Result<String>>>,
}

impl Running {
    /// Kills the child if still alive and joins the pipe threads. Safe to
    /// call on an already-reaped worker.
    fn abort(&mut self) {
        if self.status.is_none() {
            let _ = self.child.kill();
            self.status = self.child.wait().ok();
        }
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

fn spawn_worker(desc: &ShardDescriptor, pool: &PoolConfig) -> XaiResult<Running> {
    let mut cmd = Command::new(&pool.worker_exe);
    cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::null());
    for (k, v) in &pool.env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().map_err(|e| {
        XaiError::from_io(&e, format_args!("spawning shard worker '{}'", pool.worker_exe.display()))
    })?;
    let mut stdin = child.stdin.take().expect("stdin was piped");
    let text = desc.to_json_string();
    // Writer thread: a worker that never reads (or dies early) must not
    // deadlock us on a full pipe; EPIPE is simply ignored.
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(text.as_bytes());
    });
    let mut stdout = child.stdout.take().expect("stdout was piped");
    let reader = std::thread::spawn(move || {
        let mut out = String::new();
        stdout.read_to_string(&mut out).map(|_| out)
    });
    Ok(Running { child, shard: desc.shard, status: None, writer: Some(writer), reader: Some(reader) })
}

/// Waits for every worker in the wave, killing stragglers at the
/// deadline.
fn await_wave(wave: &mut [Running], pool: &PoolConfig, completed_before: usize) -> XaiResult<()> {
    let start = Instant::now();
    loop {
        let mut finished = 0;
        for r in wave.iter_mut() {
            if r.status.is_none() {
                match r.child.try_wait() {
                    Ok(Some(st)) => r.status = Some(st),
                    Ok(None) => continue,
                    Err(e) => {
                        return Err(XaiError::from_io(
                            &e,
                            format_args!("waiting for shard worker {}", r.shard),
                        ))
                    }
                }
            }
            finished += 1;
        }
        if finished == wave.len() {
            return Ok(());
        }
        if let Some(deadline) = pool.deadline {
            if start.elapsed() > deadline {
                return Err(XaiError::BudgetExceeded {
                    context: format!(
                        "shard process pool: wave exceeded the {deadline:?} deadline \
                         ({finished} of {} workers finished)",
                        wave.len()
                    ),
                    completed: completed_before + finished,
                });
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Interprets one finished worker: exit status, stdout bytes, envelope
/// or result.
fn collect_worker(r: &mut Running) -> XaiResult<ShardResult> {
    let status = r.status.expect("worker was awaited");
    let output = match r.reader.take().expect("reader not yet joined").join() {
        Ok(Ok(text)) => text,
        Ok(Err(e)) => {
            return Err(XaiError::from_io(
                &e,
                format_args!("reading shard worker {} stdout", r.shard),
            ))
        }
        Err(_) => {
            return Err(XaiError::io(
                IoKind::Other,
                format!("shard worker {} stdout reader thread panicked", r.shard),
            ))
        }
    };
    if let Some(w) = r.writer.take() {
        let _ = w.join();
    }
    if !status.success() {
        return Err(XaiError::ModelFault {
            context: format!("shard worker for shard {} exited abnormally ({status})", r.shard),
        });
    }
    let json = parse_json(output.trim()).map_err(|_| {
        wire_error(format!(
            "shard worker {} wrote unparseable output ({} bytes)",
            r.shard,
            output.len()
        ))
    })?;
    if is_error_envelope(&json) {
        let err = error_from_json(&json)?;
        // The worker may not know its shard index at panic time; pin it.
        return Err(match err {
            XaiError::WorkerPanic { message, .. } => {
                XaiError::WorkerPanic { task: r.shard, message }
            }
            other => other,
        });
    }
    ShardResult::from_json(&json)
}

/// Executes descriptors in waves of [`PoolConfig::max_procs`] worker
/// processes: descriptor on stdin, result (or envelope) on stdout.
fn run_pool_descriptors(
    descs: &[ShardDescriptor],
    pool: &PoolConfig,
) -> XaiResult<Vec<ShardResult>> {
    assert!(pool.max_procs >= 1, "need at least one worker process");
    let mut results = Vec::with_capacity(descs.len());
    for batch in descs.chunks(pool.max_procs) {
        let mut wave: Vec<Running> = Vec::with_capacity(batch.len());
        let outcome = (|| {
            for desc in batch {
                wave.push(spawn_worker(desc, pool)?);
            }
            await_wave(&mut wave, pool, results.len())?;
            for r in &mut wave {
                results.push(collect_worker(r)?);
            }
            Ok(())
        })();
        if let Err(e) = outcome {
            for r in &mut wave {
                r.abort();
            }
            return Err(e);
        }
    }
    Ok(results)
}

/// OS-process execution on this machine: waves of `xai-shard-worker`
/// processes, each fed one descriptor on stdin. Worker failure modes all
/// surface as typed errors, never a hang: a panicking worker is
/// [`XaiError::WorkerPanic`], garbage output is [`XaiError::Parse`], an
/// abnormal exit is [`XaiError::ModelFault`], and a straggler past
/// [`PoolConfig::deadline`] is killed and reported as
/// [`XaiError::BudgetExceeded`]. An optional [`ShardCache`] answers
/// repeated descriptors without spawning a process.
pub struct ProcessPoolBackend {
    pool: PoolConfig,
    cache: Option<Arc<ShardCache>>,
}

impl ProcessPoolBackend {
    /// A backend over the given pool configuration, uncached.
    pub fn new(pool: PoolConfig) -> Self {
        ProcessPoolBackend { pool, cache: None }
    }

    /// Attaches a shard-level result cache.
    pub fn with_cache(mut self, cache: Arc<ShardCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The pool configuration.
    pub fn pool(&self) -> &PoolConfig {
        &self.pool
    }

    /// Counter snapshot of the attached cache, if any.
    pub fn cache_stats(&self) -> Option<ShardCacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }
}

impl ExecutionBackend for ProcessPoolBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::ProcessPool
    }

    fn execute(&self, job: &BackendJob<'_>) -> XaiResult<BackendOutcome> {
        let model_json = job.require_model_json("process-pool")?;
        let descs = build_descriptors(job.explainer, job.req, model_json, job.n_shards)?;
        let cache = self.cache.as_deref();
        let (mut results, misses) = split_cache_hits(&descs, cache);
        let hits = results.len() as u64;
        let miss_count = misses.len() as u64;
        let fresh = run_pool_descriptors(&misses, &self.pool)?;
        if let Some(cache) = cache {
            for (desc, result) in misses.iter().zip(&fresh) {
                cache.insert(desc, result);
            }
        }
        results.extend(fresh);
        let explanation = merge_shard_results(job.explainer, job.model, job.req, results)?;
        Ok(BackendOutcome {
            explanation,
            degraded: false,
            shard_cache_hits: hits,
            shard_cache_misses: miss_count,
        })
    }
}

// ---------------------------------------------------------------------------
// Cluster backend: TCP daemons behind the ClusterRunner
// ---------------------------------------------------------------------------

/// TCP execution across `xai-shard-worker --listen` daemons, supervised
/// by a shared [`ClusterRunner`] (retry, hedging, circuit breakers,
/// persistent sessions, shard cache). Cloning the `Arc` lets the serving
/// engine and direct callers share one set of connections, breakers and
/// cache.
pub struct ClusterBackend {
    runner: Arc<ClusterRunner>,
}

impl ClusterBackend {
    /// A backend over an existing (possibly shared) runner.
    pub fn new(runner: Arc<ClusterRunner>) -> Self {
        ClusterBackend { runner }
    }

    /// Builds a fresh runner from `config`.
    pub fn from_config(config: crate::transport::ClusterConfig) -> XaiResult<Self> {
        Ok(ClusterBackend::new(Arc::new(ClusterRunner::new(config)?)))
    }

    /// The underlying runner (for health/stats inspection).
    pub fn runner(&self) -> &Arc<ClusterRunner> {
        &self.runner
    }
}

impl ExecutionBackend for ClusterBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cluster
    }

    fn execute(&self, job: &BackendJob<'_>) -> XaiResult<BackendOutcome> {
        execute_cluster(&self.runner, job)
    }
}

/// The shared cluster dispatch/merge core: build descriptors, ship them
/// through the runner's supervision (retry/hedging/breakers/sessions/
/// cache), merge bit-identically — and degrade to [`dispatch_local`]
/// with a `degraded` marker when the whole cluster is unreachable and
/// [`FallbackPolicy::InProcess`] allows. Execution failures (typed
/// envelopes from a worker that ran the shard) are deterministic and are
/// returned as-is, never retried or degraded.
pub fn execute_cluster(runner: &ClusterRunner, job: &BackendJob<'_>) -> XaiResult<BackendOutcome> {
    let model_json = job.require_model_json("cluster")?;
    let descs = build_descriptors(job.explainer, job.req, model_json, job.n_shards)?;
    let cache_before = runner.stats();
    let cache_delta = |runner: &ClusterRunner| {
        let after = runner.stats();
        (
            after.shard_cache_hits.saturating_sub(cache_before.shard_cache_hits),
            after.shard_cache_misses.saturating_sub(cache_before.shard_cache_misses),
        )
    };
    match runner.run_classified(&descs) {
        Ok(results) => {
            let explanation = merge_shard_results(job.explainer, job.model, job.req, results)?;
            let (hits, misses) = cache_delta(runner);
            Ok(BackendOutcome {
                explanation,
                degraded: false,
                shard_cache_hits: hits,
                shard_cache_misses: misses,
            })
        }
        Err(failure) if failure.is_execution() => Err(failure.into_error()),
        Err(failure) => match runner.config().fallback {
            FallbackPolicy::Fail => Err(failure.into_error()),
            FallbackPolicy::InProcess => {
                runner.mark_degraded();
                let explanation = dispatch_local(job.explainer, job.model, job.req, job.n_shards)?;
                let (hits, misses) = cache_delta(runner);
                Ok(BackendOutcome {
                    explanation,
                    degraded: true,
                    shard_cache_hits: hits,
                    shard_cache_misses: misses,
                })
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_choice_wire_round_trips() {
        for choice in [
            BackendChoice::Local,
            BackendChoice::process_pool(4),
            BackendChoice::cluster(2),
        ] {
            let json = choice.to_json();
            assert_eq!(BackendChoice::from_json(&json).unwrap(), choice, "{}", json.to_json());
        }
    }

    #[test]
    fn backend_choice_parse_is_strict() {
        for bad in [
            r#"{"kind": "warp", "shards": 2}"#,
            r#"{"kind": "local", "shards": 2}"#,
            r#"{"kind": "cluster"}"#,
            r#"{"kind": "cluster", "shards": 0}"#,
            r#"{"kind": "cluster", "shards": 1.5}"#,
            r#"{"kind": "cluster", "shards": 2, "turbo": true}"#,
            r#"{"shards": 2}"#,
            r#"["cluster", 2]"#,
        ] {
            let json = parse_json(bad).unwrap();
            let err = BackendChoice::from_json(&json).unwrap_err();
            assert!(matches!(err, XaiError::Parse { .. }), "{bad}: {err:?}");
        }
    }

    #[test]
    fn shard_cache_is_lru_with_counters() {
        fn result(shard: usize) -> ShardResult {
            ShardResult {
                method: "test".into(),
                fingerprint: format!("{shard:016x}"),
                shard,
                n_shards: 8,
                partial: Json::obj(vec![("chunks", Json::Arr(vec![]))]),
            }
        }
        fn desc(shard: usize) -> ShardDescriptor {
            ShardDescriptor {
                method: "test".into(),
                config: Json::obj(vec![]),
                fingerprint: "00".into(),
                shard,
                n_shards: 8,
                chunk_start: shard,
                chunk_end: shard + 1,
                total_draws: 8,
                chunk_size: 1,
                model: Json::obj(vec![]),
                dataset: Json::obj(vec![]),
                instance: None,
                feature: None,
                plan: crate::explainer::RunConfig::default(),
            }
        }
        let cache = ShardCache::new(2);
        assert!(cache.get(&desc(0)).is_none());
        cache.insert(&desc(0), &result(0));
        cache.insert(&desc(1), &result(1));
        assert_eq!(cache.get(&desc(0)).unwrap().shard, 0);
        // 1 is now least recently used; inserting 2 evicts it.
        cache.insert(&desc(2), &result(2));
        assert!(cache.get(&desc(1)).is_none());
        assert_eq!(cache.get(&desc(2)).unwrap().shard, 2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ShardCache::new(0);
        let desc = ShardDescriptor {
            method: "test".into(),
            config: Json::obj(vec![]),
            fingerprint: "00".into(),
            shard: 0,
            n_shards: 1,
            chunk_start: 0,
            chunk_end: 1,
            total_draws: 1,
            chunk_size: 1,
            model: Json::obj(vec![]),
            dataset: Json::obj(vec![]),
            instance: None,
            feature: None,
            plan: crate::explainer::RunConfig::default(),
        };
        let result = ShardResult {
            method: "test".into(),
            fingerprint: "00".into(),
            shard: 0,
            n_shards: 1,
            partial: Json::obj(vec![("chunks", Json::Arr(vec![]))]),
        };
        cache.insert(&desc, &result);
        assert!(cache.get(&desc).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
